//! Offline shim for `crossbeam`: the `scope` + `channel::unbounded` subset,
//! implemented over `std::thread::scope` and `std::sync::mpsc`. See
//! `shims/README.md`.
//!
//! Behavioral notes versus the real crate:
//! * `scope` returns `Ok(..)` always; a panicking child thread propagates
//!   its panic when the underlying `std::thread::scope` joins, instead of
//!   surfacing as `Err`. Callers that `.expect(..)` the result observe a
//!   panic either way.
//! * `channel::Receiver` is the single-consumer `mpsc` receiver (the
//!   workspace never clones receivers).

use std::any::Any;

/// Scoped-thread handle passed to [`scope`] closures and to each spawned
/// thread (crossbeam's `spawn` closures take `&Scope` as an argument).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle, as
    /// with crossbeam (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which spawned threads may borrow non-`'static` data.
/// All threads are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// Multi-producer channels (the `crossbeam::channel` subset).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender};

    /// An unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let (tx, rx) = channel::unbounded::<u32>();
        let sum: u32 = scope(|s| {
            for chunk in data.chunks(2) {
                let tx = tx.clone();
                s.spawn(move |_| {
                    tx.send(chunk.iter().sum()).unwrap();
                });
            }
            drop(tx);
            rx.iter().sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn nested_spawn_from_scope_arg() {
        let n = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
