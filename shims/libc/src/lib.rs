//! Offline shim for the `libc` crate: only the `clock_gettime` surface the
//! workspace uses for per-thread CPU timing. Linux-only. See
//! `shims/README.md`.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_long = i64;
pub type time_t = i64;
pub type clockid_t = c_int;

/// `CLOCK_THREAD_CPUTIME_ID` from `<time.h>` on Linux.
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

/// `struct timespec` from `<time.h>` (x86-64/aarch64 Linux layout).
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

extern "C" {
    /// POSIX `clock_gettime(2)`, linked from the system C library.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_ticks() {
        let mut a = timespec::default();
        // SAFETY: clock_gettime writes into the provided timespec.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) };
        assert_eq!(rc, 0);
        // Burn a little CPU, then read again: must not go backwards.
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let mut b = timespec::default();
        // SAFETY: clock_gettime writes into the provided timespec.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) };
        assert_eq!(rc, 0);
        assert!((b.tv_sec, b.tv_nsec) >= (a.tv_sec, a.tv_nsec));
    }
}
