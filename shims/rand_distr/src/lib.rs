//! Offline shim for `rand_distr`: the `Distribution` trait and a `Zipf`
//! sampler (exact inverse-CDF over a precomputed table — the workspace
//! only instantiates small alphabets). See `shims/README.md`.

use rand::Rng;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// `n` must be at least 1.
    EmptySupport,
    /// The exponent must be finite and non-negative.
    BadExponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::EmptySupport => write!(f, "zipf: n must be >= 1"),
            ZipfError::BadExponent => write!(f, "zipf: exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over `{1, …, n}` with exponent `s`:
/// `P(k) ∝ 1 / k^s`. Samples are returned as `f64` holding the integer
/// rank, matching the upstream crate's `Zipf<f64>` the workspace uses
/// (`sample(..) as usize - 1`).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[k-1] = P(X <= k)`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution with support `1..=n` and exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::EmptySupport);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::BadExponent);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        *cdf.last_mut().unwrap() = 1.0;
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit uniform in [0, 1), inverted through the CDF table.
        let bits = rng.next_u64() >> 11;
        let unit = bits as f64 * (1.0 / (1u64 << 53) as f64);
        let idx = self.cdf.partition_point(|&c| c <= unit);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validates() {
        assert_eq!(Zipf::new(0, 1.0).unwrap_err(), ZipfError::EmptySupport);
        assert_eq!(Zipf::new(5, f64::NAN).unwrap_err(), ZipfError::BadExponent);
        assert!(Zipf::new(5, 0.0).is_ok());
    }

    #[test]
    fn samples_stay_in_support_and_skew_low_ranks() {
        let z = Zipf::new(40, 1.35).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 40];
        for _ in 0..20_000 {
            let v = z.sample(&mut rng);
            let k = v as usize;
            assert!((1..=40).contains(&k), "{v}");
            counts[k - 1] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 must dominate rank 10");
        assert!(counts[0] > 4000, "rank 1 should take a large share: {}", counts[0]);
    }

    #[test]
    fn uniform_when_exponent_zero() {
        let z = Zipf::new(4, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        for c in counts {
            assert!((1700..2300).contains(&c), "{counts:?}");
        }
    }
}
