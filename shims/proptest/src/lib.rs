//! Offline shim for `proptest`: a seeded random-input harness exposing the
//! subset the workspace's property tests use — the [`proptest!`] macro,
//! the [`Strategy`] trait with `prop_map`, range / tuple strategies,
//! `collection::{vec, hash_set}`, `ProptestConfig`, and the
//! `prop_assert*` macros. **No shrinking**: a failing case panics with the
//! deterministic case index so it can be replayed. See `shims/README.md`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// The per-test RNG (SplitMix64; deterministic per case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one numbered test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // Mix the test name so distinct tests explore distinct streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self { state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift; bias is < 2^-64 * n, irrelevant for testing.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with element strategy `S` and a size range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, size_range)` as in upstream proptest.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s (size is best-effort under collisions).
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `hash_set(element, size_range)` as in upstream proptest.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.clone().generate(rng);
            let mut out = HashSet::with_capacity(n);
            // Bounded attempts: collisions simply yield a smaller set.
            for _ in 0..n * 4 {
                if out.len() == n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

/// Run configuration for [`proptest!`] blocks.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// A config running `PROPTEST_CASES` cases when that environment
    /// variable is set (the CI deep-fuzz knob), else `default_cases`.
    pub fn env_or(default_cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(default_cases);
        Self { cases }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` for `config.cases` deterministic
/// random cases. On failure the panic message carries the case number.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    let run = || -> () { $body };
                    if let Err(payload) = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {case}/{} of `{}` failed",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    // No config attribute: use the default.
    (
        $(
            #[test]
            fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name( $( $arg in $strat ),* ) $body
            )*
        }
    };
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_compose(
            x in 3u32..9,
            pair in (0usize..4, 10u64..12),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(pair.0 < 4 && (10..12).contains(&pair.1));
        }

        #[test]
        fn collections_respect_sizes(
            v in collection::vec((0u32..5, 0u32..5), 0..7),
            s in collection::hash_set(0u32..100, 0..6),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert!(s.len() < 6);
        }

        #[test]
        fn prop_map_applies(y in (1u32..4).prop_map(|v| v * 10)) {
            prop_assert!(y == 10 || y == 20 || y == 30, "{y}");
        }
    }

    #[test]
    fn env_or_reads_the_deep_fuzz_knob() {
        // CI's delta-fuzz leg sets PROPTEST_CASES; everywhere else the
        // fallback applies. Accept both so the test is env-agnostic.
        let c = ProptestConfig::env_or(17);
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(n) if n > 0 => assert_eq!(c.cases, n),
            _ => assert_eq!(c.cases, 17),
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5).map(|c| TestRng::for_case("t", c).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|c| TestRng::for_case("t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], TestRng::for_case("other", 0).next_u64());
    }
}
