//! Offline shim for `arc-swap`: a lock-free cell holding an `Arc<T>`
//! that readers can load and writers can atomically replace, with no
//! reader ever blocking on a writer. See `shims/README.md`.
//!
//! ## How it works
//!
//! The cell is one `AtomicU64` packing a pointer to a heap-allocated
//! `Published<T>` box (low 48 bits — the userspace-VA width on every
//! platform this workspace targets) with an in-flight **borrow counter**
//! (high 16 bits). A reader registers a borrow with one `fetch_add`,
//! clones the `Arc` out of the box, and releases the borrow:
//!
//! * **fast path** — the pointer is unchanged, so a CAS decrementing the
//!   packed counter retires the borrow in place;
//! * **slow path** — a writer swapped the pointer meanwhile, so the
//!   borrow is retired against the *box's* settlement ledger instead.
//!
//! A writer swaps the word to a fresh box and reads, atomically with the
//! swap, how many borrows were in flight on the old box. It settles that
//! count into the old box's ledger (`holds`); whoever brings the ledger
//! to zero — writer or last slow-path reader — frees the box. The ledger
//! starts at a large bias so it cannot reach zero before the writer's
//! settlement, and a box stays allocated while any borrow on it is
//! outstanding, so the allocator cannot recycle its address and the
//! fast-path CAS is ABA-safe.
//!
//! The subset provided is what this workspace uses: `new`,
//! `from_pointee`, `load_full`, `store`, `swap`.

use std::marker::PhantomData;
use std::sync::Arc;

// With the `model` feature the cell's atomics come from gpar-model, so
// the whole borrow/settlement protocol runs under the deterministic
// model checker (and passes through to std outside model executions).
#[cfg(feature = "model")]
use gpar_model::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};
#[cfg(not(feature = "model"))]
use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

const COUNT_SHIFT: u32 = 48;
const PTR_MASK: u64 = (1 << COUNT_SHIFT) - 1;
const ONE_BORROW: u64 = 1 << COUNT_SHIFT;
/// Settlement bias: the ledger starts here so slow-path releases (at
/// most 2^16, the packed-counter width) can never drive it to zero
/// before the displacing writer has added its `borrows - BIAS`
/// adjustment.
const BIAS: i64 = 1 << 32;

/// One published value: the shared `Arc` plus the settlement ledger that
/// tracks releases still owed after the value was swapped out.
struct Published<T> {
    value: Arc<T>,
    holds: AtomicI64,
}

impl<T> Published<T> {
    fn install(value: Arc<T>) -> *mut Published<T> {
        let p = Box::into_raw(Box::new(Published { value, holds: AtomicI64::new(BIAS) }));
        assert_eq!(p as u64 & !PTR_MASK, 0, "pointer exceeds the 48-bit packing assumption");
        p
    }
}

/// A lock-free cell holding an `Arc<T>`; readers never block on writers.
pub struct ArcSwap<T> {
    word: AtomicU64,
    _owns: PhantomData<Published<T>>,
}

// SAFETY: the cell shares `&T` across threads (readers clone the Arc)
// and moves `Arc<T>` between them (swap), so `T: Send + Sync` gives
// exactly the bounds `Arc<T>` itself would need for the same uses; the
// raw pointer inside is only a packed representation of an owned box.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
// SAFETY: see the `Send` impl above — `&ArcSwap<T>` only exposes
// `Arc<T>` clones and atomic word operations.
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

impl<T> ArcSwap<T> {
    /// A cell initially holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        Self { word: AtomicU64::new(Published::install(value) as u64), _owns: PhantomData }
    }

    /// A cell initially holding `Arc::new(value)`.
    pub fn from_pointee(value: T) -> Self {
        Self::new(Arc::new(value))
    }

    /// Loads the current value as an owned `Arc`. Wait-free apart from
    /// the release CAS, which only retries against other *readers*
    /// finishing on the same word — never against a writer holding
    /// anything.
    pub fn load_full(&self) -> Arc<T> {
        // ordering: Acquire — pairs with the displacing writer's AcqRel
        // swap/settlement: a reader that observed this pointer also sees
        // the pointee the writer published before installing it.
        let w = self.word.fetch_add(ONE_BORROW, Ordering::Acquire);
        debug_assert!(w >> COUNT_SHIFT < u16::MAX as u64, "borrow counter out of headroom");
        let p = (w & PTR_MASK) as *mut Published<T>;
        // SAFETY: the fetch_add above registered a borrow on `p`
        // atomically with reading it; a displacing writer settles that
        // borrow into the box's ledger and the box is only freed at
        // ledger zero, so `p` stays allocated until `release` below.
        let value = unsafe { (*p).value.clone() };
        self.release(p);
        value
    }

    /// Retires one registered borrow on `p`.
    fn release(&self, p: *mut Published<T>) {
        // ordering: Relaxed — this read only picks a release path; if it
        // is stale the CAS below fails and reloads, and the slow path
        // re-synchronizes through the ledger.
        let mut cur = self.word.load(Ordering::Relaxed);
        loop {
            if (cur & PTR_MASK) as *mut Published<T> != p {
                // A writer displaced the box: our borrow was (or will
                // be) settled into its ledger; retire it there. The
                // ledger stays positive until the displacing writer's
                // settlement, so the zero crossing is unique.
                //
                // SAFETY: our borrow is still registered against `p`
                // (we have not retired it yet), so the ledger cannot
                // have reached zero and the box is still allocated.
                //
                // ordering: Release — orders our read of the pointee
                // before the decrement, pairing with the Acquire fence
                // at the zero crossing (here or in `swap`) so the free
                // happens-after every borrower is done.
                let v = unsafe { (*p).holds.fetch_sub(1, Ordering::Release) } - 1;
                if v == 0 {
                    // ordering: Acquire — pairs with every other
                    // releaser's Release decrement before the box drops.
                    fence(Ordering::Acquire);
                    // SAFETY: the ledger hit zero exactly once (it only
                    // becomes reachable-zero after the displacing
                    // writer's settlement), so we are the unique owner
                    // of the box, and it was created by `Box::into_raw`
                    // in `Published::install`.
                    drop(unsafe { Box::from_raw(p) });
                }
                return;
            }
            // ordering: Release on success — orders this reader's use of
            // the pointee before the borrow-count decrement that a
            // subsequent writer's AcqRel swap observes (the fast path
            // never frees, so no Acquire is needed here); Relaxed on
            // failure — the retry only needs the fresh word value.
            match self.word.compare_exchange_weak(
                cur,
                cur - ONE_BORROW,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(w) => cur = w,
            }
        }
    }

    /// Replaces the held value, returning the previous one. Safe under
    /// concurrent swaps: each displaced box is settled exactly once, by
    /// the swap that displaced it.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let fresh = Published::install(new);
        // ordering: AcqRel — Release publishes the fresh pointee to
        // readers' Acquire fetch_adds; Acquire makes the displaced
        // generation's writes (and fast-path borrow retirements) visible
        // to this writer before it touches the old box.
        let old_w = self.word.swap(fresh as u64, Ordering::AcqRel);
        let old = (old_w & PTR_MASK) as *mut Published<T>;
        let borrows = (old_w >> COUNT_SHIFT) as i64;
        // SAFETY: the ledger is still ≥ BIAS - borrows > 0 (BIAS dwarfs
        // the 16-bit packed counter), so no release path can have freed
        // the box before our settlement below.
        let value = unsafe { (*old).value.clone() };
        // Settle: after this, the ledger equals the number of slow-path
        // releases still owed; zero (now or at the last release) frees.
        //
        // SAFETY: same liveness argument as above — the box cannot be
        // freed before this, the unique settlement that first makes a
        // zero ledger reachable.
        //
        // ordering: AcqRel — Release orders our clone of the pointee
        // before the settlement; Acquire pairs with slow-path releasers'
        // Release decrements in case we take the zero crossing here.
        let v =
            unsafe { (*old).holds.fetch_add(borrows - BIAS, Ordering::AcqRel) } + borrows - BIAS;
        if v == 0 {
            // ordering: Acquire — pairs with slow-path releasers'
            // Release decrements before the box drops (belt-and-braces
            // with the AcqRel settlement above).
            fence(Ordering::Acquire);
            // SAFETY: unique zero crossing (see `release`); the box came
            // from `Box::into_raw` in `Published::install`.
            drop(unsafe { Box::from_raw(old) });
        }
        value
    }

    /// Replaces the held value, dropping the previous one.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // `&mut self`: no borrow can be in flight, and the installed box
        // was never displaced, so its ledger is untouched.
        let w = *self.word.get_mut();
        debug_assert_eq!(w >> COUNT_SHIFT, 0, "borrow leaked past release");
        // SAFETY: exclusive access (`&mut self`) means no reader or
        // writer can touch the word; the currently installed box was
        // produced by `Box::into_raw` and never settled, so this is its
        // unique owner.
        drop(unsafe { Box::from_raw((w & PTR_MASK) as *mut Published<T>) });
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&self.load_full()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Weak;

    #[test]
    fn load_store_roundtrip() {
        let cell = ArcSwap::from_pointee(41);
        assert_eq!(*cell.load_full(), 41);
        cell.store(Arc::new(42));
        assert_eq!(*cell.load_full(), 42);
        let old = cell.swap(Arc::new(43));
        assert_eq!(*old, 42);
        assert_eq!(*cell.load_full(), 43);
    }

    /// Every displaced value is dropped exactly once, and dropping the
    /// cell releases the final value — no leak, no double free.
    #[test]
    fn values_are_freed_exactly_once() {
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = ArcSwap::from_pointee(Probe(drops.clone()));
        let weak: Weak<Probe> = Arc::downgrade(&cell.load_full());
        for _ in 0..100 {
            cell.store(Arc::new(Probe(drops.clone())));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 100, "all displaced values dropped");
        assert!(weak.upgrade().is_none(), "first value fully released");
        drop(cell);
        assert_eq!(drops.load(Ordering::SeqCst), 101, "final value dropped with the cell");
    }

    /// Readers hammer `load_full` while a writer swaps: every observed
    /// value is internally consistent (the two halves always sum to the
    /// same constant), and nothing leaks across thousands of
    /// generations.
    #[test]
    fn concurrent_readers_always_see_consistent_values() {
        const SUM: u64 = 1 << 40;
        let live = Arc::new(AtomicI64::new(1));
        struct Gen(u64, u64, Arc<AtomicI64>);
        impl Drop for Gen {
            fn drop(&mut self) {
                self.2.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let cell = Arc::new(ArcSwap::new(Arc::new(Gen(0, SUM, live.clone()))));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        let g = cell.load_full();
                        assert_eq!(g.0 + g.1, SUM, "torn read");
                    }
                })
            })
            .collect();
        for i in 1..=2_000u64 {
            live.fetch_add(1, Ordering::SeqCst);
            cell.store(Arc::new(Gen(i, SUM - i, live.clone())));
        }
        for r in readers {
            r.join().unwrap();
        }
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0, "every generation was freed");
    }

    /// Concurrent swappers: each displaced box settled exactly once.
    #[test]
    fn concurrent_writers_settle_each_generation_once() {
        let live = Arc::new(AtomicI64::new(1));
        struct Gen(Arc<AtomicI64>);
        impl Drop for Gen {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let cell = Arc::new(ArcSwap::new(Arc::new(Gen(live.clone()))));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                let live = live.clone();
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        live.fetch_add(1, Ordering::SeqCst);
                        cell.store(Arc::new(Gen(live.clone())));
                        let _ = cell.load_full();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(cell);
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }
}
