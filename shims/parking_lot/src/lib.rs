//! Offline shim for `parking_lot`: poison-free `RwLock`/`Mutex` facades
//! over `std::sync`. Poisoning is converted to a panic propagation (a
//! poisoned lock means a writer already panicked), which matches how the
//! workspace uses the real crate. See `shims/README.md`.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A reader-writer lock with `parking_lot`'s panic-on-poison API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        Self { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with `parking_lot`'s panic-on-poison API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_guards_exclude_writers() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
