//! Offline shim for `parking_lot`: poison-free `RwLock`/`Mutex`/`Condvar`
//! facades over `std::sync`. Poisoning is converted to a panic propagation
//! (a poisoned lock means a writer already panicked), which matches how
//! the workspace uses the real crate. See `shims/README.md`.
//!
//! With the `model` feature the whole surface is re-exported from
//! `gpar-model` instead: the same non-poisoning API, but every
//! lock/wait/notify is a scheduling point for the deterministic model
//! checker (and a plain passthrough outside `gpar_model::model(..)`).
//! Downstream crates forward their own `model` feature here, so one
//! `--features model` swaps the primitives under the entire stack.

#[cfg(feature = "model")]
pub use gpar_model::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(feature = "model"))]
pub use imp::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
};

#[cfg(not(feature = "model"))]
mod imp {
    pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

    use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, RwLock as StdRwLock};
    use std::time::Duration;

    /// A reader-writer lock with `parking_lot`'s panic-on-poison API.
    #[derive(Default, Debug)]
    pub struct RwLock<T: ?Sized> {
        inner: StdRwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Creates a new lock (const, so it works in statics).
        pub const fn new(value: T) -> Self {
            Self { inner: StdRwLock::new(value) }
        }

        /// Consumes the lock, returning the value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires a shared read guard.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.inner.read().unwrap_or_else(|e| e.into_inner())
        }

        /// Acquires an exclusive write guard.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.inner.write().unwrap_or_else(|e| e.into_inner())
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// A mutex with `parking_lot`'s panic-on-poison API.
    #[derive(Default, Debug)]
    pub struct Mutex<T: ?Sized> {
        inner: StdMutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex (const, so it works in statics).
        pub const fn new(value: T) -> Self {
            Self { inner: StdMutex::new(value) }
        }

        /// Consumes the mutex, returning the value.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Mutable access without locking (requires `&mut self`).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Result of a timed condition-variable wait, mirroring
    /// `parking_lot::WaitTimeoutResult`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult {
        timed_out: bool,
    }

    impl WaitTimeoutResult {
        /// Whether the wait ended because the timeout elapsed (as opposed
        /// to a notification).
        pub fn timed_out(&self) -> bool {
            self.timed_out
        }
    }

    /// A condition variable with a poison-free API.
    ///
    /// Works with guards handed out by the shim [`Mutex`] (plain
    /// `std::sync::MutexGuard`s). Unlike `std`, waking up on a mutex whose
    /// previous owner panicked mid-critical-section hands the guard back
    /// instead of surfacing a `PoisonError`, so one panicked writer cannot
    /// wedge every later waiter.
    ///
    /// API note: the real `parking_lot` re-acquires into the same guard via
    /// `&mut MutexGuard`; over `std` primitives that shape cannot be written
    /// without `unsafe`, so the shim uses ownership-passing waits (`wait`
    /// consumes the guard and returns the re-acquired one).
    #[derive(Default, Debug)]
    pub struct Condvar {
        inner: StdCondvar,
    }

    impl Condvar {
        /// Creates a new condition variable (const, so it works in
        /// statics).
        pub const fn new() -> Self {
            Self { inner: StdCondvar::new() }
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }

        /// Blocks until notified; returns the re-acquired guard.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.inner.wait(guard).unwrap_or_else(|e| e.into_inner())
        }

        /// Blocks until notified or `timeout` elapses; returns the
        /// re-acquired guard plus whether the wait timed out.
        pub fn wait_for<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
            let (guard, res) =
                self.inner.wait_timeout(guard, timeout).unwrap_or_else(|e| e.into_inner());
            (guard, WaitTimeoutResult { timed_out: res.timed_out() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn rwlock_guards_exclude_writers() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_works_in_a_static() {
        static S: Mutex<u32> = Mutex::new(0);
        *S.lock() += 1;
        assert_eq!(*S.lock(), 1);
    }

    #[test]
    fn condvar_wakes_timed_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        let mut timed_out = false;
        while !*ready && !timed_out {
            let (g, res) = cv.wait_for(ready, Duration::from_secs(5));
            ready = g;
            timed_out = res.timed_out();
        }
        assert!(*ready, "waiter must observe the flag, not time out");
        t.join().unwrap();
    }

    #[test]
    fn condvar_survives_panic_while_mutex_held() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        // Poison the mutex by panicking while holding it.
        let poisoner = std::thread::spawn(move || {
            let _g = p2.0.lock();
            panic!("boom while holding the lock");
        });
        assert!(poisoner.join().is_err());
        // Both the lock and a timed wait must still work.
        let (lock, cv) = &*pair;
        let mut g = lock.lock();
        *g = 7;
        let (g, res) = cv.wait_for(g, Duration::from_millis(1));
        assert!(res.timed_out());
        assert_eq!(*g, 7);
    }
}
