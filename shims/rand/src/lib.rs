//! Offline shim for the `rand` crate: a deterministic xoshiro256**
//! generator behind the `StdRng`/`Rng`/`SeedableRng` names, plus
//! `seq::SliceRandom::choose`. **Not** bit-compatible with upstream
//! `rand` — streams differ, but remain deterministic per seed, which is
//! what the workspace's seeded generators rely on. See `shims/README.md`.

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, exactly the upstream construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty, as upstream does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly (the `gen_range` argument bound).
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by Lemire's multiply-shift with rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as u64) - (lo as u64) + 1;
                // span == 0 only for the full u64 domain, unused here.
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Named generators (the `rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64 (a well-studied, tiny, high-quality combination).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling helpers (the `rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// `choose`: one uniform element of a slice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = r.gen_range(5usize..9);
            assert!((5..9).contains(&x));
            let y = r.gen_range(2u32..=4);
            assert!((2..=4).contains(&y));
        }
        // Single-value inclusive range must work.
        assert_eq!(r.gen_range(7u32..=7), 7);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = StdRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
