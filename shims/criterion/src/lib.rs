//! Offline shim for `criterion`: a minimal, dependency-free bench harness
//! exposing the subset of the API the workspace's benches use
//! (`Criterion`, benchmark groups, `Bencher::iter`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`). It reports the mean wall-clock
//! time per iteration — no statistics, plots or comparisons. See
//! `shims/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so callers can `criterion::black_box` as upstream allows.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter`-style id from a function name + param.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{parameter}", function.into()) }
    }

    /// Id from just a parameter value (the common form in this repo).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs and times the routine.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, running one untimed warm-up pass then `samples`
    /// timed passes, recording the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let t0 = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = Some(t0.elapsed() / self.samples as u32);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(full_id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { samples, last_mean: None };
    f(&mut b);
    match b.last_mean {
        Some(mean) => println!("bench: {full_id:<48} {:>12.3?} /iter  ({samples} samples)", mean),
        None => println!("bench: {full_id:<48} (no iter() call)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), self.samples, f);
        self
    }

    /// Finishes the group (no-op; prints a separator for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.effective_samples();
        run_one(&id.to_string(), samples, f);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.effective_samples();
        BenchmarkGroup { name: name.into(), samples, _criterion: self }
    }

    /// Default sample count (10, as the repo's groups configure anyway).
    fn effective_samples(&self) -> usize {
        if self.samples == 0 {
            10
        } else {
            self.samples
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_mean() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(3).bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
