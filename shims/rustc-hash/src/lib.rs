//! Offline shim for the `rustc-hash` crate: a fast, non-cryptographic
//! multiply-fold hasher for small integer-ish keys, plus the `FxHashMap` /
//! `FxHashSet` aliases. See `shims/README.md`.

use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasherDefault` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// A fast multiply-rotate hasher in the spirit of FxHash/FireflyHash.
/// Not DoS-resistant; fine for interned ids and dense integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.fold(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        let s: FxHashSet<u32> = [1, 2, 2, 3].into_iter().collect();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hashing_is_deterministic_and_spreads() {
        let h = |x: u64| {
            let mut f = FxHasher::default();
            f.write_u64(x);
            f.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(1), h(2));
        assert_ne!(h(1) & 0xffff, h(2) & 0xffff, "low bits must differ too");
    }
}
