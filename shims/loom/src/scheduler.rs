//! The deterministic explorer: one token, serialized threads, and a
//! depth-first search over scheduling decisions.
//!
//! Every instrumented operation calls [`point`], which hands the step
//! token back to the controller and parks the thread until it is
//! rescheduled. The controller (the thread that called
//! [`Builder::check`]) waits for the token, computes the runnable set,
//! and consults the [`Explorer`] tape: within the replay prefix it takes
//! the recorded choice, past it it records a new decision (default
//! first) for later backtracking. Blocking (mutex contention, condvar
//! waits, joins) parks a thread in a non-runnable state; the wake edges
//! — unlock, notify, thread exit — flip parked threads back to runnable
//! without themselves being decisions, so the decision tree stays as
//! small as the protocol allows.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Where a parked thread is waiting, keyed by the owning primitive's
/// address (unique for the primitive's lifetime; never compared across
/// executions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Holds the step token right now.
    Running,
    /// Parked on a contended mutex.
    BlockedMutex(usize),
    /// Parked on a contended rwlock (`write` = wants exclusive).
    BlockedRw { addr: usize, write: bool },
    /// Parked in a condvar wait; `seq` orders FIFO wakeup, `timed` marks
    /// a `wait_for` eligible for a timeout rescue.
    CvWait { addr: usize, seq: u64, timed: bool },
    /// Parked in `JoinHandle::join` on the given thread index.
    BlockedJoin(usize),
    /// Done (normally, by panic, or by abort drain).
    Finished,
}

struct ThreadSlot {
    status: Status,
    /// Set when the thread's last condvar park was ended by a timeout
    /// rescue rather than a notification.
    woke_by_timeout: bool,
    /// Set by a voluntary yield (`spin_loop`/`yield_now`): the next
    /// decision must deprioritize this thread, and switching away from
    /// it costs no preemption.
    yielded: bool,
}

struct ExecState {
    threads: Vec<ThreadSlot>,
    /// `Some(i)`: thread `i` owns the step token. `None`: controller's
    /// turn to schedule.
    token: Option<usize>,
    /// Set on the first failure (panic, deadlock, step budget); all
    /// remaining threads are drained with [`AbortSentinel`] panics.
    aborting: bool,
    failure: Option<Box<dyn Any + Send>>,
    failure_kind: Option<FailureKind>,
    /// `(thread, op)` log of the execution, for failure reports.
    trace: Vec<(usize, &'static str)>,
    steps: usize,
    max_steps: usize,
    cv_seq: u64,
    timeout_rescues: u64,
    /// The thread the controller scheduled last (preemption accounting).
    last_ran: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    m: StdMutex<ExecState>,
    cv: StdCondvar,
}

/// Payload of the panic used to unwind surviving threads once an
/// execution has failed; recognized (and swallowed) by the thread
/// wrapper.
struct AbortSentinel;

#[derive(Clone)]
struct Ctx {
    exec: Arc<Execution>,
    idx: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn is_active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// A scheduling point: record `op`, hand the token back, park until
/// rescheduled. No-op outside an execution.
pub(crate) fn point(op: &'static str) {
    if let Some(c) = ctx() {
        c.exec.park(c.idx, op, Status::Runnable, false);
    }
}

/// A voluntary yield (spin hint / `yield_now`): like [`point`] but the
/// scheduler must prefer another runnable thread, free of preemption
/// cost.
pub(crate) fn yield_voluntary(op: &'static str) {
    if let Some(c) = ctx() {
        c.exec.park(c.idx, op, Status::Runnable, true);
    }
}

/// Parks the calling thread as blocked (`status`) until a wake edge
/// makes it runnable and the scheduler picks it again.
pub(crate) fn block_on(op: &'static str, status: Status) {
    let c = ctx().expect("gpar-model: block_on outside an execution");
    c.exec.park(c.idx, op, status, false);
}

/// Parks the calling thread in a condvar wait on `addr`. Returns `true`
/// if the park ended by timeout rescue instead of a notification.
pub(crate) fn cv_park(op: &'static str, addr: usize, timed: bool) -> bool {
    let c = ctx().expect("gpar-model: cv_park outside an execution");
    let seq = {
        let mut s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
        s.cv_seq += 1;
        s.cv_seq
    };
    c.exec.park(c.idx, op, Status::CvWait { addr, seq, timed }, false);
    let mut s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
    std::mem::take(&mut s.threads[c.idx].woke_by_timeout)
}

/// Wake edge: a mutex at `addr` was released — every thread parked on it
/// becomes runnable (they re-contend; the scheduler picks the winner).
pub(crate) fn on_mutex_release(addr: usize) {
    if let Some(c) = ctx() {
        let mut s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
        for t in &mut s.threads {
            if t.status == Status::BlockedMutex(addr) {
                t.status = Status::Runnable;
            }
        }
    }
}

/// Wake edge: an rwlock at `addr` changed state — every thread parked on
/// it re-contends.
pub(crate) fn on_rw_release(addr: usize) {
    if let Some(c) = ctx() {
        let mut s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
        for t in &mut s.threads {
            if matches!(t.status, Status::BlockedRw { addr: a, .. } if a == addr) {
                t.status = Status::Runnable;
            }
        }
    }
}

/// Wake edge: notify `n` waiters (in FIFO `seq` order) parked on the
/// condvar at `addr`. A notification with no waiter is lost, exactly as
/// in the real primitive.
pub(crate) fn cv_notify(addr: usize, n: usize) {
    let Some(c) = ctx() else { return };
    let mut s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
    for _ in 0..n {
        let next = s
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::CvWait { addr: a, seq, .. } if a == addr => Some((seq, i)),
                _ => None,
            })
            .min();
        match next {
            Some((_, i)) => {
                s.threads[i].status = Status::Runnable;
                s.threads[i].woke_by_timeout = false;
            }
            None => break,
        }
    }
}

/// Whether thread `target` has finished (for `join`).
pub(crate) fn is_finished(target: usize) -> bool {
    let c = ctx().expect("gpar-model: join outside an execution");
    let s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
    s.threads[target].status == Status::Finished
}

/// Registers a new model thread running `f`, returning its index.
pub(crate) fn spawn_thread(f: impl FnOnce() + Send + 'static) -> usize {
    let c = ctx().expect("gpar-model: thread::spawn outside an execution");
    point("thread.spawn");
    let mut s = c.exec.m.lock().unwrap_or_else(|e| e.into_inner());
    let idx = s.threads.len();
    s.threads.push(ThreadSlot { status: Status::Runnable, woke_by_timeout: false, yielded: false });
    let exec = Arc::clone(&c.exec);
    let handle = std::thread::Builder::new()
        .name(format!("gpar-model-{idx}"))
        .spawn(move || run_model_thread(exec, idx, f))
        .expect("gpar-model: OS thread spawn failed");
    s.handles.push(handle);
    idx
}

impl Execution {
    /// The universal park: record the op, publish `status`, release the
    /// token, wait to be granted it again. Unwinds with
    /// [`AbortSentinel`] if the execution is aborting.
    fn park(&self, idx: usize, op: &'static str, status: Status, yielded: bool) {
        let mut s = self.m.lock().unwrap_or_else(|e| e.into_inner());
        s.trace.push((idx, op));
        s.steps += 1;
        if s.steps > s.max_steps && !s.aborting {
            s.aborting = true;
            s.failure_kind = Some(FailureKind::StepBudget);
        }
        s.threads[idx].status = status;
        s.threads[idx].yielded = yielded;
        s.token = None;
        self.cv.notify_all();
        loop {
            if s.token == Some(idx) {
                break;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.aborting {
            drop(s);
            panic::panic_any(AbortSentinel);
        }
        s.threads[idx].status = Status::Running;
    }
}

/// Body of every model OS thread: wait for the first grant, run the
/// user closure under `catch_unwind`, record the outcome, release the
/// token.
fn run_model_thread(exec: Arc<Execution>, idx: usize, f: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), idx }));
    // Initial grant (the spawn itself was the scheduling point).
    {
        let mut s = exec.m.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if s.token == Some(idx) {
                break;
            }
            s = exec.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.aborting {
            finish_thread(&exec, idx, &mut s);
            CTX.with(|c| *c.borrow_mut() = None);
            return;
        }
        s.threads[idx].status = Status::Running;
    }
    let outcome = panic::catch_unwind(AssertUnwindSafe(f));
    let mut s = exec.m.lock().unwrap_or_else(|e| e.into_inner());
    match outcome {
        Ok(()) => {}
        Err(p) if p.is::<AbortSentinel>() => {}
        Err(p) => {
            if s.failure.is_none() {
                s.failure = Some(p);
                s.failure_kind = Some(FailureKind::Panic);
            }
            s.aborting = true;
        }
    }
    finish_thread(&exec, idx, &mut s);
    drop(s);
    CTX.with(|c| *c.borrow_mut() = None);
}

fn finish_thread(exec: &Execution, idx: usize, s: &mut ExecState) {
    s.threads[idx].status = Status::Finished;
    // Wake joiners.
    for t in &mut s.threads {
        if t.status == Status::BlockedJoin(idx) {
            t.status = Status::Runnable;
        }
    }
    s.token = None;
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------
// The DFS explorer.
// ---------------------------------------------------------------------

/// One recorded scheduling decision: the runnable candidates in
/// exploration order (scheduler default first) and which of them the
/// current execution is taking.
struct Decision {
    candidates: Vec<usize>,
    /// Preemption cost of each candidate (parallel to `candidates`).
    costs: Vec<u32>,
    cursor: usize,
}

struct Explorer {
    tape: Vec<Decision>,
    depth: usize,
    preemption_bound: Option<u32>,
    used_preemptions: u32,
    max_depth_seen: usize,
}

impl Explorer {
    /// Picks the next thread among `runnable` (len >= 2), recording or
    /// replaying a decision.
    fn choose(&mut self, runnable: &[usize], last_ran: usize, last_yielded: bool) -> usize {
        let has_last = runnable.contains(&last_ran);
        let default = if has_last && !last_yielded {
            last_ran
        } else {
            // Voluntary yield or the last thread is gone: round-robin to
            // the next runnable index after it (deterministic, and fair
            // enough that spin loops make progress).
            *runnable.iter().find(|&&i| i > last_ran).unwrap_or(&runnable[0])
        };
        let cost = |cand: usize| -> u32 {
            // Switching away from a thread that could have continued is a
            // preemption — unless it volunteered the processor.
            u32::from(cand != last_ran && has_last && !last_yielded)
        };
        let chosen = if self.depth < self.tape.len() {
            let d = &self.tape[self.depth];
            debug_assert_eq!(
                d.candidates.first(),
                Some(&default),
                "gpar-model: nondeterministic test closure (schedule replay diverged)"
            );
            d.candidates[d.cursor]
        } else {
            let budget_left = self.preemption_bound.map(|b| b - self.used_preemptions.min(b));
            let mut candidates = vec![default];
            let mut costs = vec![cost(default)];
            for &r in runnable {
                if r == default {
                    continue;
                }
                if budget_left.is_none_or(|left| cost(r) <= left) {
                    candidates.push(r);
                    costs.push(cost(r));
                }
            }
            self.tape.push(Decision { candidates, costs, cursor: 0 });
            self.tape[self.depth].candidates[0]
        };
        self.used_preemptions += self.tape[self.depth].costs[self.tape[self.depth].cursor];
        self.depth += 1;
        self.max_depth_seen = self.max_depth_seen.max(self.depth);
        chosen
    }

    /// Rewinds to the deepest decision with an unexplored candidate.
    /// Returns `false` when the whole tree has been explored.
    fn advance(&mut self) -> bool {
        while let Some(mut d) = self.tape.pop() {
            if d.cursor + 1 < d.candidates.len() {
                d.cursor += 1;
                self.tape.push(d);
                self.depth = 0;
                self.used_preemptions = 0;
                return true;
            }
        }
        false
    }
}

/// Bounds and knobs for a model-checking run.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum forced preemptions per schedule (`None` = unbounded, a
    /// fully exhaustive search). Default 2 — the CHESS bound.
    pub preemption_bound: Option<u32>,
    /// Hard cap on executions; exceeding it ends the run with
    /// [`Report::complete`] `false`.
    pub max_executions: u64,
    /// Per-execution scheduling-point budget; exceeding it fails the
    /// execution as a livelock ([`FailureKind::StepBudget`]).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self { preemption_bound: Some(2), max_executions: 500_000, max_steps: 20_000 }
    }
}

/// Why a model-checking run failed; carried in [`ModelFailure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (an assertion about the protocol failed,
    /// or the protocol itself hit UB-adjacent state that a debug assert
    /// caught).
    Panic,
    /// No thread was runnable, none had finished everything, and no
    /// timed wait was available to rescue.
    Deadlock,
    /// One execution exceeded [`Builder::max_steps`] scheduling points —
    /// a livelock (e.g. a spin loop whose exit condition never comes).
    StepBudget,
}

/// A failed run: the kind, the panic message if any, and the exact
/// interleaving (thread, operation) that produced it.
#[derive(Debug)]
pub struct ModelFailure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Panic payload rendered to text (empty for deadlock/livelock).
    pub message: String,
    /// The schedule that failed, as `(thread index, operation)` steps.
    pub trace: Vec<(usize, &'static str)>,
    /// Executions completed before the failing one.
    pub executions: u64,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model check failed after {} complete executions: {:?} {}",
            self.executions, self.kind, self.message
        )?;
        writeln!(f, "failing schedule ({} points):", self.trace.len())?;
        for (t, op) in &self.trace {
            writeln!(f, "  t{t}: {op}")?;
        }
        Ok(())
    }
}

/// Outcome of a completed (non-failing) run.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Executions explored.
    pub executions: u64,
    /// `true` when the decision tree was exhausted within
    /// [`Builder::max_executions`]; `false` when the cap cut it short.
    pub complete: bool,
    /// Total timed waits ended by the deadlock-rescue path rather than a
    /// notification, across all executions. A liveness-correct protocol
    /// shows 0: its wakeups arrive without leaning on timeouts.
    pub timeout_rescues: u64,
    /// Deepest decision tape seen (a size-of-search diagnostic).
    pub max_depth: usize,
}

impl Builder {
    /// A builder with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the preemption bound (`None` = exhaustive).
    #[must_use]
    pub fn preemption_bound(mut self, bound: Option<u32>) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Sets the execution cap.
    #[must_use]
    pub fn max_executions(mut self, cap: u64) -> Self {
        self.max_executions = cap;
        self
    }

    /// Runs `f` under every schedule within the bounds. Returns the
    /// report, or the first failing schedule.
    pub fn check<F>(&self, f: F) -> Result<Report, ModelFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        assert!(!is_active(), "gpar-model: nested model executions are not supported");
        let f = Arc::new(f);
        let mut explorer = Explorer {
            tape: Vec::new(),
            depth: 0,
            preemption_bound: self.preemption_bound,
            used_preemptions: 0,
            max_depth_seen: 0,
        };
        let mut executions = 0u64;
        let mut timeout_rescues = 0u64;
        loop {
            let outcome = run_one_execution(&f, &mut explorer, self.max_steps);
            timeout_rescues += outcome.timeout_rescues;
            if let Some((kind, payload, trace)) = outcome.failure {
                return Err(ModelFailure {
                    kind,
                    message: payload_to_string(payload.as_deref()),
                    trace,
                    executions,
                });
            }
            executions += 1;
            if executions >= self.max_executions {
                return Ok(Report {
                    executions,
                    complete: false,
                    timeout_rescues,
                    max_depth: explorer.max_depth_seen,
                });
            }
            if !explorer.advance() {
                return Ok(Report {
                    executions,
                    complete: true,
                    timeout_rescues,
                    max_depth: explorer.max_depth_seen,
                });
            }
        }
    }
}

struct ExecutionOutcome {
    timeout_rescues: u64,
    #[allow(clippy::type_complexity)]
    failure: Option<(FailureKind, Option<Box<dyn Any + Send>>, Vec<(usize, &'static str)>)>,
}

fn run_one_execution<F>(f: &Arc<F>, explorer: &mut Explorer, max_steps: usize) -> ExecutionOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution {
        m: StdMutex::new(ExecState {
            threads: vec![ThreadSlot {
                status: Status::Runnable,
                woke_by_timeout: false,
                yielded: false,
            }],
            token: None,
            aborting: false,
            failure: None,
            failure_kind: None,
            trace: vec![(0, "start")],
            steps: 0,
            max_steps,
            cv_seq: 0,
            timeout_rescues: 0,
            last_ran: 0,
            handles: Vec::new(),
        }),
        cv: StdCondvar::new(),
    });
    // Thread 0 runs the closure itself.
    let root = {
        let exec = Arc::clone(&exec);
        let f = Arc::clone(f);
        std::thread::Builder::new()
            .name("gpar-model-0".into())
            .spawn(move || run_model_thread(exec, 0, move || f()))
            .expect("gpar-model: OS thread spawn failed")
    };

    // The controller loop.
    loop {
        let mut s = exec.m.lock().unwrap_or_else(|e| e.into_inner());
        while s.token.is_some() {
            s = exec.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.threads.iter().all(|t| t.status == Status::Finished) {
            break;
        }
        if s.aborting {
            // Drain: grant the token to each surviving thread so it
            // unwinds with the sentinel (releasing its locks).
            let next =
                s.threads.iter().position(|t| t.status != Status::Finished).expect("drain target");
            s.token = Some(next);
            exec.cv.notify_all();
            continue;
        }
        let mut runnable: Vec<usize> = s
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            // Timeout rescue: fire every timed condvar wait at once.
            let timed: Vec<usize> = s
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.status, Status::CvWait { timed: true, .. }))
                .map(|(i, _)| i)
                .collect();
            if timed.is_empty() {
                s.aborting = true;
                s.failure_kind = Some(FailureKind::Deadlock);
                continue;
            }
            s.timeout_rescues += timed.len() as u64;
            for i in timed {
                s.threads[i].status = Status::Runnable;
                s.threads[i].woke_by_timeout = true;
                runnable.push(i);
            }
        }
        // CHESS-style fairness: a thread that voluntarily yielded is not
        // eligible again until every non-yielded runnable thread has had
        // its turn (i.e. until none remain). This is what keeps spin
        // loops from branching the search unboundedly — and it is sound
        // for yields used as they're meant: stateless waiting.
        let eligible: Vec<usize> =
            runnable.iter().copied().filter(|&i| !s.threads[i].yielded).collect();
        let pool = if eligible.is_empty() { runnable } else { eligible };
        let chosen = if pool.len() == 1 {
            pool[0]
        } else {
            let last = s.last_ran;
            let yielded = s.threads.get(last).is_some_and(|t| t.yielded);
            explorer.choose(&pool, last, yielded)
        };
        s.last_ran = chosen;
        s.threads[chosen].status = Status::Running;
        s.token = Some(chosen);
        exec.cv.notify_all();
    }

    // All model threads have finished; reap the OS threads.
    let (handles, rescues, failure_kind, failure, trace) = {
        let mut s = exec.m.lock().unwrap_or_else(|e| e.into_inner());
        (
            std::mem::take(&mut s.handles),
            s.timeout_rescues,
            s.failure_kind,
            s.failure.take(),
            std::mem::take(&mut s.trace),
        )
    };
    let _ = root.join();
    for h in handles {
        let _ = h.join();
    }
    ExecutionOutcome {
        timeout_rescues: rescues,
        failure: failure_kind.map(|kind| (kind, failure, trace)),
    }
}

fn payload_to_string(p: Option<&(dyn Any + Send)>) -> String {
    match p {
        Some(p) => {
            if let Some(s) = p.downcast_ref::<&'static str>() {
                (*s).to_string()
            } else if let Some(s) = p.downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            }
        }
        None => String::new(),
    }
}

/// Checks `f` with default bounds, panicking (with the failing
/// interleaving) on any failure and asserting the exploration actually
/// finished. Use [`Builder`] directly to customize or to inspect
/// failures programmatically.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match Builder::default().check(f) {
        Ok(report) => {
            assert!(
                report.complete,
                "gpar-model: exploration hit the execution cap; raise max_executions or \
                 tighten the scenario ({} executions)",
                report.executions
            );
            report
        }
        Err(failure) => panic!("{failure}"),
    }
}
