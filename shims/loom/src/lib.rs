//! # gpar-model
//!
//! A loom-style deterministic concurrency model checker, written against
//! the same constraints as the other shims: offline, std-only, no
//! external dependencies.
//!
//! ## What it does
//!
//! [`model`] (or a configured [`Builder`]) runs a test closure over
//! **every** schedule of its threads, up to a configurable preemption
//! bound — not a random sample of interleavings the way a stress test
//! does. The closure spawns threads with [`thread::spawn`] and
//! synchronizes through the instrumented primitives in [`sync`]
//! (atomics, `Mutex`, `RwLock`, `Condvar`); every operation on them is a
//! *scheduling point* where the checker may switch threads. A depth-first
//! explorer enumerates the schedule tree: each execution replays a
//! decision prefix deterministically, takes the next unexplored branch,
//! and runs scheduler defaults to completion. Assertion failures,
//! deadlocks (no runnable thread and no timed wait to rescue), and
//! step-budget livelocks are reported with the full interleaving trace
//! that produced them.
//!
//! The production crates thread these primitives in behind a `model`
//! cargo feature (`shims/arc-swap`, `shims/parking_lot`, `crates/obs`),
//! so `gpar-model-tests` exercises the *real* protocol code — the
//! arc-swap borrow ledger, the metrics seqlock, the exec `Injector`, the
//! serve `UpdateClock` — under exhaustive interleaving, while default
//! builds compile none of this in.
//!
//! ## The model
//!
//! * Threads are real OS threads, but exactly **one** runs at a time; a
//!   token handoff serializes them, which is what makes replay
//!   deterministic.
//! * Atomic operations execute with their requested orderings on real
//!   atomics, but because execution is serialized, the explored semantics
//!   are **sequentially consistent**. The checker therefore verifies
//!   *protocol/atomicity* properties (lost updates, torn multi-word
//!   transactions, use-after-free, missed wakeups, double-pops) over all
//!   interleavings; it does not verify weak-memory ordering choices —
//!   those are covered by the `cargo xtask lint` ordering-justification
//!   rule and the best-effort Miri CI leg.
//! * `compare_exchange_weak` never fails spuriously under the model
//!   (spurious failure would make replay nondeterministic); the retry
//!   loops around it are still explored under every interleaving.
//! * Timed waits ([`sync::Condvar::wait_for`]) never time out while any
//!   thread can still run. Only when the execution would otherwise
//!   deadlock does the scheduler fire them (a *timeout rescue*), and the
//!   [`Report`] counts how often that happened — a protocol whose
//!   liveness silently leans on its timeout re-check shows up as a
//!   non-zero [`Report::timeout_rescues`], which the model tests assert
//!   to be zero.
//! * Exploration is **preemption-bounded** (default: 2 forced
//!   preemptions per schedule, the CHESS result — almost all concurrency
//!   bugs need very few). Voluntary reschedules — blocking, finishing,
//!   [`hint::spin_loop`], [`thread::yield_now`] — are free, so spin/retry
//!   loops don't exhaust the bound. `preemption_bound(None)` makes the
//!   search fully exhaustive.
//!
//! Outside an active execution every primitive passes straight through
//! to `std` (one thread-local check), so crates built with the `model`
//! feature still behave — and their regular test suites still pass —
//! when nothing is being model-checked.
//!
//! ```
//! use gpar_model::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! // A correct CAS increment: the final value is 2 under EVERY schedule.
//! let report = gpar_model::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = gpar_model::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete && report.executions >= 2);
//! ```

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{model, Builder, FailureKind, ModelFailure, Report};

/// Spin-loop hint, instrumented: under an active model execution this is
/// a **voluntary yield** — the scheduler must hand the token to another
/// runnable thread if one exists (so a spin-wait cannot monopolize the
/// schedule and livelock the search) — and costs no preemption budget.
/// Outside an execution it is `std::hint::spin_loop`.
pub mod hint {
    /// See [module docs](self).
    #[inline]
    pub fn spin_loop() {
        if crate::scheduler::is_active() {
            crate::scheduler::yield_voluntary("hint.spin_loop");
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Whether the calling thread is currently inside a model execution.
/// Shims use this to decide between instrumented and passthrough paths;
/// exposed for tests and diagnostics.
pub fn is_active() -> bool {
    scheduler::is_active()
}
