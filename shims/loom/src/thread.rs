//! Instrumented thread spawn/join. Inside a model execution, spawned
//! closures run on real OS threads serialized by the scheduler token;
//! outside one, this is `std::thread` with an infallible `join` (model
//! code has no use for the poison-style `Result`).

use crate::scheduler::{self, Status};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle returned by [`spawn`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model { idx: usize, result: Arc<StdMutex<Option<T>>> },
}

/// Spawns a thread. Under the model this registers a new schedulable
/// thread (the spawn itself is a scheduling point); otherwise it is
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if scheduler::is_active() {
        let result = Arc::new(StdMutex::new(None));
        let slot = Arc::clone(&result);
        let idx = scheduler::spawn_thread(move || {
            let out = f();
            *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
        });
        JoinHandle { inner: Inner::Model { idx, result } }
    } else {
        JoinHandle { inner: Inner::Std(std::thread::spawn(f)) }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Under the
    /// model the caller parks (not a busy wait) until the target's exit
    /// wakes it. Panics in the target propagate as a model failure, not
    /// through this return value.
    pub fn join(self) -> T {
        match self.inner {
            Inner::Std(h) => h.join().expect("gpar-model: passthrough thread panicked"),
            Inner::Model { idx, result } => {
                while !scheduler::is_finished(idx) {
                    scheduler::block_on("thread.join", Status::BlockedJoin(idx));
                }
                result
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("gpar-model: joined thread produced no result")
            }
        }
    }
}

/// Voluntary reschedule: under the model this must switch to another
/// runnable thread if one exists (free of preemption budget); outside
/// one it is `std::thread::yield_now`.
pub fn yield_now() {
    if scheduler::is_active() {
        scheduler::yield_voluntary("thread.yield_now");
    } else {
        std::thread::yield_now();
    }
}
