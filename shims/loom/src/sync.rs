//! Instrumented synchronization primitives: drop-in `std`-shaped
//! atomics plus the `parking_lot`-shim-shaped `Mutex`/`Condvar`/`RwLock`.
//!
//! Every operation first checks whether the calling thread is inside a
//! model execution. If not, it delegates straight to `std` (so crates
//! compiled with the `model` feature behave identically outside
//! `gpar_model::model(..)`). If so, the operation is a scheduling point:
//! the explorer may switch threads before it runs, contended locks park
//! the thread in the scheduler instead of the OS, and condvar waits are
//! woken only by instrumented notifies (or a deadlock-rescue timeout for
//! `wait_for`, which the run's [`crate::Report`] counts).

use crate::scheduler::{self, Status};
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Instrumented atomics. Types mirror `std::sync::atomic`; every
/// operation (except the `&mut self` ones, which prove exclusivity) is a
/// scheduling point under the model. Because model execution is
/// serialized, the explored semantics are sequentially consistent
/// regardless of the `Ordering` argument — see the crate docs.
pub mod atomic {
    use crate::scheduler;
    pub use std::sync::atomic::Ordering;

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Instrumented counterpart of the `std` atomic of the same
            /// name; see the [module docs](self).
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic (const, so it works in statics).
                #[must_use]
                pub const fn new(v: $ty) -> Self {
                    Self { inner: std::sync::atomic::$std::new(v) }
                }

                /// See the `std` atomic's method of the same name.
                pub fn load(&self, order: Ordering) -> $ty {
                    scheduler::point("atomic.load");
                    self.inner.load(order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn store(&self, v: $ty, order: Ordering) {
                    scheduler::point("atomic.store");
                    self.inner.store(v, order);
                }

                /// See the `std` atomic's method of the same name.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.swap");
                    self.inner.swap(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    scheduler::point("atomic.compare_exchange");
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Like `std`'s, except it never fails spuriously under
                /// the model (spurious failure would break deterministic
                /// replay); the surrounding retry loop is still explored
                /// under every interleaving.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    scheduler::point("atomic.compare_exchange_weak");
                    if crate::scheduler::is_active() {
                        self.inner.compare_exchange(current, new, success, failure)
                    } else {
                        self.inner.compare_exchange_weak(current, new, success, failure)
                    }
                }

                /// Exclusive access; not a scheduling point.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }

                /// Consumes the atomic; not a scheduling point.
                #[must_use]
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! instrumented_atomic_int {
        ($name:ident, $std:ident, $ty:ty) => {
            instrumented_atomic!($name, $std, $ty);

            impl $name {
                /// See the `std` atomic's method of the same name.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_add");
                    self.inner.fetch_add(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_sub");
                    self.inner.fetch_sub(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_and");
                    self.inner.fetch_and(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_or");
                    self.inner.fetch_or(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn fetch_xor(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_xor");
                    self.inner.fetch_xor(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_max");
                    self.inner.fetch_max(v, order)
                }

                /// See the `std` atomic's method of the same name.
                pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                    scheduler::point("atomic.fetch_min");
                    self.inner.fetch_min(v, order)
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, AtomicBool, bool);
    instrumented_atomic_int!(AtomicUsize, AtomicUsize, usize);
    instrumented_atomic_int!(AtomicU32, AtomicU32, u32);
    instrumented_atomic_int!(AtomicU64, AtomicU64, u64);
    instrumented_atomic_int!(AtomicI64, AtomicI64, i64);

    impl AtomicBool {
        /// See `std::sync::atomic::AtomicBool::fetch_or`.
        pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
            scheduler::point("atomic.fetch_or");
            self.inner.fetch_or(v, order)
        }

        /// See `std::sync::atomic::AtomicBool::fetch_and`.
        pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
            scheduler::point("atomic.fetch_and");
            self.inner.fetch_and(v, order)
        }
    }

    /// Instrumented memory fence: a scheduling point followed by the
    /// real `std` fence (a no-op for the model's interleaving semantics,
    /// but kept so passthrough behavior is exact).
    pub fn fence(order: Ordering) {
        scheduler::point("atomic.fence");
        std::sync::atomic::fence(order);
    }
}

fn addr_of<T>(r: &T) -> usize {
    std::ptr::from_ref(r) as usize
}

/// Mutual exclusion with the same non-poisoning surface as the
/// `parking_lot` shim. Under the model, contention parks the thread in
/// the scheduler (the OS lock is only ever `try_lock`ed, so the explorer
/// keeps full control of who runs).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex (const, so it works in statics).
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::Mutex::new(t) }
    }

    /// Acquires the lock, parking in the model scheduler on contention.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if scheduler::is_active() {
            loop {
                scheduler::point("mutex.lock");
                match self.inner.try_lock() {
                    Ok(g) => return MutexGuard { lock: self, inner: Some(g), model: true },
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        return MutexGuard { lock: self, inner: Some(e.into_inner()), model: true }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        scheduler::block_on("mutex.blocked", Status::BlockedMutex(addr_of(self)));
                    }
                }
            }
        } else {
            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            MutexGuard { lock: self, inner: Some(g), model: false }
        }
    }

    /// Attempts the lock without blocking; a scheduling point either way.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        scheduler::point("mutex.try_lock");
        let model = scheduler::is_active();
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { lock: self, inner: Some(g), model }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { lock: self, inner: Some(e.into_inner()), model })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Guard for [`Mutex`]; releasing it wakes model threads parked on the
/// lock.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only transiently inside `Condvar::wait`/`wait_for`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Whether this guard was acquired inside a model execution (and so
    /// must emit the scheduler wake edge on release).
    model: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("gpar-model: guard used after condvar release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("gpar-model: guard used after condvar release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock first, then wake model waiters. No
        // scheduling point here: `drop` may run during an abort unwind,
        // where parking again would double-panic.
        if self.inner.take().is_some() && self.model {
            scheduler::on_mutex_release(addr_of(self.lock));
        }
    }
}

/// Result of [`Condvar::wait_for`], mirroring `std`'s.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed (under the
    /// model: because the deadlock-rescue fired) rather than a notify.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with the `parking_lot`-shim surface
/// (guard-consuming `wait`/`wait_for`). Under the model, waiters park in
/// the scheduler and are woken FIFO by instrumented notifies; a notify
/// with no parked waiter is lost, exactly like the real primitive —
/// which is what lets the explorer find missed-wakeup bugs.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condvar (const, so it works in statics).
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Releases the guard's mutex and parks until notified; reacquires
    /// before returning. Under the model the release+park pair is a
    /// single scheduler transaction, so no notify can slip between them.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        if scheduler::is_active() && guard.model {
            // A scheduling point BEFORE the release+park transaction:
            // this is the real-world window between the caller's last
            // predicate check and the wait registering, where a notify
            // can land and be lost — the explorer must be able to
            // interleave here to find missed-wakeup bugs.
            scheduler::point("condvar.wait");
            let lock = guard.lock;
            drop(guard.inner.take());
            scheduler::on_mutex_release(addr_of(lock));
            let _ = scheduler::cv_park("condvar.park", addr_of(self), false);
            lock.lock()
        } else {
            let lock = guard.lock;
            let g = guard.inner.take().expect("gpar-model: guard used after condvar release");
            let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
            MutexGuard { lock, inner: Some(g), model: false }
        }
    }

    /// Like [`Self::wait`] with a timeout. Under the model the timeout
    /// never fires while any thread can still make progress; it fires
    /// only as a deadlock rescue, and each rescue is counted in the
    /// run's [`crate::Report::timeout_rescues`].
    pub fn wait_for<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        if scheduler::is_active() && guard.model {
            // Same pre-transaction point as `wait` (see the comment
            // there).
            scheduler::point("condvar.wait_for");
            let lock = guard.lock;
            drop(guard.inner.take());
            scheduler::on_mutex_release(addr_of(lock));
            let timed_out = scheduler::cv_park("condvar.park_timed", addr_of(self), true);
            (lock.lock(), WaitTimeoutResult(timed_out))
        } else {
            let lock = guard.lock;
            let g = guard.inner.take().expect("gpar-model: guard used after condvar release");
            let (g, r) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
            (MutexGuard { lock, inner: Some(g), model: false }, WaitTimeoutResult(r.timed_out()))
        }
    }

    /// Wakes one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        scheduler::point("condvar.notify_one");
        if scheduler::is_active() {
            scheduler::cv_notify(addr_of(self), 1);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        scheduler::point("condvar.notify_all");
        if scheduler::is_active() {
            scheduler::cv_notify(addr_of(self), usize::MAX);
        } else {
            self.inner.notify_all();
        }
    }
}

/// Reader-writer lock with the `parking_lot`-shim surface. Under the
/// model, contended acquisitions park in the scheduler and every release
/// re-wakes all parked contenders to re-contend.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock (const, so it works in statics).
    pub const fn new(t: T) -> Self {
        Self { inner: std::sync::RwLock::new(t) }
    }

    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if scheduler::is_active() {
            loop {
                scheduler::point("rwlock.read");
                match self.inner.try_read() {
                    Ok(g) => return RwLockReadGuard { lock: self, inner: Some(g), model: true },
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        return RwLockReadGuard {
                            lock: self,
                            inner: Some(e.into_inner()),
                            model: true,
                        }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        scheduler::block_on(
                            "rwlock.read_blocked",
                            Status::BlockedRw { addr: addr_of(self), write: false },
                        );
                    }
                }
            }
        } else {
            let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
            RwLockReadGuard { lock: self, inner: Some(g), model: false }
        }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if scheduler::is_active() {
            loop {
                scheduler::point("rwlock.write");
                match self.inner.try_write() {
                    Ok(g) => return RwLockWriteGuard { lock: self, inner: Some(g), model: true },
                    Err(std::sync::TryLockError::Poisoned(e)) => {
                        return RwLockWriteGuard {
                            lock: self,
                            inner: Some(e.into_inner()),
                            model: true,
                        }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        scheduler::block_on(
                            "rwlock.write_blocked",
                            Status::BlockedRw { addr: addr_of(self), write: true },
                        );
                    }
                }
            }
        } else {
            let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
            RwLockWriteGuard { lock: self, inner: Some(g), model: false }
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: bool,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("gpar-model: rwlock guard already released")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.model {
            scheduler::on_rw_release(addr_of(self.lock));
        }
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("gpar-model: rwlock guard already released")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("gpar-model: rwlock guard already released")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() && self.model {
            scheduler::on_rw_release(addr_of(self.lock));
        }
    }
}
