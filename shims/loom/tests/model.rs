//! Self-tests for the model checker: known-racy protocols must fail,
//! known-correct ones must pass, and the exploration itself must be
//! exhaustive and deterministic.

use gpar_model::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use gpar_model::sync::{Condvar, Mutex};
use gpar_model::{thread, Builder, FailureKind};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::sync::Mutex as StdMutex;

/// A load/store increment race: across all interleavings both final
/// values {1, 2} must be observed (the lost update exists and the
/// explorer finds it).
#[test]
fn racy_increment_explores_both_outcomes() {
    let seen = Arc::new(StdMutex::new(BTreeSet::new()));
    let seen2 = Arc::clone(&seen);
    let report = gpar_model::model(move || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join();
        seen2.lock().unwrap().insert(n.load(Ordering::SeqCst));
    });
    assert!(report.complete);
    assert!(report.executions >= 2, "expected multiple interleavings, got {}", report.executions);
    assert_eq!(*seen.lock().unwrap(), BTreeSet::from([1, 2]));
}

/// The same increment through fetch_add is atomic: every interleaving
/// ends at exactly 2.
#[test]
fn atomic_increment_always_two() {
    let report = gpar_model::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete && report.executions >= 2);
}

/// Mutex-protected read-modify-write: no lost update in any schedule,
/// and contention actually parks/wakes through the scheduler.
#[test]
fn mutexed_increment_always_two() {
    let report = gpar_model::model(|| {
        let n = Arc::new(Mutex::new(0usize));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let mut g = n2.lock();
            *g += 1;
        });
        {
            let mut g = n.lock();
            *g += 1;
        }
        t.join();
        assert_eq!(*n.lock(), 2);
    });
    assert!(report.complete);
}

/// Classic ABBA lock-order inversion: the explorer must find the
/// deadlock.
#[test]
fn abba_deadlock_detected() {
    let result = Builder::default().check(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    });
    let failure = result.expect_err("ABBA must deadlock under some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(!failure.trace.is_empty(), "failure must carry the interleaving");
}

/// Missed wakeup: the flag is set and the notify issued *outside* the
/// mutex, so a schedule exists where the notify lands between the
/// waiter's check and its park — and is lost. Untimed wait ⇒ deadlock.
#[test]
fn missed_wakeup_detected() {
    let result = Builder::default().check(|| {
        let m = Arc::new(Mutex::new(()));
        let cv = Arc::new(Condvar::new());
        let flag = Arc::new(AtomicBool::new(false));
        let (cv2, flag2) = (Arc::clone(&cv), Arc::clone(&flag));
        let t = thread::spawn(move || {
            flag2.store(true, Ordering::SeqCst);
            cv2.notify_one();
        });
        let mut g = m.lock();
        while !flag.load(Ordering::SeqCst) {
            g = cv.wait(g);
        }
        drop(g);
        t.join();
    });
    let failure = result.expect_err("lost notify must deadlock the waiter");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// The correct version of the same handshake — flag update and notify
/// under the mutex — completes in every schedule with zero timeout
/// rescues (its liveness never leans on a timed re-check).
#[test]
fn correct_handshake_no_rescues() {
    let report = gpar_model::model(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            let (m, cv) = &*state2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let mut g = m.lock();
        while !*g {
            g = cv.wait(g);
        }
        drop(g);
        t.join();
    });
    assert!(report.complete);
    assert_eq!(report.timeout_rescues, 0, "correct handshake must never need a rescue");
}

/// A timed wait with no notifier in sight: the rescue fires (instead of
/// deadlocking) and is counted, which is how the model tests assert a
/// protocol is *not* leaning on its timeout.
#[test]
fn timed_wait_rescue_counted() {
    let report = gpar_model::model(|| {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (g, r) = cv.wait_for(g, std::time::Duration::from_millis(1));
        assert!(r.timed_out());
        drop(g);
    });
    assert!(report.complete);
    assert!(report.timeout_rescues > 0);
}

/// Spin loops built on `hint::spin_loop` are voluntary yields: the
/// waited-on thread gets scheduled and the loop terminates without
/// burning the preemption bound or the step budget.
#[test]
fn spin_wait_makes_progress() {
    let report = gpar_model::model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let flag2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            flag2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            gpar_model::hint::spin_loop();
        }
        t.join();
    });
    assert!(report.complete);
}

/// Exploration is deterministic: two runs of the same scenario explore
/// exactly the same number of executions.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        Builder::default()
            .check(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let n2 = Arc::clone(&n);
                let t = thread::spawn(move || {
                    n2.fetch_add(1, Ordering::SeqCst);
                    n2.fetch_add(1, Ordering::SeqCst);
                });
                n.fetch_add(1, Ordering::SeqCst);
                t.join();
                assert_eq!(n.load(Ordering::SeqCst), 3);
            })
            .expect("no failure")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.max_depth, b.max_depth);
}

/// Outside `model(..)` every primitive passes through to std: plain
/// sequential use works with no scheduler in sight.
#[test]
fn passthrough_outside_model() {
    assert!(!gpar_model::is_active());
    let n = AtomicUsize::new(41);
    n.fetch_add(1, Ordering::Relaxed);
    assert_eq!(n.load(Ordering::Relaxed), 42);
    let m = Mutex::new(1);
    *m.lock() += 1;
    assert_eq!(*m.lock(), 2);
    let cv = Condvar::new();
    let (g, r) = cv.wait_for(m.lock(), std::time::Duration::from_millis(1));
    assert!(r.timed_out());
    drop(g);
    let t = thread::spawn(|| 7);
    assert_eq!(t.join(), 7);
}

/// An assertion failure inside the model surfaces as a Panic failure
/// with the failing interleaving attached.
#[test]
fn panic_reported_with_trace() {
    let result = Builder::default().check(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join();
        // Wrong claim: the racy increment CAN lose an update.
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
    let failure = result.expect_err("the lost-update schedule must be found");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("assertion"), "got: {}", failure.message);
    assert!(!failure.trace.is_empty());
}
