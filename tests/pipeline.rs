//! End-to-end pipeline tests on generated social graphs: mine → validate →
//! identify, plus cross-algorithm and cross-worker-count consistency.

use gpar::core::q_stats;
use gpar::datagen::{generate_rules, plant, PlantSpec, RuleGenConfig};
use gpar::mine::discover_then_diversify;
use gpar::prelude::*;

#[test]
fn mine_then_identify_round_trip() {
    let sg = pokec_like(900, 77);
    let pred = sg.schema.predicate("music", 0).unwrap();
    let cfg = DmineConfig { k: 4, sigma: 5, d: 2, workers: 3, max_rounds: 2, ..Default::default() };
    let mined = DMine::new(cfg).run(&sg.graph, &pred);
    assert!(!mined.top_k.is_empty(), "mining must find rules on homophily data");

    // Apply the mined rules back with EIP; the per-rule confidences must
    // agree with what the miner assembled. `d` must be the mining radius:
    // for antecedents whose y-component is disconnected from x, membership
    // is defined within the d-ball, so both sides must use the same d.
    let sigma: Vec<Gpar> = mined.top_k.iter().map(|r| (*r.rule).clone()).collect();
    let cfg = EipConfig { eta: 0.0, d: Some(2), ..EipConfig::new(EipAlgorithm::Match, 3) };
    let res = identify(&sg.graph, &sigma, &cfg).unwrap();
    for (mr, outcome) in mined.top_k.iter().zip(&res.per_rule) {
        assert_eq!(mr.stats.supp_r, outcome.stats.supp_r, "supp(R) must agree: {}", mr.rule);
        assert_eq!(
            mr.stats.supp_q_qbar, outcome.stats.supp_q_qbar,
            "supp(Qq̄) must agree: {}",
            mr.rule
        );
        assert_eq!(mr.stats.supp_q, outcome.stats.supp_q);
        assert_eq!(mr.stats.supp_qbar, outcome.stats.supp_qbar);
    }
}

#[test]
fn dmine_worker_counts_agree_even_when_capped() {
    let sg = pokec_like(400, 5);
    let pred = sg.schema.predicate("music", 0).unwrap();
    let run = |workers| {
        let cfg = DmineConfig {
            k: 4,
            sigma: 3,
            d: 2,
            workers,
            max_rounds: 2,
            ext_cap: 8, // force the cap to bite
            ..Default::default()
        };
        let res = DMine::new(cfg).run(&sg.graph, &pred);
        let mut codes: Vec<_> = res.sigma.iter().map(|r| r.rule.pr().canonical_code()).collect();
        codes.sort();
        (codes, res.sigma_size)
    };
    let (c1, s1) = run(1);
    let (c4, s4) = run(4);
    let (c9, s9) = run(9);
    assert_eq!(s1, s4);
    assert_eq!(s4, s9);
    assert_eq!(c1, c4);
    assert_eq!(c4, c9);
}

#[test]
fn naive_and_dmine_select_rules_with_comparable_objective() {
    let sg = pokec_like(500, 11);
    let pred = sg.schema.predicate("music", 0).unwrap();
    let cfg = DmineConfig { k: 4, sigma: 4, d: 2, workers: 2, max_rounds: 2, ..Default::default() };
    let a = DMine::new(cfg.clone()).run(&sg.graph, &pred);
    let b = discover_then_diversify(&sg.graph, &pred, &cfg);
    assert!(!a.top_k.is_empty() && !b.top_k.is_empty());
    let ratio = a.objective / b.objective.max(1e-12);
    assert!(ratio > 0.4 && ratio < 2.5, "objective ratio out of band: {ratio}");
}

#[test]
fn eip_algorithms_and_worker_counts_are_consistent_on_social_data() {
    let sg = gplus_like(500, 21);
    let pred = sg.schema.predicate("place", 0).unwrap();
    let rules = generate_rules(
        &sg.graph,
        &pred,
        &RuleGenConfig { count: 6, pattern_nodes: 4, pattern_edges: 5, max_radius: 2, seed: 31 },
    );
    assert!(!rules.is_empty());
    let reference = identify(
        &sg.graph,
        &rules,
        &EipConfig { eta: 1.0, ..EipConfig::new(EipAlgorithm::DisVf2, 1) },
    )
    .unwrap();
    for algo in [EipAlgorithm::Match, EipAlgorithm::Matchs, EipAlgorithm::Matchc] {
        for workers in [2, 5] {
            let r = identify(
                &sg.graph,
                &rules,
                &EipConfig { eta: 1.0, ..EipConfig::new(algo, workers) },
            )
            .unwrap();
            assert_eq!(r.customers, reference.customers, "{algo:?} x{workers}");
            for (a, b) in r.per_rule.iter().zip(&reference.per_rule) {
                assert_eq!(a.stats, b.stats, "{algo:?} x{workers}");
            }
        }
    }
}

#[test]
fn planted_rules_are_rediscovered_with_expected_confidence() {
    // Plant a rule at 80% confidence into an empty-ish graph, mine, and
    // check that something equivalent to it surfaces with conf in the
    // right band.
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let shop = vocab.intern("shop");
    let loyal = vocab.intern("loyal_to");
    let buys = vocab.intern("buys_at");
    let base = GraphBuilder::new(vocab.clone()).build();
    let mut pb = PatternBuilder::new(vocab);
    let x = pb.node(cust);
    let y = pb.node(shop);
    pb.edge(x, y, loyal);
    let truth = Gpar::new(pb.designate(x, y).build().unwrap(), buys).unwrap();
    let (g, report) = plant(
        &base,
        &truth,
        &PlantSpec { instances: 120, conf_rate: 0.8, negative_rate: 1.0, seed: 9 },
    );
    assert!(report.positives > 80);

    let pred = *truth.predicate();
    let qs = q_stats(&g, &pred);
    assert_eq!(qs.supp_q() as usize, report.positives);
    let cfg =
        DmineConfig { k: 2, sigma: 10, d: 2, workers: 2, max_rounds: 1, ..Default::default() };
    let res = DMine::new(cfg).run(&g, &pred);
    let found = res
        .sigma
        .iter()
        .find(|r| gpar::pattern::are_isomorphic(r.rule.pr(), truth.pr(), true))
        .expect("planted rule must be rediscovered");
    // BF conf of the planted rule: supp_r·supp_q̄/(supp_Qq̄·supp_q)
    // = positives·negatives/(negatives·positives) = 1.0 exactly, since
    // every planted negative matches the antecedent.
    assert_eq!(found.confidence, Confidence::Value(1.0));
    assert_eq!(found.support() as usize, report.positives);
}
