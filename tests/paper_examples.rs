//! Integration tests pinning down the paper's worked examples end to end
//! (Examples 1–10 of Fan et al., PVLDB 2015) across all crates.

use gpar::core::q_stats;
use gpar::prelude::*;

/// Builds the paper's graph `G1` (Fig. 2). Returns the graph, the six
/// customer nodes, and Le Bernardin.
fn build_g1() -> (Graph, Vec<NodeId>, NodeId) {
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let city = vocab.intern("city");
    let fr = vocab.intern("french_restaurant");
    let asian = vocab.intern("asian_restaurant");
    let (live_in, friend, like, r#in, visit) = (
        vocab.intern("live_in"),
        vocab.intern("friend"),
        vocab.intern("like"),
        vocab.intern("in"),
        vocab.intern("visit"),
    );
    let mut b = GraphBuilder::new(vocab);
    let custs: Vec<NodeId> = (0..6).map(|_| b.add_node(cust)).collect();
    let ny = b.add_node(city);
    let la = b.add_node(city);
    let le_bernardin = b.add_node(fr);
    let per_se = b.add_node(fr);
    let patina = b.add_node(fr);
    let shared = |b: &mut GraphBuilder, a: NodeId, c: NodeId, town: NodeId| {
        for _ in 0..3 {
            let r = b.add_node(fr);
            b.add_edge(a, r, like);
            b.add_edge(c, r, like);
            b.add_edge(r, town, r#in);
        }
    };
    b.add_edge(custs[0], ny, live_in);
    b.add_edge(custs[1], ny, live_in);
    b.add_edge(custs[0], custs[1], friend);
    b.add_edge(custs[1], custs[0], friend);
    shared(&mut b, custs[0], custs[1], ny);
    b.add_edge(custs[0], le_bernardin, visit);
    b.add_edge(custs[1], le_bernardin, visit);
    b.add_edge(le_bernardin, ny, r#in);
    b.add_edge(custs[2], ny, live_in);
    b.add_edge(custs[1], custs[2], friend);
    b.add_edge(custs[2], custs[1], friend);
    shared(&mut b, custs[1], custs[2], ny);
    b.add_edge(custs[2], le_bernardin, visit);
    b.add_edge(custs[3], la, live_in);
    b.add_edge(custs[3], per_se, visit);
    b.add_edge(per_se, la, r#in);
    b.add_edge(patina, la, r#in);
    b.add_edge(custs[4], la, live_in);
    b.add_edge(custs[5], la, live_in);
    b.add_edge(custs[4], custs[5], friend);
    b.add_edge(custs[5], custs[4], friend);
    shared(&mut b, custs[4], custs[5], la);
    let asian1 = b.add_node(asian);
    b.add_edge(custs[4], asian1, visit);
    b.add_edge(asian1, la, r#in);
    b.add_edge(custs[5], patina, visit);
    // cust6 also likes an Asian restaurant (Fig. 2: the `like` edge that
    // rule R8 keys on).
    let asian2 = b.add_node(asian);
    b.add_edge(custs[5], asian2, like);
    b.add_edge(asian2, la, r#in);
    (b.build(), custs, le_bernardin)
}

/// The antecedent `Q1` of Example 1, with the `C(u)=3` copies.
fn build_q1(g: &Graph) -> Pattern {
    let vocab = g.vocab().clone();
    let cust = vocab.get("cust").unwrap();
    let city = vocab.get("city").unwrap();
    let fr = vocab.get("french_restaurant").unwrap();
    let (live_in, friend, like, r#in, visit) = (
        vocab.get("live_in").unwrap(),
        vocab.get("friend").unwrap(),
        vocab.get("like").unwrap(),
        vocab.get("in").unwrap(),
        vocab.get("visit").unwrap(),
    );
    let mut q = PatternBuilder::new(vocab);
    let x = q.node(cust);
    let x2 = q.node(cust);
    let c = q.node(city);
    let y = q.node(fr);
    let rests = q.node_copies(fr, 3);
    q.edge(x, x2, friend);
    q.edge(x2, x, friend);
    q.edge(x, c, live_in);
    q.edge(x2, c, live_in);
    q.edge_to_copies(x, &rests, like);
    q.edge_to_copies(x2, &rests, like);
    q.edge_from_copies(&rests, c, r#in);
    q.edge(y, c, r#in);
    q.edge(x2, y, visit);
    q.designate(x, y).build().unwrap()
}

#[test]
fn example_3_and_5_support_and_confidence() {
    let (g, custs, _) = build_g1();
    let q1 = build_q1(&g);
    let visit = g.vocab().get("visit").unwrap();
    let r1 = Gpar::new(q1, visit).unwrap();
    let eval = evaluate(&r1, &g, &EvalOptions::default()).unwrap();
    // Example 3: Q1(x, G1) = {cust1, cust2, cust3, cust5}.
    let expect: gpar::graph::FxHashSet<NodeId> =
        [custs[0], custs[1], custs[2], custs[4]].into_iter().collect();
    assert_eq!(eval.q_matches, expect);
    // Example 5: supp(R1, G1) = 3.
    assert_eq!(eval.supp_r, 3);
    // Example 8: conf(R1, G1) = 0.6.
    assert_eq!(eval.confidence, Confidence::Value(0.6));
}

#[test]
fn example_8_diversified_pair_beats_redundant_pair() {
    let (g, custs, _) = build_g1();
    let vocab = g.vocab().clone();
    let cust = vocab.get("cust").unwrap();
    let fr = vocab.get("french_restaurant").unwrap();
    let asian = vocab.get("asian_restaurant").unwrap();
    let (friend, like, visit) =
        (vocab.get("friend").unwrap(), vocab.get("like").unwrap(), vocab.get("visit").unwrap());
    // R7-style: x, x' friends; x' likes FR^2; x' visits y.
    let mut b = PatternBuilder::new(vocab.clone());
    let x = b.node(cust);
    let x2 = b.node(cust);
    let y = b.node(fr);
    let rests = b.node_copies(fr, 2);
    b.edge(x, x2, friend);
    b.edge_to_copies(x2, &rests, like);
    b.edge(x2, y, visit);
    let r7 = Gpar::new(b.designate(x, y).build().unwrap(), visit).unwrap();
    // R8-style: x, x' friends; x likes an Asian restaurant; y is French.
    let mut b = PatternBuilder::new(vocab);
    let x = b.node(cust);
    let x2 = b.node(cust);
    let y = b.node(fr);
    let a = b.node(asian);
    b.edge(x, x2, friend);
    b.edge(x, a, like);
    let _ = y;
    let r8 = Gpar::new(b.designate(x, y).build().unwrap(), visit).unwrap();

    let opts = EvalOptions::default();
    let e7 = evaluate(&r7, &g, &opts).unwrap();
    let e8 = evaluate(&r8, &g, &opts).unwrap();
    // R7 identifies the New York group, R8 the LA one (cust6 likes an
    // Asian restaurant in G1).
    assert!(e7.pr_matches.contains(&custs[0]));
    assert!(e8.pr_matches.contains(&custs[5]));
    let d = diff(&e7.pr_matches, &e8.pr_matches);
    assert_eq!(d, 1.0, "disjoint customer groups have diff 1");
}

#[test]
fn eip_on_g1_identifies_cust5_as_potential_customer() {
    let (g, custs, _) = build_g1();
    let q1 = build_q1(&g);
    let visit = g.vocab().get("visit").unwrap();
    let r1 = Gpar::new(q1, visit).unwrap();
    // conf(R1) = 0.6; with η = 0.5 the rule fires and its antecedent
    // matches — including cust5, who has not visited a French restaurant
    // yet — are the recommendation targets.
    let cfg = EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, 2) };
    let res = identify(&g, std::slice::from_ref(&r1), &cfg).unwrap();
    assert!(res.customers.contains(&custs[4]), "cust5 is the target");
    assert_eq!(res.customers.len(), 4);
    // With η above the confidence nothing is identified.
    let cfg = EipConfig { eta: 0.7, ..EipConfig::new(EipAlgorithm::Match, 2) };
    let res = identify(&g, std::slice::from_ref(&r1), &cfg).unwrap();
    assert!(res.customers.is_empty());
}

#[test]
fn dmine_on_g1_finds_friend_like_rules() {
    let (g, _, _) = build_g1();
    let vocab = g.vocab().clone();
    let cust = vocab.get("cust").unwrap();
    let fr = vocab.get("french_restaurant").unwrap();
    let visit = vocab.get("visit").unwrap();
    let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(fr));
    let qs = q_stats(&g, &pred);
    // §6 setting on G1: supp(q) = 5, supp(q̄) = 1.
    assert_eq!(qs.supp_q(), 5);
    assert_eq!(qs.supp_qbar(), 1);
    let cfg = DmineConfig { k: 2, sigma: 2, d: 2, workers: 2, max_rounds: 2, ..Default::default() };
    let res = DMine::new(cfg).run(&g, &pred);
    assert!(!res.top_k.is_empty());
    for r in &res.top_k {
        assert!(r.support() >= 2);
        assert!(r.rule.radius().unwrap() <= 2);
        assert!(r.rule.is_nontrivial());
    }
}
