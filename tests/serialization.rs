//! Property-based round-trip tests for the serialization surfaces: the
//! text graph format, the binary graph codec, the binary pattern codec,
//! and binary rule catalogs — plus malformed-input rejection.

use gpar::core::{ConfStats, Gpar};
use gpar::graph::io::{read_graph, read_graph_binary, write_graph, write_graph_binary, ParseError};
use gpar::graph::{Graph, GraphBuilder, NodeId, Vocab};
use gpar::pattern::{
    read_pattern_binary, write_pattern_binary, EdgeCond, NodeCond, PEdge, PNodeId, Pattern,
};
use gpar::serve::RuleCatalog;
use proptest::prelude::*;
use std::sync::Arc;

const NLABELS: u32 = 4;
const ELABELS: u32 = 3;

/// Strategy: a random small labeled digraph (≤ 10 nodes, ≤ 24 edges).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..10, collection::vec((0u32..10, 0u32..10, 0u32..ELABELS), 0..24)).prop_map(
        |(n, edges)| {
            let vocab = Vocab::new();
            let nl: Vec<_> = (0..NLABELS).map(|i| vocab.intern(&format!("node_{i}"))).collect();
            let el: Vec<_> = (0..ELABELS).map(|i| vocab.intern(&format!("edge_{i}"))).collect();
            let mut b = GraphBuilder::new(vocab);
            for i in 0..n {
                b.add_node(nl[i % nl.len()]);
            }
            for (s, d, l) in edges {
                b.add_edge(NodeId(s % n as u32), NodeId(d % n as u32), el[l as usize]);
            }
            b.build()
        },
    )
}

/// Strategy: a random valid pattern with designated x (and sometimes y).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (1usize..6, collection::vec((0u32..6, 0u32..6, 0u32..ELABELS, 0u32..4), 0..8), 0u32..6, 0u32..7)
        .prop_map(|(n, edges, x, y)| {
            let vocab = Vocab::new();
            let nl: Vec<_> = (0..NLABELS).map(|i| vocab.intern(&format!("node_{i}"))).collect();
            let el: Vec<_> = (0..ELABELS).map(|i| vocab.intern(&format!("edge_{i}"))).collect();
            // Mix of labeled and wildcard node conditions.
            let conds: Vec<NodeCond> = (0..n)
                .map(|i| if i % 3 == 2 { NodeCond::Any } else { NodeCond::Label(nl[i % nl.len()]) })
                .collect();
            let mut pedges = Vec::new();
            for (s, d, l, any) in edges {
                let e = PEdge {
                    src: PNodeId(s % n as u32),
                    dst: PNodeId(d % n as u32),
                    cond: if any == 0 { EdgeCond::Any } else { EdgeCond::Label(el[l as usize]) },
                };
                if !pedges.contains(&e) {
                    pedges.push(e);
                }
            }
            let x = PNodeId(x % n as u32);
            let y = if y as usize >= n { None } else { Some(PNodeId(y)) };
            Pattern::from_parts(conds, pedges, x, y, vocab).expect("constructed valid")
        })
}

fn graphs_equal(a: &Graph, b: &Graph) -> bool {
    // Structural equality with label comparison *by name* (the vocabs
    // differ after a round-trip into a fresh Vocab).
    if a.node_count() != b.node_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    let name = |g: &Graph, l| g.vocab().resolve(l);
    for v in a.nodes() {
        if name(a, a.node_label(v)) != name(b, b.node_label(v)) {
            return false;
        }
        let ea = a.out_edges(v);
        let eb = b.out_edges(v);
        if ea.len() != eb.len() {
            return false;
        }
        let mut la: Vec<_> = ea.iter().map(|e| (name(a, e.label), e.node)).collect();
        let mut lb: Vec<_> = eb.iter().map(|e| (name(b, e.label), e.node)).collect();
        la.sort();
        lb.sort();
        if la != lb {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_roundtrip_preserves_graphs(g in arb_graph()) {
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(buf.as_slice(), Vocab::new()).unwrap();
        prop_assert!(graphs_equal(&g, &g2));
    }

    #[test]
    fn binary_roundtrip_preserves_graphs(g in arb_graph()) {
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        let g2 = read_graph_binary(buf.as_slice(), Vocab::new()).unwrap();
        prop_assert!(graphs_equal(&g, &g2));
        // And reading back through the *same* vocab preserves label ids.
        let mut buf2 = Vec::new();
        write_graph_binary(&g2, &mut buf2).unwrap();
        let g3 = read_graph_binary(buf2.as_slice(), g2.vocab().clone()).unwrap();
        for v in g2.nodes() {
            prop_assert_eq!(g2.node_label(v), g3.node_label(v));
        }
    }

    #[test]
    fn binary_graphs_reject_any_truncation(g in arb_graph()) {
        let mut buf = Vec::new();
        write_graph_binary(&g, &mut buf).unwrap();
        for cut in 0..buf.len() {
            prop_assert!(read_graph_binary(&buf[..cut], Vocab::new()).is_err());
        }
    }

    #[test]
    fn binary_roundtrip_preserves_patterns(p in arb_pattern()) {
        let mut buf = Vec::new();
        write_pattern_binary(&p, &mut buf).unwrap();
        let q = read_pattern_binary(buf.as_slice(), Vocab::new()).unwrap();
        prop_assert_eq!(p.node_count(), q.node_count());
        prop_assert_eq!(p.edge_count(), q.edge_count());
        prop_assert_eq!(p.x(), q.x());
        prop_assert_eq!(p.y(), q.y());
        // Node conditions agree by name.
        for u in p.nodes() {
            match (p.cond(u), q.cond(u)) {
                (NodeCond::Any, NodeCond::Any) => {}
                (NodeCond::Label(a), NodeCond::Label(b)) => {
                    prop_assert_eq!(p.vocab().resolve(a), q.vocab().resolve(b));
                }
                other => prop_assert!(false, "cond mismatch {:?}", other),
            }
        }
        // Label symbols are only comparable within one vocabulary, so the
        // exact isomorphism check runs on a same-vocab round-trip.
        let same = read_pattern_binary(buf.as_slice(), p.vocab().clone()).unwrap();
        prop_assert!(gpar::pattern::are_isomorphic(&p, &same, true));
    }

    #[test]
    fn binary_patterns_reject_any_truncation(p in arb_pattern()) {
        let mut buf = Vec::new();
        write_pattern_binary(&p, &mut buf).unwrap();
        for cut in 0..buf.len() {
            prop_assert!(read_pattern_binary(&buf[..cut], Vocab::new()).is_err());
        }
    }

    #[test]
    fn catalog_roundtrip_preserves_rules_and_stats(
        rules in collection::vec((1u32..4, 0u32..3, 1u64..50, 0u64..20), 1..6),
    ) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let shop = vocab.intern("shop");
        let q = vocab.intern("buys");
        let mut cat = RuleCatalog::new(vocab.clone());
        for (edges, el, supp, qqbar) in rules {
            // A star antecedent x →(e_el) shop, with `edges` rays.
            let mut conds = vec![NodeCond::Label(cust), NodeCond::Label(shop)];
            let mut pedges = Vec::new();
            for i in 0..edges {
                conds.push(NodeCond::Label(shop));
                pedges.push(PEdge {
                    src: PNodeId(0),
                    dst: PNodeId(1 + i),
                    cond: EdgeCond::Label(vocab.intern(&format!("edge_{}", (el + i) % 5))),
                });
            }
            let p = Pattern::from_parts(conds, pedges, PNodeId(0), Some(PNodeId(1)), vocab.clone())
                .unwrap();
            if let Ok(rule) = Gpar::new(p, q) {
                let stats = ConfStats {
                    supp_r: supp,
                    supp_q_ante: supp + qqbar,
                    supp_q: supp + 5,
                    supp_qbar: qqbar + 1,
                    supp_q_qbar: qqbar,
                };
                cat.insert(Arc::new(rule), stats);
            }
        }
        let mut buf = Vec::new();
        cat.save(&mut buf).unwrap();
        // Load into the same vocabulary so the exact isomorphism check is
        // meaningful (fresh-vocab loading is covered by the catalog's own
        // unit tests and `mine_to_serve`).
        let back = RuleCatalog::load(buf.as_slice(), vocab.clone()).unwrap();
        prop_assert_eq!(back.len(), cat.len());
        prop_assert_eq!(back.version(), cat.version());
        for (a, b) in cat.entries().iter().zip(back.entries()) {
            prop_assert_eq!(a.stats, b.stats);
            prop_assert_eq!(a.confidence(), b.confidence());
            prop_assert!(gpar::pattern::are_isomorphic(a.rule.pr(), b.rule.pr(), true));
        }

        // Any truncation must be rejected, never panic.
        for cut in (0..buf.len()).step_by(3) {
            prop_assert!(RuleCatalog::load(&buf[..cut], Vocab::new()).is_err());
        }
    }
}

#[test]
fn text_parser_reports_real_line_numbers() {
    // Edge referencing an undeclared node: the edge's own line.
    let err = read_graph("v 0 a\n\ne 0 9 x\n".as_bytes(), Vocab::new()).unwrap_err();
    match err {
        ParseError::Malformed(line, msg) => {
            assert_eq!(line, 3, "{msg}");
            assert!(msg.contains("undeclared"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
    // A hole implied by an out-of-order declaration: the implying line.
    let err = read_graph("# c\n# c\nv 2 a\n".as_bytes(), Vocab::new()).unwrap_err();
    match err {
        ParseError::Malformed(line, msg) => {
            assert_eq!(line, 3, "{msg}");
            assert!(msg.contains("never declared"), "{msg}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn binary_codecs_reject_cross_format_streams() {
    // Feeding a pattern stream to the graph reader (and vice versa) must
    // fail on the magic, not misparse.
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let p =
        Pattern::from_parts(vec![NodeCond::Label(cust)], vec![], PNodeId(0), None, vocab).unwrap();
    let mut pbuf = Vec::new();
    write_pattern_binary(&p, &mut pbuf).unwrap();
    assert!(read_graph_binary(pbuf.as_slice(), Vocab::new()).is_err());

    let g = GraphBuilder::with_fresh_vocab().build();
    let mut gbuf = Vec::new();
    write_graph_binary(&g, &mut gbuf).unwrap();
    assert!(read_pattern_binary(gbuf.as_slice(), Vocab::new()).is_err());
    assert!(RuleCatalog::load(gbuf.as_slice(), Vocab::new()).is_err());
}
