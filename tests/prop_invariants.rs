//! Property-based tests of the system's core invariants, using random
//! graphs and patterns.
//!
//! * engine agreement: every matcher configuration computes the same
//!   `Q(x, G)` as the brute-force oracle;
//! * anti-monotonicity of the paper's support measure under single-edge
//!   extension;
//! * `diff` is a bounded, symmetric distance with identity;
//! * LCWA classes partition the candidate set;
//! * partitioning preserves per-center match semantics for any worker
//!   count.

use gpar::core::{classify, q_stats, LcwaClass, Predicate};
use gpar::graph::{Graph, GraphBuilder, NodeId, Vocab};
use gpar::iso::{brute_force_images, Matcher, MatcherConfig};
use gpar::pattern::{EdgeCond, NodeCond, PatternBuilder};
use gpar::prelude::*;
use proptest::prelude::*;

const NLABELS: u32 = 3;
const ELABELS: u32 = 2;

/// Strategy: a random small labeled digraph (≤ 8 nodes, ≤ 16 edges).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..8, proptest::collection::vec((0u32..8, 0u32..8, 0u32..ELABELS), 0..16)).prop_map(
        |(n, edges)| {
            let vocab = Vocab::new();
            let nl: Vec<_> = (0..NLABELS).map(|i| vocab.intern(&format!("n{i}"))).collect();
            let el: Vec<_> = (0..ELABELS).map(|i| vocab.intern(&format!("e{i}"))).collect();
            let mut b = GraphBuilder::new(vocab);
            for i in 0..n {
                b.add_node(nl[i % nl.len()]);
            }
            for (s, d, l) in edges {
                let s = NodeId(s % n as u32);
                let d = NodeId(d % n as u32);
                b.add_edge(s, d, el[l as usize]);
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_agree_with_brute_force(
        g in arb_graph(),
        pn in 2usize..4,
        edges in proptest::collection::vec((0u32..4, 0u32..4, 0u32..ELABELS), 1..4),
    ) {
        // Build the pattern against g's vocabulary inline (strategies
        // cannot depend on the generated graph's vocab).
        let vocab = g.vocab().clone();
        let nl: Vec<_> = (0..NLABELS).map(|i| vocab.intern(&format!("n{i}"))).collect();
        let el: Vec<_> = (0..ELABELS).map(|i| vocab.intern(&format!("e{i}"))).collect();
        let mut b = PatternBuilder::new(vocab);
        let ids: Vec<_> = (0..pn).map(|i| b.node(nl[i % nl.len()])).collect();
        let mut seen = std::collections::HashSet::new();
        for (s, d, l) in edges {
            let s = ids[s as usize % pn];
            let d = ids[d as usize % pn];
            if seen.insert((s, d, l)) {
                b.edge(s, d, el[l as usize]);
            }
        }
        let pattern = b.designate_x(ids[0]).build().unwrap();
        let oracle = brute_force_images(&pattern, &g, pattern.x());
        for cfg in [MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()] {
            let m = Matcher::new(&g, cfg);
            prop_assert_eq!(&m.images(&pattern, pattern.x()), &oracle, "engine {:?}", cfg.kind);
            prop_assert_eq!(&m.images_by_full_enumeration(&pattern, pattern.x()), &oracle);
        }
    }

    #[test]
    fn support_is_anti_monotonic_under_extension(g in arb_graph(), el in 0u32..ELABELS) {
        // Take a single-node pattern and extend it edge by edge; the
        // x-image support must never increase (§3).
        let vocab = g.vocab().clone();
        let n0 = vocab.get("n0").unwrap();
        let elab = vocab.get(&format!("e{el}")).unwrap();
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(n0);
        let base = b.designate_x(x).build().unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        let s0 = m.images(&base, x).len();
        let (ext1, _) = base
            .with_node_and_edge(x, NodeCond::Label(n0), EdgeCond::Label(elab), true)
            .unwrap();
        let s1 = m.images(&ext1, x).len();
        prop_assert!(s1 <= s0, "adding an edge grew support: {s0} -> {s1}");
        let (ext2, _) = ext1
            .with_node_and_edge(x, NodeCond::Label(n0), EdgeCond::Label(elab), false)
            .unwrap();
        let s2 = m.images(&ext2, x).len();
        prop_assert!(s2 <= s1);
        prop_assert!(base.is_subsumed_by(&ext1));
        prop_assert!(ext1.is_subsumed_by(&ext2));
    }

    #[test]
    fn diff_is_a_bounded_symmetric_distance(
        a in proptest::collection::hash_set(0u32..30, 0..12),
        b in proptest::collection::hash_set(0u32..30, 0..12),
    ) {
        let sa: gpar::graph::FxHashSet<NodeId> = a.iter().map(|&i| NodeId(i)).collect();
        let sb: gpar::graph::FxHashSet<NodeId> = b.iter().map(|&i| NodeId(i)).collect();
        let d = diff(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert_eq!(diff(&sa, &sb), diff(&sb, &sa));
        prop_assert_eq!(diff(&sa, &sa), 0.0);
        if a.is_disjoint(&b) && !(a.is_empty() && b.is_empty()) {
            prop_assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn lcwa_classes_partition_candidates(g in arb_graph(), el in 0u32..ELABELS) {
        let vocab = g.vocab().clone();
        let pred = Predicate::new(
            NodeCond::Label(vocab.get("n0").unwrap()),
            vocab.get(&format!("e{el}")).unwrap(),
            NodeCond::Label(vocab.get("n1").unwrap()),
        );
        let qs = q_stats(&g, &pred);
        let mut counted = 0u64;
        for v in g.nodes() {
            match classify(&g, &pred, v) {
                Some(LcwaClass::Positive) => {
                    counted += 1;
                    prop_assert!(qs.positives.contains(&v));
                }
                Some(LcwaClass::Negative) => {
                    counted += 1;
                    prop_assert!(qs.negatives.contains(&v));
                }
                Some(LcwaClass::Unknown) => counted += 1,
                None => {}
            }
        }
        prop_assert_eq!(counted, qs.candidates());
    }

    #[test]
    fn partitioning_preserves_anchored_matching(g in arb_graph(), n_workers in 1usize..5) {
        // Every center's d-site must answer anchored matching exactly as
        // the full graph does, for patterns of radius ≤ d (Theorem 6's
        // locality argument).
        let vocab = g.vocab().clone();
        let n0 = vocab.get("n0").unwrap();
        let e0 = vocab.get("e0").unwrap();
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(n0);
        let y = b.node_any();
        b.edge(x, y, e0);
        let p = b.designate_x(x).build().unwrap();
        let d = 2;
        let centers: Vec<NodeId> = g.nodes_with_label(n0).collect();
        let parts = gpar::partition::partition_sites(
            &g, &centers, d, n_workers, PartitionStrategy::Balanced,
        );
        let m_global = Matcher::new(&g, MatcherConfig::vf2());
        for sites in parts {
            for cs in sites {
                let local = Matcher::new(cs.graph(), MatcherConfig::vf2());
                let here = local.exists_anchored(&p, x, cs.center);
                let there = m_global.exists_anchored(&p, x, cs.center_global);
                prop_assert_eq!(here, there, "center {:?}", cs.center_global);
            }
        }
    }
}
