//! Shared machinery of the delta-fuzz differential suites: an abstract
//! update-batch vocabulary resolved against the live universe at apply
//! time (so every generated batch is valid), an engine-independent
//! materialized ground truth, and the comparable answer surface of a
//! [`ServeEngine`]. Used by `prop_delta_equivalence` (incremental ≡
//! fresh rebuild) and `prop_coalesce_equivalence` (coalesced burst ≡
//! sequential application).
#![allow(dead_code)] // each test binary uses a subset

use gpar::core::{ConfStats, Predicate};
use gpar::graph::{Graph, GraphBuilder, GraphUpdate, Label, NodeId};
use gpar::serve::{ServeEngine, ShardedEngine};
use std::sync::Arc;

/// The most frequent edge triple of a synthetic graph, as its predicate.
pub fn predicate_of(g: &Graph) -> Option<Predicate> {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first()?;
    Some(Predicate::new(
        gpar::pattern::NodeCond::Label(*sl),
        *el,
        gpar::pattern::NodeCond::Label(*dl),
    ))
}

/// Worker counts to compare: {1, 2, 8} plus any `GPAR_WORKERS` override.
pub fn worker_counts() -> Vec<usize> {
    let mut w = vec![1, 2, 8];
    if let Some(n) = gpar::exec::env_workers() {
        if !w.contains(&n) {
            w.push(n);
        }
    }
    w
}

/// Shard counts to compare: {1, 2, 4, 8}, or just the `GPAR_SHARDS`
/// override (CI's shard-matrix leg runs one count per job).
pub fn shard_counts() -> Vec<usize> {
    if let Ok(s) = std::env::var("GPAR_SHARDS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return vec![n.max(1)];
        }
    }
    vec![1, 2, 4, 8]
}

/// An abstract update batch: indices are resolved modulo the live node /
/// label / edge universe at apply time, so every generated batch is valid.
/// Fields: (new nodes, new edges, relabels, edge deletions, node removals).
pub type RawBatch = (Vec<u32>, Vec<(u32, u32, u32)>, Vec<(u32, u32)>, Vec<u32>, Vec<u32>);

/// The engine-independent ground truth: node labels + liveness + edge
/// set, rebuilt into a dense CSR graph after every batch.
pub struct Materialized {
    pub node_labels: Vec<Label>,
    pub alive: Vec<bool>,
    pub edges: Vec<(NodeId, NodeId, Label)>,
    pub vocab: Arc<gpar::graph::Vocab>,
}

impl Materialized {
    pub fn of(g: &Graph) -> Self {
        let node_labels: Vec<Label> =
            (0..g.node_count() as u32).map(|v| g.node_label(NodeId(v))).collect();
        let alive = vec![true; node_labels.len()];
        let mut edges = Vec::new();
        for v in 0..g.node_count() as u32 {
            for e in g.out_edges(NodeId(v)) {
                edges.push((NodeId(v), e.node, e.label));
            }
        }
        Self { node_labels, alive, edges, vocab: g.vocab().clone() }
    }

    pub fn live_ids(&self) -> Vec<NodeId> {
        (0..self.alive.len() as u32).map(NodeId).filter(|v| self.alive[v.index()]).collect()
    }

    /// Resolves a raw batch against the current universe into a concrete
    /// [`GraphUpdate`], and applies it to the ground truth. Deletions are
    /// drawn from live nodes / existing edges so they are effective, and
    /// inserts/relabels avoid removed nodes so the batch always validates.
    pub fn resolve_and_apply(&mut self, raw: &RawBatch, labels: &[Label]) -> GraphUpdate {
        let (raw_nodes, raw_edges, raw_relabels, raw_del_edges, raw_del_nodes) = raw;
        let pick = |i: u32| labels[i as usize % labels.len()];

        // Node removals first: they reference the pre-batch graph, and
        // everything else in the batch must avoid them.
        let pre_live = self.live_ids();
        let mut del_nodes: Vec<NodeId> = Vec::new();
        if !pre_live.is_empty() {
            for &i in raw_del_nodes {
                del_nodes.push(pre_live[i as usize % pre_live.len()]);
            }
        }
        // Edge deletions reference existing edges of the pre-batch graph
        // (possibly edges the node removals would cascade anyway — a
        // legitimate overlap the engine must tolerate).
        let mut del_edges: Vec<(NodeId, NodeId, Label)> = Vec::new();
        if !self.edges.is_empty() {
            for &i in raw_del_edges {
                del_edges.push(self.edges[i as usize % self.edges.len()]);
            }
        }

        // Apply removals to the truth: dead flags + incident edges (all
        // occurrences — the edge universe is a set).
        for &(s, d, l) in &del_edges {
            self.edges.retain(|&e| e != (s, d, l));
        }
        for &w in &del_nodes {
            self.alive[w.index()] = false;
            self.edges.retain(|&(s, d, _)| s != w && d != w);
        }

        // Inserts and relabels target the post-removal live universe.
        let new_nodes: Vec<Label> = raw_nodes.iter().map(|&i| pick(i)).collect();
        let first_new = self.node_labels.len() as u32;
        let mut live = self.live_ids();
        live.extend((0..new_nodes.len() as u32).map(|i| NodeId(first_new + i)));
        let resolve = |i: u32| live[i as usize % live.len()];
        let new_edges: Vec<(NodeId, NodeId, Label)> =
            raw_edges.iter().map(|&(s, d, l)| (resolve(s), resolve(d), pick(l))).collect();
        let relabels: Vec<(NodeId, Label)> =
            raw_relabels.iter().map(|&(v, l)| (resolve(v), pick(l))).collect();

        self.node_labels.extend(&new_nodes);
        self.alive.extend(std::iter::repeat_n(true, new_nodes.len()));
        for &(v, l) in &relabels {
            self.node_labels[v.index()] = l;
        }
        self.edges.extend(&new_edges);
        GraphUpdate { new_nodes, new_edges, relabels, del_edges, del_nodes }
    }

    /// Builds the dense ground-truth graph plus the overlay-id → dense-id
    /// translation (identity while no node was ever removed).
    pub fn build(&self) -> (Arc<Graph>, Vec<Option<NodeId>>) {
        let mut b = GraphBuilder::new(self.vocab.clone());
        let mut fwd: Vec<Option<NodeId>> = Vec::with_capacity(self.node_labels.len());
        for (i, &l) in self.node_labels.iter().enumerate() {
            if self.alive[i] {
                fwd.push(Some(b.add_node(l)));
            } else {
                fwd.push(None);
            }
        }
        for &(s, d, l) in &self.edges {
            b.add_edge(fwd[s.index()].unwrap(), fwd[d.index()].unwrap(), l);
        }
        (Arc::new(b.build()), fwd)
    }
}

/// The comparable answer surface of one engine for one predicate.
/// `None` means the predicate is unservable (every rule deactivated — a
/// relabel or deletion can starve a rule's demanded label out of the
/// graph), which a fresh rebuild must agree on too.
pub type AnswerSurface = Option<(Vec<NodeId>, Vec<NodeId>, Vec<(ConfStats, u64, bool)>)>;

pub fn surface(engine: &ServeEngine, pred: Predicate, subset: &[NodeId]) -> AnswerSurface {
    let full = engine.identify(pred, None).ok()?.customers;
    let sub = engine.identify(pred, Some(subset.to_vec())).expect("subset served").customers;
    let mut rules: Vec<(ConfStats, u64, bool)> = engine
        .top_rules(pred, usize::MAX)
        .expect("top_rules served")
        .into_iter()
        .map(|r| (r.stats, r.confidence.ranking_value().to_bits(), r.active))
        .collect();
    // Order-insensitive: rank ties may order differently across engines.
    rules.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.supp_r.cmp(&b.0.supp_r)));
    Some((full, sub, rules))
}

/// [`surface`] for a scatter/gather front: the same answer triple, read
/// through the sharded merge path so differential suites compare it
/// bit-for-bit against a single engine's.
pub fn sharded_surface(
    engine: &ShardedEngine,
    pred: Predicate,
    subset: &[NodeId],
) -> AnswerSurface {
    let full = engine.identify(pred, None).ok()?.customers;
    let sub = engine.identify(pred, Some(subset.to_vec())).expect("subset served").customers;
    let mut rules: Vec<(ConfStats, u64, bool)> = engine
        .top_rules(pred, usize::MAX)
        .expect("top_rules served")
        .into_iter()
        .map(|r| (r.stats, r.confidence.ranking_value().to_bits(), r.active))
        .collect();
    rules.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.supp_r.cmp(&b.0.supp_r)));
    Some((full, sub, rules))
}

/// Translates a fresh (dense-id) surface back into the overlay id space
/// through the inverse of `fwd`, so it compares against incremental
/// engines whose ids never move.
pub fn surface_to_overlay_ids(s: AnswerSurface, fwd: &[Option<NodeId>]) -> AnswerSurface {
    let (full, sub, rules) = s?;
    let mut back: Vec<NodeId> = vec![NodeId(u32::MAX); fwd.len()];
    for (old, new) in fwd.iter().enumerate() {
        if let Some(n) = new {
            back[n.index()] = NodeId(old as u32);
        }
    }
    let tr = |ids: Vec<NodeId>| ids.into_iter().map(|v| back[v.index()]).collect::<Vec<_>>();
    Some((tr(full), tr(sub), rules))
}

/// The label universe updates draw from: every label the base graph uses
/// plus two fresh ones (exercising the rule re-activation scan).
pub fn label_universe(g: &Graph) -> Vec<Label> {
    let mut labels: Vec<Label> = g.node_label_histogram().keys().copied().collect();
    labels.extend(g.edge_label_histogram().keys().copied());
    labels.sort_unstable();
    labels.dedup();
    labels.push(g.vocab().intern("delta_fresh_node"));
    labels.push(g.vocab().intern("delta_fresh_edge"));
    labels
}
