//! The invalidation set is *sound* and *tight* — now under deletions.
//!
//! Deletion makes invalidation non-monotone: cutting an edge can grow a
//! center's distance to the touched set, so the engine invalidates the
//! **union ball** — nodes within distance `d` of a touched node on the
//! pre-update *or* the post-update view.
//!
//! Sound: any center whose d-ball differs between the pre- and
//! post-update graph (the canary: an independently-computed d-ball
//! fingerprint diff) lies within the union ball, so its cache entry — if
//! present — was evicted and its membership re-evaluated. Tight: every
//! key the engine actually evicted is within the union ball; nothing
//! outside it is dropped.
//!
//! `d` is pinned (`ServeConfig::d = Some(D)`) so the externally-checked
//! radius and the engine's are the same by construction. The post-update
//! ground truth is materialized densely (removed nodes squeezed out), so
//! all post-side measurements run through the old↔new id translation —
//! independently re-deriving the id contract `compact()` exposes.

use gpar::core::{ConfStats, Gpar, Predicate};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::{ball, multi_source_distances, Graph, GraphBuilder, GraphUpdate, Label, NodeId};
use gpar::serve::{RuleCatalog, ServeConfig, ServeEngine};
use proptest::prelude::*;
use std::sync::Arc;

/// The evaluation radius this suite pins everywhere.
const D: u32 = 2;

fn predicate_of(g: &Graph) -> Option<Predicate> {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first()?;
    Some(Predicate::new(
        gpar::pattern::NodeCond::Label(*sl),
        *el,
        gpar::pattern::NodeCond::Label(*dl),
    ))
}

/// An order-independent fingerprint of `G_d(c)`: the ball's nodes, their
/// labels, and the induced edges. Two equal fingerprints ⇒ identical
/// extracted sites ⇒ identical evaluation. Node ids are reported through
/// `tr`, so pre-graph (overlay-id) and post-graph (dense-id) fingerprints
/// compare in one shared id space.
type BallFingerprint = (Vec<(NodeId, Label)>, Vec<(NodeId, NodeId, Label)>);

fn ball_fingerprint(
    g: &Graph,
    c: NodeId,
    d: u32,
    tr: &dyn Fn(NodeId) -> NodeId,
) -> BallFingerprint {
    let nodes = ball(g, c, d);
    let mut labeled: Vec<(NodeId, Label)> =
        nodes.iter().map(|&v| (tr(v), g.node_label(v))).collect();
    labeled.sort_unstable();
    let mut edges = Vec::new();
    for &v in &nodes {
        for e in g.out_edges(v) {
            if nodes.binary_search(&e.node).is_ok() {
                edges.push((tr(v), tr(e.node), e.label));
            }
        }
    }
    edges.sort_unstable();
    (labeled, edges)
}

/// Materializes `g` + `update` through the independent builder path,
/// densely (removed nodes squeezed out). Returns the graph and the
/// overlay-id → dense-id map (`None` for removed slots).
fn materialize(g: &Graph, update: &GraphUpdate) -> (Arc<Graph>, Vec<Option<NodeId>>) {
    let mut labels: Vec<Label> =
        (0..g.node_count() as u32).map(|v| g.node_label(NodeId(v))).collect();
    labels.extend(&update.new_nodes);
    for &(v, l) in &update.relabels {
        labels[v.index()] = l;
    }
    let mut alive = vec![true; labels.len()];
    let mut edges: Vec<(NodeId, NodeId, Label)> = Vec::new();
    for v in 0..g.node_count() as u32 {
        for e in g.out_edges(NodeId(v)) {
            edges.push((NodeId(v), e.node, e.label));
        }
    }
    for &(s, d, l) in &update.del_edges {
        edges.retain(|&e| e != (s, d, l));
    }
    for &w in &update.del_nodes {
        alive[w.index()] = false;
        edges.retain(|&(s, d, _)| s != w && d != w);
    }
    edges.extend(&update.new_edges);

    let mut b = GraphBuilder::new(g.vocab().clone());
    let mut fwd: Vec<Option<NodeId>> = Vec::with_capacity(labels.len());
    for (i, &l) in labels.iter().enumerate() {
        fwd.push(alive[i].then(|| b.add_node(l)));
    }
    for &(s, d, l) in &edges {
        b.add_edge(fwd[s.index()].unwrap(), fwd[d.index()].unwrap(), l);
    }
    (Arc::new(b.build()), fwd)
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(8))]

    #[test]
    fn invalidation_is_sound_and_tight(
        seed in 0u64..1_000,
        nodes in 60usize..140,
        raw_nodes in collection::vec(0u32..64, 0..3),
        raw_edges in collection::vec((0u32..4096, 0u32..4096, 0u32..64), 1..6),
        raw_relabels in collection::vec((0u32..4096, 0u32..64), 0..3),
        raw_del_edges in collection::vec(0u32..4096, 0..5),
        raw_del_nodes in collection::vec(0u32..4096, 0..2),
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: 2,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: D,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let mut catalog = RuleCatalog::new(g.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), ConfStats::default());
        }

        // Resolve the abstract update against the graph's universe. Node
        // removals come first (they may only reference pre-batch ids) and
        // everything attaching state avoids them.
        let mut labels: Vec<Label> = g.node_label_histogram().keys().copied().collect();
        labels.extend(g.edge_label_histogram().keys().copied());
        labels.sort_unstable();
        labels.dedup();
        let pick = |i: u32| labels[i as usize % labels.len()];
        let del_nodes: Vec<NodeId> = {
            let mut v: Vec<NodeId> = raw_del_nodes
                .iter()
                .map(|&i| NodeId((i as usize % g.node_count()) as u32))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut base_edges: Vec<(NodeId, NodeId, Label)> = Vec::new();
        for v in 0..g.node_count() as u32 {
            for e in g.out_edges(NodeId(v)) {
                base_edges.push((NodeId(v), e.node, e.label));
            }
        }
        let del_edges: Vec<(NodeId, NodeId, Label)> = raw_del_edges
            .iter()
            .map(|&i| base_edges[i as usize % base_edges.len()])
            .collect();
        let n_after = g.node_count() + raw_nodes.len();
        let live: Vec<NodeId> = (0..n_after as u32)
            .map(NodeId)
            .filter(|v| !del_nodes.contains(v))
            .collect();
        let resolve = |i: u32| live[i as usize % live.len()];
        let update = GraphUpdate {
            new_nodes: raw_nodes.iter().map(|&i| pick(i)).collect(),
            new_edges: raw_edges.iter().map(|&(s, d, l)| (resolve(s), resolve(d), pick(l))).collect(),
            relabels: raw_relabels.iter().map(|&(v, l)| (resolve(v), pick(l))).collect(),
            del_edges,
            del_nodes,
        };

        let pre = Arc::new(g.clone());
        let engine = ServeEngine::new(
            pre.clone(),
            &catalog,
            ServeConfig { workers: 2, eta: 0.5, d: Some(D), cache_capacity: 1 << 14, ..Default::default() },
        );
        engine.identify(pred, None).expect("warm fills the d-ball cache");

        let report = engine.apply_update(&update).expect("update is valid by construction");
        let (post, fwd) = materialize(&g, &update);
        let mut back: Vec<NodeId> = vec![NodeId(u32::MAX); post.node_count()];
        for (old, new) in fwd.iter().enumerate() {
            if let Some(n) = new {
                back[n.index()] = NodeId(old as u32);
            }
        }

        // The union ball, independently: pre-distances on the pre graph,
        // post-distances on the dense post graph (seeds and keys mapped
        // through the id translation), per-node minimum.
        let pre_seeds: Vec<NodeId> =
            report.touched.iter().copied().filter(|v| v.index() < pre.node_count()).collect();
        let mut union_dist = multi_source_distances(&*pre, &pre_seeds, D);
        let post_seeds: Vec<NodeId> =
            report.touched.iter().filter_map(|&v| fwd.get(v.index()).copied().flatten()).collect();
        for (c, dd) in multi_source_distances(&*post, &post_seeds, D) {
            let old = back[c.index()];
            union_dist.entry(old).and_modify(|cur| *cur = (*cur).min(dd)).or_insert(dd);
        }

        // Tight: every evicted key is within the union ball.
        for &(c, dk) in &report.evicted {
            prop_assert_eq!(dk, D, "engine caches at the pinned radius");
            prop_assert!(
                union_dist.get(&c).is_some_and(|&dd| dd <= dk),
                "evicted ({}, {}) is outside the union invalidation ball",
                c, dk
            );
        }

        // Sound (the canary): diff every center's pre/post d-ball; any
        // divergence must lie inside the union ball (⇒ evicted +
        // re-evaluated), and everything outside it must be bit-identical
        // (the locality theorem, extended to the non-monotone case).
        let x = pred.x_cond;
        let id = |v: NodeId| v;
        for old in 0..fwd.len() as u32 {
            let c = NodeId(old);
            let Some(new_c) = fwd.get(c.index()).copied().flatten() else {
                continue; // removed: its records were subtracted, not re-evaluated
            };
            if !x.matches(post.node_label(new_c)) {
                continue;
            }
            let in_ball = union_dist.get(&c).is_some_and(|&dd| dd <= D);
            if c.index() >= pre.node_count() {
                prop_assert!(in_ball, "new center {} must be invalidated", c);
                continue;
            }
            let tr = |v: NodeId| back[v.index()];
            let changed = ball_fingerprint(&pre, c, D, &id)
                != ball_fingerprint(&post, new_c, D, &tr);
            if changed {
                prop_assert!(in_ball, "center {} has a changed d-ball but was not invalidated", c);
            }
        }

        // And the answers stay exact (the end-to-end consequence), with
        // the fresh engine's dense-id answers translated back.
        let fresh = ServeEngine::new(
            post.clone(),
            &catalog,
            ServeConfig { workers: 2, eta: 0.5, d: Some(D), ..Default::default() },
        );
        // (`Err(UnknownPredicate)` is legitimate — a relabel or deletion
        // can starve a demanded label out of the graph — but both sides
        // must agree.)
        prop_assert_eq!(
            engine.identify(pred, None).map(|r| r.customers),
            fresh.identify(pred, None).map(|r| r
                .customers
                .into_iter()
                .map(|v| back[v.index()])
                .collect()),
            "stale answer after invalidation"
        );
    }
}
