//! The invalidation set is *sound* and *tight*.
//!
//! Sound: any center whose d-ball differs between the pre- and
//! post-update graph (the canary: an independently-computed d-ball
//! fingerprint diff) lies within undirected distance `d` of a touched
//! node, so its cache entry — if present — was evicted and its membership
//! re-evaluated. Tight: every key the engine actually evicted is within
//! distance `d` of a touched node; nothing outside the ball is dropped.
//!
//! `d` is pinned (`ServeConfig::d = Some(D)`) so the externally-checked
//! radius and the engine's are the same by construction.

use gpar::core::{ConfStats, Gpar, Predicate};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::{ball, multi_source_distances, Graph, GraphBuilder, GraphUpdate, Label, NodeId};
use gpar::serve::{RuleCatalog, ServeConfig, ServeEngine};
use proptest::prelude::*;
use std::sync::Arc;

/// The evaluation radius this suite pins everywhere.
const D: u32 = 2;

fn predicate_of(g: &Graph) -> Option<Predicate> {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first()?;
    Some(Predicate::new(
        gpar::pattern::NodeCond::Label(*sl),
        *el,
        gpar::pattern::NodeCond::Label(*dl),
    ))
}

/// An order-independent fingerprint of `G_d(c)`: the ball's nodes, their
/// labels, and the induced edges, all in global ids. Two equal
/// fingerprints ⇒ identical extracted sites ⇒ identical evaluation.
type BallFingerprint = (Vec<(NodeId, Label)>, Vec<(NodeId, NodeId, Label)>);

fn ball_fingerprint(g: &Graph, c: NodeId, d: u32) -> BallFingerprint {
    let nodes = ball(g, c, d);
    let labeled: Vec<(NodeId, Label)> = nodes.iter().map(|&v| (v, g.node_label(v))).collect();
    let mut edges = Vec::new();
    for &v in &nodes {
        for e in g.out_edges(v) {
            if nodes.binary_search(&e.node).is_ok() {
                edges.push((v, e.node, e.label));
            }
        }
    }
    (labeled, edges)
}

/// Materializes `g` + `update` through the independent builder path.
fn materialize(g: &Graph, update: &GraphUpdate) -> Arc<Graph> {
    let mut b = GraphBuilder::new(g.vocab().clone());
    let mut labels: Vec<Label> =
        (0..g.node_count() as u32).map(|v| g.node_label(NodeId(v))).collect();
    labels.extend(&update.new_nodes);
    for &(v, l) in &update.relabels {
        labels[v.index()] = l;
    }
    for &l in &labels {
        b.add_node(l);
    }
    for v in 0..g.node_count() as u32 {
        for e in g.out_edges(NodeId(v)) {
            b.add_edge(NodeId(v), e.node, e.label);
        }
    }
    for &(s, d, l) in &update.new_edges {
        b.add_edge(s, d, l);
    }
    Arc::new(b.build())
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(8))]

    #[test]
    fn invalidation_is_sound_and_tight(
        seed in 0u64..1_000,
        nodes in 60usize..140,
        raw_nodes in collection::vec(0u32..64, 0..3),
        raw_edges in collection::vec((0u32..4096, 0u32..4096, 0u32..64), 1..6),
        raw_relabels in collection::vec((0u32..4096, 0u32..64), 0..3),
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: 2,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: D,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let mut catalog = RuleCatalog::new(g.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), ConfStats::default());
        }

        // Resolve the abstract update against the graph's universe.
        let mut labels: Vec<Label> = g.node_label_histogram().keys().copied().collect();
        labels.extend(g.edge_label_histogram().keys().copied());
        labels.sort_unstable();
        labels.dedup();
        let pick = |i: u32| labels[i as usize % labels.len()];
        let n_after = g.node_count() + raw_nodes.len();
        let resolve = |i: u32| NodeId((i as usize % n_after) as u32);
        let update = GraphUpdate {
            new_nodes: raw_nodes.iter().map(|&i| pick(i)).collect(),
            new_edges: raw_edges.iter().map(|&(s, d, l)| (resolve(s), resolve(d), pick(l))).collect(),
            relabels: raw_relabels.iter().map(|&(v, l)| (resolve(v), pick(l))).collect(),
        };

        let pre = Arc::new(g.clone());
        let engine = ServeEngine::new(
            pre.clone(),
            &catalog,
            ServeConfig { workers: 2, eta: 0.5, d: Some(D), cache_capacity: 1 << 14, ..Default::default() },
        );
        engine.identify(pred, None).expect("warm fills the d-ball cache");

        let report = engine.apply_update(&update).expect("update is valid by construction");
        let post = materialize(&g, &update);
        let dist = multi_source_distances(&*post, &report.touched, D);

        // Tight: every evicted key is within distance d of a touched node.
        for &(c, dk) in &report.evicted {
            prop_assert_eq!(dk, D, "engine caches at the pinned radius");
            prop_assert!(
                dist.get(&c).is_some_and(|&dd| dd <= dk),
                "evicted ({}, {}) is outside the invalidation ball",
                c, dk
            );
        }

        // Sound (the canary): diff every center's pre/post d-ball; any
        // divergence must lie inside the ball (⇒ evicted + re-evaluated),
        // and everything outside the ball must be bit-identical (the
        // locality theorem the whole design rests on).
        let x = pred.x_cond;
        for v in 0..post.node_count() as u32 {
            let c = NodeId(v);
            if !x.matches(post.node_label(c)) {
                continue;
            }
            let in_ball = dist.get(&c).is_some_and(|&dd| dd <= D);
            if c.index() >= pre.node_count() {
                prop_assert!(in_ball, "new center {} must be invalidated", c);
                continue;
            }
            // Contrapositive of the locality theorem: a changed d-ball
            // implies membership in the invalidation ball — equivalently,
            // everything outside the ball is bit-identical, so un-evicted
            // cache entries can never be stale.
            let changed = ball_fingerprint(&pre, c, D) != ball_fingerprint(&post, c, D);
            if changed {
                prop_assert!(in_ball, "center {} has a changed d-ball but was not invalidated", c);
            }
        }

        // And the answers stay exact (the end-to-end consequence).
        let fresh = ServeEngine::new(
            post.clone(),
            &catalog,
            ServeConfig { workers: 2, eta: 0.5, d: Some(D), ..Default::default() },
        );
        // (`Err(UnknownPredicate)` is legitimate — a relabel can starve a
        // demanded label out of the graph — but both sides must agree.)
        prop_assert_eq!(
            engine.identify(pred, None).map(|r| r.customers),
            fresh.identify(pred, None).map(|r| r.customers),
            "stale answer after invalidation"
        );
    }
}
