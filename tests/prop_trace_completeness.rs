//! Trace completeness: every answered query — success or error, at any
//! worker count — emits exactly one trace, and each trace's stage
//! durations are disjoint slices of its root duration (their sum never
//! exceeds the end-to-end time). Stage accumulators are per-request and
//! worker-local, so this must hold regardless of how the pool interleaves
//! requests; running the same workload at workers ∈ {1, 2, 8} pins that.
//!
//! `obs-off` compiles the span clocks out (zero traces by design), so the
//! whole suite is gated on instrumentation being present.
#![cfg(not(feature = "obs-off"))]

use gpar::core::{ConfStats, Gpar, Predicate};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::{Graph, NodeId};
use gpar::serve::{IdentifyRequest, RuleCatalog, ServeConfig, ServeEngine, TraceKind};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn predicate_of(g: &Graph) -> Option<Predicate> {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first()?;
    Some(Predicate::new(
        gpar::pattern::NodeCond::Label(*sl),
        *el,
        gpar::pattern::NodeCond::Label(*dl),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(8))]

    #[test]
    fn every_answered_query_emits_one_bounded_trace(
        seed in 0u64..1_000,
        nodes in 40usize..100,
        subsets in proptest::collection::vec(
            proptest::collection::vec(0u32..4096, 0..4),
            1..8,
        ),
        top_k in 1usize..4,
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: 2,
            pattern_nodes: 3,
            pattern_edges: 4,
            max_radius: 2,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let mut catalog = RuleCatalog::new(g.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), ConfStats::default());
        }
        let graph = Arc::new(g.clone());

        let reqs: Vec<IdentifyRequest> = subsets
            .iter()
            .map(|raw| IdentifyRequest {
                predicate: pred,
                candidates: (!raw.is_empty()).then(|| {
                    raw.iter()
                        .map(|&i| NodeId((i as usize % g.node_count()) as u32))
                        .collect()
                }),
                opts: Default::default(),
            })
            .collect();

        for workers in [1usize, 2, 8] {
            let engine = ServeEngine::new(
                graph.clone(),
                &catalog,
                ServeConfig {
                    workers,
                    eta: 0.5,
                    trace_capacity: 1024,
                    ..Default::default()
                },
            );
            let answers = engine.identify_batch(reqs.clone());
            prop_assert_eq!(answers.len(), reqs.len());
            for _ in 0..top_k {
                engine.top_rules(pred, 4).expect("pred is cataloged");
            }
            // Traces are recorded before the reply is sent, so once every
            // answer is in, so is every trace.
            let traces = engine.traces();
            prop_assert_eq!(
                traces.len(),
                reqs.len() + top_k,
                "exactly one trace per answered query (workers = {})",
                workers
            );
            prop_assert_eq!(
                traces.iter().filter(|t| t.kind == TraceKind::Identify).count(),
                reqs.len()
            );
            prop_assert_eq!(
                traces.iter().filter(|t| t.kind == TraceKind::TopRules).count(),
                top_k
            );
            for pair in traces.windows(2) {
                prop_assert!(pair[0].seq < pair[1].seq, "recorder order is submission order");
            }
            for t in &traces {
                prop_assert!(t.total > Duration::ZERO, "root span covers real wall time");
                prop_assert!(
                    t.stages_total() <= t.total,
                    "stage durations ({:?}) exceed the root span ({:?}) at workers = {}",
                    t.stages_total(),
                    t.total,
                    workers
                );
                for (_, d) in &t.stages {
                    prop_assert!(!d.is_zero(), "zero-duration stages are filtered at finish");
                }
            }
        }
    }
}
