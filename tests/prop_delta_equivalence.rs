//! Differential correctness of the delta-graph serving path: after any
//! random sequence of update batches (edge inserts, **edge deletions,
//! node removals**, new nodes, relabels), an incrementally-maintained
//! [`ServeEngine`] must answer **exactly** like a fresh engine built from
//! scratch on the materialized graph — same customers, same per-rule
//! `ConfStats`/confidence/η-gating — across worker counts {1, 2, 8} (plus
//! any `GPAR_WORKERS` override), and compaction must change nothing (up
//! to the id re-densification its `NodeRemap` reports when nodes were
//! removed).
//!
//! The ground truth deliberately has a different id space once nodes are
//! removed (it is rebuilt densely), so the comparison translates the
//! fresh engine's answers back into the overlay's stable id space — an
//! independent check of the compaction remap semantics as well.
//!
//! The default case count is deliberately small (the suite builds many
//! engines per case); CI's delta-fuzz leg raises it via `PROPTEST_CASES`.

mod delta_fuzz;

use delta_fuzz::{
    label_universe, predicate_of, surface, surface_to_overlay_ids, worker_counts, Materialized,
};
use gpar::core::{ConfStats, Gpar};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::NodeId;
use gpar::serve::{RuleCatalog, ServeConfig, ServeEngine};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::env_or(5))]

    #[test]
    fn incremental_answers_equal_fresh_rebuild(
        seed in 0u64..1_000,
        nodes in 60usize..140,
        rules in 2usize..4,
        batches in collection::vec(
            (
                collection::vec(0u32..64, 0..3),          // new nodes
                collection::vec((0u32..4096, 0u32..4096, 0u32..64), 0..6), // new edges
                collection::vec((0u32..4096, 0u32..64), 0..3),             // relabels
                collection::vec(0u32..4096, 0..4),                         // edge deletions
                collection::vec(0u32..4096, 0..2),                         // node removals
            ),
            1..4,
        ),
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: rules,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: 2,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let mut catalog = RuleCatalog::new(g.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), ConfStats::default());
        }
        let labels = label_universe(&g);
        let base = Arc::new(g.clone());
        let mut truth = Materialized::of(&g);

        let cfg = |workers| ServeConfig { workers, eta: 0.5, ..Default::default() };
        let engines: Vec<ServeEngine> = worker_counts()
            .into_iter()
            .map(|w| ServeEngine::new(base.clone(), &catalog, cfg(w)))
            .collect();
        // Warm half the engines up front so updates exercise the
        // incremental warm-state repair; the rest stay cold and re-warm
        // over the overlay.
        for e in engines.iter().step_by(2) {
            e.identify(pred, None).expect("warm");
        }

        for raw in &batches {
            let update = truth.resolve_and_apply(raw, &labels);
            for e in &engines {
                e.apply_update(&update).expect("update batches are valid by construction");
            }
            let (fresh_graph, fwd) = truth.build();
            let fresh = ServeEngine::new(fresh_graph, &catalog, cfg(2));
            // Subset queries are issued in each engine's own id space over
            // the same underlying nodes.
            let overlay_subset: Vec<NodeId> = truth
                .live_ids()
                .into_iter()
                .step_by(3)
                .collect();
            let fresh_subset: Vec<NodeId> =
                overlay_subset.iter().map(|&v| fwd[v.index()].unwrap()).collect();
            let expect =
                surface_to_overlay_ids(surface(&fresh, pred, &fresh_subset), &fwd);
            for (e, w) in engines.iter().zip(worker_counts()) {
                prop_assert_eq!(
                    &surface(e, pred, &overlay_subset),
                    &expect,
                    "incremental (workers = {}) diverged from fresh rebuild",
                    w
                );
            }
        }

        // Compaction folds the overlay into CSR without changing answers —
        // modulo the id re-densification its remap reports when nodes
        // were removed.
        let overlay_subset: Vec<NodeId> = truth.live_ids().into_iter().step_by(3).collect();
        let before = surface(&engines[0], pred, &overlay_subset);
        let remap = engines[0].compact();
        prop_assert_eq!(engines[0].pending_deltas(), (0, 0));
        prop_assert_eq!(engines[0].pending_removals(), (0, 0));
        let (compacted_subset, expect_after) = match &remap {
            None => (overlay_subset, before),
            Some(r) => {
                let tr = |ids: Vec<NodeId>| -> Vec<NodeId> {
                    ids.into_iter().map(|v| r.get(v).expect("live ids survive")).collect()
                };
                (
                    overlay_subset.iter().map(|&v| r.get(v).expect("live")).collect(),
                    before.map(|(full, sub, rules)| (tr(full), tr(sub), rules)),
                )
            }
        };
        prop_assert_eq!(
            &surface(&engines[0], pred, &compacted_subset),
            &expect_after,
            "compact changed answers"
        );
    }
}
