//! Differential correctness of the delta-graph serving path: after any
//! random sequence of update batches (edge inserts, new nodes, relabels),
//! an incrementally-maintained [`ServeEngine`] must answer **exactly**
//! like a fresh engine built from scratch on the materialized graph —
//! same customers, same per-rule `ConfStats`/confidence/η-gating — across
//! worker counts {1, 2, 8} (plus any `GPAR_WORKERS` override), and
//! compaction must change nothing.
//!
//! The default case count is deliberately small (the suite builds many
//! engines per case); CI's delta-fuzz leg raises it via `PROPTEST_CASES`.

use gpar::core::{ConfStats, Gpar, Predicate};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::{Graph, GraphBuilder, GraphUpdate, Label, NodeId};
use gpar::serve::{RuleCatalog, ServeConfig, ServeEngine};
use proptest::prelude::*;
use std::sync::Arc;

/// The most frequent edge triple of a synthetic graph, as its predicate.
fn predicate_of(g: &Graph) -> Option<Predicate> {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first()?;
    Some(Predicate::new(
        gpar::pattern::NodeCond::Label(*sl),
        *el,
        gpar::pattern::NodeCond::Label(*dl),
    ))
}

/// Worker counts to compare: {1, 2, 8} plus any `GPAR_WORKERS` override.
fn worker_counts() -> Vec<usize> {
    let mut w = vec![1, 2, 8];
    if let Some(n) = gpar::exec::env_workers() {
        if !w.contains(&n) {
            w.push(n);
        }
    }
    w
}

/// An abstract update batch: indices are resolved modulo the live node /
/// label universe at apply time, so every generated batch is valid.
type RawBatch = (Vec<u32>, Vec<(u32, u32, u32)>, Vec<(u32, u32)>);

/// The engine-independent ground truth: node labels + edge set, rebuilt
/// into a CSR graph after every batch.
struct Materialized {
    node_labels: Vec<Label>,
    edges: Vec<(NodeId, NodeId, Label)>,
    vocab: Arc<gpar::graph::Vocab>,
}

impl Materialized {
    fn of(g: &Graph) -> Self {
        let node_labels = (0..g.node_count() as u32).map(|v| g.node_label(NodeId(v))).collect();
        let mut edges = Vec::new();
        for v in 0..g.node_count() as u32 {
            for e in g.out_edges(NodeId(v)) {
                edges.push((NodeId(v), e.node, e.label));
            }
        }
        Self { node_labels, edges, vocab: g.vocab().clone() }
    }

    /// Resolves a raw batch against the current universe into a concrete
    /// [`GraphUpdate`], and applies it to the ground truth.
    fn resolve_and_apply(&mut self, raw: &RawBatch, labels: &[Label]) -> GraphUpdate {
        let (raw_nodes, raw_edges, raw_relabels) = raw;
        let pick = |i: u32| labels[i as usize % labels.len()];
        let new_nodes: Vec<Label> = raw_nodes.iter().map(|&i| pick(i)).collect();
        let n_after = self.node_labels.len() + new_nodes.len();
        let resolve = |i: u32| NodeId((i as usize % n_after) as u32);
        let new_edges: Vec<(NodeId, NodeId, Label)> =
            raw_edges.iter().map(|&(s, d, l)| (resolve(s), resolve(d), pick(l))).collect();
        let relabels: Vec<(NodeId, Label)> =
            raw_relabels.iter().map(|&(v, l)| (resolve(v), pick(l))).collect();

        self.node_labels.extend(&new_nodes);
        for &(v, l) in &relabels {
            self.node_labels[v.index()] = l;
        }
        self.edges.extend(&new_edges);
        GraphUpdate { new_nodes, new_edges, relabels }
    }

    fn build(&self) -> Arc<Graph> {
        let mut b = GraphBuilder::new(self.vocab.clone());
        for &l in &self.node_labels {
            b.add_node(l);
        }
        for &(s, d, l) in &self.edges {
            b.add_edge(s, d, l);
        }
        Arc::new(b.build())
    }
}

/// The comparable answer surface of one engine for one predicate.
/// `None` means the predicate is unservable (every rule deactivated — a
/// relabel can starve a rule's demanded label out of the graph), which a
/// fresh rebuild must agree on too.
type AnswerSurface = Option<(Vec<NodeId>, Vec<NodeId>, Vec<(ConfStats, u64, bool)>)>;

fn surface(engine: &ServeEngine, pred: Predicate, subset: &[NodeId]) -> AnswerSurface {
    let full = engine.identify(pred, None).ok()?.customers;
    let sub = engine.identify(pred, Some(subset.to_vec())).expect("subset served").customers;
    let mut rules: Vec<(ConfStats, u64, bool)> = engine
        .top_rules(pred, usize::MAX)
        .expect("top_rules served")
        .into_iter()
        .map(|r| (r.stats, r.confidence.ranking_value().to_bits(), r.active))
        .collect();
    // Order-insensitive: rank ties may order differently across engines.
    rules.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.supp_r.cmp(&b.0.supp_r)));
    Some((full, sub, rules))
}

/// The label universe updates draw from: every label the base graph uses
/// plus two fresh ones (exercising the rule re-activation scan).
fn label_universe(g: &Graph) -> Vec<Label> {
    let mut labels: Vec<Label> = g.node_label_histogram().keys().copied().collect();
    labels.extend(g.edge_label_histogram().keys().copied());
    labels.sort_unstable();
    labels.dedup();
    labels.push(g.vocab().intern("delta_fresh_node"));
    labels.push(g.vocab().intern("delta_fresh_edge"));
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(5))]

    #[test]
    fn incremental_answers_equal_fresh_rebuild(
        seed in 0u64..1_000,
        nodes in 60usize..140,
        rules in 2usize..4,
        batches in collection::vec(
            (
                collection::vec(0u32..64, 0..3),          // new nodes
                collection::vec((0u32..4096, 0u32..4096, 0u32..64), 0..6), // new edges
                collection::vec((0u32..4096, 0u32..64), 0..3),             // relabels
            ),
            1..4,
        ),
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: rules,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: 2,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let mut catalog = RuleCatalog::new(g.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), ConfStats::default());
        }
        let labels = label_universe(&g);
        let base = Arc::new(g.clone());
        let mut truth = Materialized::of(&g);

        let cfg = |workers| ServeConfig { workers, eta: 0.5, ..Default::default() };
        let engines: Vec<ServeEngine> = worker_counts()
            .into_iter()
            .map(|w| ServeEngine::new(base.clone(), &catalog, cfg(w)))
            .collect();
        // Warm half the engines up front so updates exercise the
        // incremental warm-state repair; the rest stay cold and re-warm
        // over the overlay.
        for e in engines.iter().step_by(2) {
            e.identify(pred, None).expect("warm");
        }

        for raw in &batches {
            let update = truth.resolve_and_apply(raw, &labels);
            for e in &engines {
                e.apply_update(&update).expect("update batches are valid by construction");
            }
            let fresh = ServeEngine::new(truth.build(), &catalog, cfg(2));
            let subset: Vec<NodeId> =
                (0..truth.node_labels.len() as u32).step_by(3).map(NodeId).collect();
            let expect = surface(&fresh, pred, &subset);
            for (e, w) in engines.iter().zip(worker_counts()) {
                prop_assert_eq!(
                    &surface(e, pred, &subset),
                    &expect,
                    "incremental (workers = {}) diverged from fresh rebuild",
                    w
                );
            }
        }

        // Compaction folds the overlay into CSR without changing answers.
        let subset: Vec<NodeId> =
            (0..truth.node_labels.len() as u32).step_by(3).map(NodeId).collect();
        let before = surface(&engines[0], pred, &subset);
        engines[0].compact();
        prop_assert_eq!(engines[0].pending_deltas(), (0, 0));
        prop_assert_eq!(&surface(&engines[0], pred, &subset), &before, "compact changed answers");
    }
}
