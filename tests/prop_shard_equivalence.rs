//! Cross-shard differential fuzz: a [`ShardedEngine`]'s merged answers
//! must be **bit-equal** to a single unsharded [`ServeEngine`]'s — same
//! customers (full and candidate-subset), same per-rule
//! `ConfStats`/confidence/η-activation — across shard counts {1, 2, 4, 8}
//! (or just the `GPAR_SHARDS` override), after any random sequence of
//! update batches: edge inserts, relabels, new nodes, and deletions
//! whose union balls straddle shard halos. Shard-count invariance is the
//! whole correctness claim of the scatter/gather design: counters summed
//! at the merger reconstruct the exact global `ConfStats`, and the η
//! mask is applied once, globally — never per shard.
//!
//! A dedicated deterministic case deletes only **owner-crossing** edges
//! (endpoints owned by different shards), the exact shape where a
//! deletion's union ball reaches through one shard's halo into
//! another's owned range, so both sides must repair.
//!
//! The default case count is deliberately small (each case runs up to
//! four sharded fronts next to the reference engine); CI raises it via
//! `PROPTEST_CASES` and pins shard counts via `GPAR_SHARDS`.

mod delta_fuzz;

use delta_fuzz::{
    label_universe, predicate_of, shard_counts, sharded_surface, surface, Materialized,
};
use gpar::core::{ConfStats, Gpar};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::{GraphUpdate, NodeId};
use gpar::serve::{RuleCatalog, ServeConfig, ServeEngine, ShardedEngine};
use proptest::prelude::*;
use std::sync::Arc;

fn catalog_for(g: &gpar::graph::Graph, sigma: &[Gpar]) -> RuleCatalog {
    let mut catalog = RuleCatalog::new(g.vocab().clone());
    for r in sigma {
        catalog.insert(Arc::new(r.clone()), ConfStats::default());
    }
    catalog
}

proptest! {
    #![proptest_config(ProptestConfig::env_or(5))]

    #[test]
    fn sharded_answers_equal_single_engine(
        seed in 0u64..1_000,
        nodes in 60usize..140,
        rules in 2usize..4,
        batches in collection::vec(
            (
                collection::vec(0u32..64, 0..3),          // new nodes
                collection::vec((0u32..4096, 0u32..4096, 0u32..64), 0..6), // new edges
                collection::vec((0u32..4096, 0u32..64), 0..3),             // relabels
                collection::vec(0u32..4096, 0..4),                         // edge deletions
                collection::vec(0u32..4096, 0..2),                         // node removals
            ),
            1..4,
        ),
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: rules,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: 2,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let catalog = catalog_for(&g, &sigma);
        let labels = label_universe(&g);
        let base = Arc::new(g.clone());
        let mut truth = Materialized::of(&g);

        let cfg = ServeConfig { workers: 2, eta: 0.5, ..Default::default() };
        let single = ServeEngine::new(base.clone(), &catalog, cfg.clone());
        let fronts: Vec<ShardedEngine> = shard_counts()
            .into_iter()
            .map(|n| {
                ShardedEngine::new(
                    base.clone(),
                    &catalog,
                    ServeConfig { workers: 4, ..cfg.clone() },
                    n,
                )
            })
            .collect();
        // Warm alternating fronts (and the reference) up front, so
        // updates exercise both the incremental per-shard warm repair
        // and the cold re-warm-over-overlay path.
        single.identify(pred, None).expect("warm");
        for e in fronts.iter().step_by(2) {
            e.identify(pred, None).expect("warm");
        }

        for raw in &batches {
            let update = truth.resolve_and_apply(raw, &labels);
            single.apply_update(&update).expect("update batches are valid by construction");
            for e in &fronts {
                e.apply_update(&update).expect("broadcast update");
            }
            let subset: Vec<NodeId> = truth.live_ids().into_iter().step_by(3).collect();
            let expect = surface(&single, pred, &subset);
            for (e, n) in fronts.iter().zip(shard_counts()) {
                prop_assert_eq!(
                    &sharded_surface(e, pred, &subset),
                    &expect,
                    "{} shards diverged from the single engine",
                    n
                );
            }
        }

        // Broadcast compaction changes nothing — modulo the id
        // re-densification its (shard-identical) remap reports when
        // nodes were removed.
        let subset: Vec<NodeId> = truth.live_ids().into_iter().step_by(3).collect();
        let before = surface(&single, pred, &subset);
        let remap_single = single.compact();
        for (e, n) in fronts.iter().zip(shard_counts()) {
            let remap = e.compact();
            prop_assert_eq!(
                remap.is_some(),
                remap_single.is_some(),
                "{} shards disagree with the single engine on remapping",
                n
            );
            let (tr_subset, expect) = match &remap {
                None => (subset.clone(), before.clone()),
                Some(r) => {
                    let tr = |ids: Vec<NodeId>| -> Vec<NodeId> {
                        ids.into_iter().map(|v| r.get(v).expect("live ids survive")).collect()
                    };
                    (
                        subset.iter().map(|&v| r.get(v).expect("live")).collect(),
                        before.clone().map(|(full, sub, rules)| (tr(full), tr(sub), rules)),
                    )
                }
            };
            prop_assert_eq!(
                &sharded_surface(e, pred, &tr_subset),
                &expect,
                "{} shards diverged after broadcast compaction",
                n
            );
        }
    }
}

/// Deterministic halo-straddler: delete only edges whose endpoints are
/// owned by *different* shards. Each such deletion's union ball spans
/// the ownership boundary, so one shard repairs through its halo while
/// the neighbor repairs its own range — the sharpest case for the
/// per-shard invalidation argument.
#[test]
fn halo_straddling_deletions_stay_equal() {
    let g = synthetic(&SyntheticConfig::sized(120, 240, 7));
    let Some(pred) = predicate_of(&g) else { return };
    let sigma: Vec<Gpar> = generate_rules(
        &g,
        &pred,
        &RuleGenConfig { count: 3, pattern_nodes: 4, pattern_edges: 5, max_radius: 2, seed: 7 },
    );
    if sigma.is_empty() {
        return;
    }
    let catalog = catalog_for(&g, &sigma);
    let base = Arc::new(g.clone());
    let cfg = ServeConfig { workers: 2, eta: 0.5, ..Default::default() };
    for shards in shard_counts() {
        let front = ShardedEngine::new(base.clone(), &catalog, cfg.clone(), shards);
        let plan = front.plan();
        let mut cross: Vec<(NodeId, NodeId, gpar::graph::Label)> = Vec::new();
        for v in 0..g.node_count() as u32 {
            for e in g.out_edges(NodeId(v)) {
                if plan.owner_of(NodeId(v)) != plan.owner_of(e.node) {
                    cross.push((NodeId(v), e.node, e.label));
                }
            }
        }
        if shards == 1 {
            assert!(cross.is_empty(), "one shard owns everything");
        }
        // A fresh reference per shard count, so each comparison starts
        // from the same base graph.
        let single = ServeEngine::new(base.clone(), &catalog, cfg.clone());
        single.identify(pred, None).expect("warm");
        front.identify(pred, None).expect("warm");
        let subset: Vec<NodeId> = (0..g.node_count() as u32).map(NodeId).step_by(5).collect();
        for chunk in cross.chunks(8).take(4) {
            let up = GraphUpdate { del_edges: chunk.to_vec(), ..Default::default() };
            single.apply_update(&up).expect("valid deletion batch");
            front.apply_update(&up).expect("broadcast deletion batch");
            assert_eq!(
                sharded_surface(&front, pred, &subset),
                surface(&single, pred, &subset),
                "{shards} shards diverged on owner-crossing deletions"
            );
        }
    }
}
