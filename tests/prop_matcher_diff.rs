//! Differential property tests for the matcher's candidate generators.
//!
//! The intersection-based generator (smallest adjacency run + sorted-run
//! intersection, the steady-state path) must agree *exactly* — image
//! sets, anchored existence, and full enumeration counts — with
//!
//! * the brute-force oracle (independent exhaustive enumeration), and
//! * the legacy generate-then-filter pipeline
//!   ([`MatcherConfig::legacy_filter_gen`]), the pre-arena implementation
//!   kept precisely for this comparison,
//!
//! across every engine configuration, on random labeled graphs and
//! patterns that include wildcard node/edge conditions, self-loops and
//! parallel multi-labeled edges.

use gpar::graph::{Graph, GraphBuilder, NodeId, Vocab};
use gpar::iso::bruteforce::brute_force_count;
use gpar::iso::{brute_force_images, Matcher, MatcherConfig, SharedScratch};
use gpar::pattern::{Pattern, PatternBuilder};
use proptest::prelude::*;

const NLABELS: u32 = 3;
const ELABELS: u32 = 2;

/// Strategy: a random small labeled digraph (≤ 7 nodes, ≤ 14 edges) with
/// occasional parallel multi-labeled edges and self-loops.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..7, proptest::collection::vec((0u32..8, 0u32..8, 0u32..ELABELS), 0..14)).prop_map(
        |(n, edges)| {
            let vocab = Vocab::new();
            let nl: Vec<_> = (0..NLABELS).map(|i| vocab.intern(&format!("n{i}"))).collect();
            let el: Vec<_> = (0..ELABELS).map(|i| vocab.intern(&format!("e{i}"))).collect();
            let mut b = GraphBuilder::new(vocab);
            for i in 0..n {
                b.add_node(nl[i % nl.len()]);
            }
            for (s, d, l) in edges {
                let s = NodeId(s % n as u32);
                let d = NodeId(d % n as u32);
                b.add_edge(s, d, el[l as usize]);
            }
            b.build()
        },
    )
}

/// Builds a random pattern against `g`'s vocabulary: `pn` nodes (some
/// wildcard), edges with occasional wildcard conditions and self-loops.
fn build_pattern(g: &Graph, pn: usize, edges: &[(u32, u32, u32)]) -> Pattern {
    let vocab = g.vocab().clone();
    let nl: Vec<_> = (0..NLABELS).map(|i| vocab.intern(&format!("n{i}"))).collect();
    let el: Vec<_> = (0..ELABELS).map(|i| vocab.intern(&format!("e{i}"))).collect();
    let mut b = PatternBuilder::new(vocab);
    let ids: Vec<_> = (0..pn)
        .map(|i| {
            if i == pn - 1 && pn > 2 {
                b.node_any() // one wildcard node condition
            } else {
                b.node(nl[i % nl.len()])
            }
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(s, d, l) in edges {
        let s = ids[s as usize % pn];
        let d = ids[d as usize % pn];
        if seen.insert((s, d, l)) {
            if l as usize >= ELABELS as usize {
                b.edge_any(s, d); // wildcard edge condition
            } else {
                b.edge(s, d, el[l as usize]);
            }
        }
    }
    b.designate_x(ids[0]).build().unwrap()
}

/// Every engine × both candidate generators.
fn all_configs() -> Vec<MatcherConfig> {
    let engines = [MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()];
    engines.iter().flat_map(|&e| [e, e.with_legacy_gen()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Image sets: every engine/generator equals the brute-force oracle.
    #[test]
    fn images_agree_with_oracle_and_legacy(
        g in arb_graph(),
        pn in 2usize..4,
        // Edge-label index ELABELS (== 2) selects a wildcard condition.
        edges in proptest::collection::vec((0u32..4, 0u32..4, 0u32..ELABELS + 1), 1..4),
    ) {
        let p = build_pattern(&g, pn, &edges);
        let oracle = brute_force_images(&p, &g, p.x());
        for cfg in all_configs() {
            let m = Matcher::new(&g, cfg);
            prop_assert_eq!(
                &m.images(&p, p.x()), &oracle,
                "images: engine {:?} legacy={}", cfg.kind, cfg.legacy_filter_gen
            );
        }
    }

    // Full-enumeration counts: the intersection generator, the legacy
    // generator and the brute-force oracle count the same assignments —
    // per anchor candidate and in total.
    #[test]
    fn counts_agree_with_oracle_and_legacy(
        g in arb_graph(),
        pn in 2usize..4,
        edges in proptest::collection::vec((0u32..4, 0u32..4, 0u32..ELABELS + 1), 1..4),
    ) {
        let p = build_pattern(&g, pn, &edges);
        let oracle_total = brute_force_count(&p, &g);
        for cfg in all_configs() {
            let m = Matcher::new(&g, cfg);
            prop_assert_eq!(
                m.count_matches(&p, None), oracle_total,
                "total: engine {:?} legacy={}", cfg.kind, cfg.legacy_filter_gen
            );
        }
        // Per-anchor counts: intersection vs legacy, every engine.
        for cfg in [MatcherConfig::vf2(), MatcherConfig::degree_ordered(), MatcherConfig::guided()] {
            let fast = Matcher::new(&g, cfg);
            let slow = Matcher::new(&g, cfg.with_legacy_gen());
            for v in g.nodes() {
                prop_assert_eq!(
                    fast.count_anchored(&p, p.x(), v, None),
                    slow.count_anchored(&p, p.x(), v, None),
                    "anchored at {}: engine {:?}", v, cfg.kind
                );
            }
        }
    }

    // Anchored existence with a shared scratch arena across matchers is
    // identical to fresh per-matcher state (buffer reuse must never leak
    // state between searches or between site graphs).
    #[test]
    fn shared_scratch_never_leaks_state(
        g1 in arb_graph(),
        g2 in arb_graph(),
        pn in 2usize..4,
        edges in proptest::collection::vec((0u32..4, 0u32..4, 0u32..ELABELS + 1), 1..4),
    ) {
        let p1 = build_pattern(&g1, pn, &edges);
        let p2 = build_pattern(&g2, pn, &edges);
        let scratch = SharedScratch::default();
        for cfg in [MatcherConfig::vf2(), MatcherConfig::guided()] {
            // Interleave searches over two different graphs through ONE
            // arena; compare against independent matchers.
            let shared1 = Matcher::new(&g1, cfg).with_scratch(scratch.clone());
            let shared2 = Matcher::new(&g2, cfg).with_scratch(scratch.clone());
            let fresh1 = Matcher::new(&g1, cfg);
            let fresh2 = Matcher::new(&g2, cfg);
            for v in g1.nodes() {
                let w = NodeId(v.0 % g2.node_count() as u32);
                prop_assert_eq!(shared1.exists_anchored(&p1, p1.x(), v),
                                fresh1.exists_anchored(&p1, p1.x(), v));
                prop_assert_eq!(shared2.exists_anchored(&p2, p2.x(), w),
                                fresh2.exists_anchored(&p2, p2.x(), w));
            }
            prop_assert_eq!(shared1.images(&p1, p1.x()), fresh1.images(&p1, p1.x()));
            prop_assert_eq!(shared2.images(&p2, p2.x()), fresh2.images(&p2, p2.x()));
        }
    }
}
