//! Differential correctness of the coalescing write pipeline: a burst of
//! update batches submitted back-to-back — absorbed by the writer into
//! net generations under a positive coalescing window — must leave the
//! engine answering **bit-equal** to an engine that applied the same
//! batches strictly one at a time (and to a fresh rebuild on the
//! materialized ground truth): same customers, same per-rule
//! `ConfStats`/confidence/η-gating, across worker counts {1, 2, 8}.
//!
//! The burst path exercises everything the sequential path cannot:
//! delete + reinsert cancellation, relabel-chain collapse, cross-batch
//! net segmentation (a window-created node removed within the window),
//! and multi-batch union-ball invalidation — while the sequential twin
//! pins the already-proven one-generation-per-batch semantics. Every
//! submission must be individually acknowledged with `Ok`, and the burst
//! engine may only publish *fewer* (never more) snapshot generations.
//!
//! The default case count is deliberately small (the window linger makes
//! each case ~0.1 s per generation); CI raises it via `PROPTEST_CASES`.

mod delta_fuzz;

use delta_fuzz::{label_universe, predicate_of, surface, surface_to_overlay_ids, Materialized};
use gpar::core::{ConfStats, Gpar};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::graph::NodeId;
use gpar::serve::{RuleCatalog, ServeConfig, ServeEngine, Ts};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::env_or(5))]

    #[test]
    fn coalesced_burst_equals_sequential_application(
        seed in 0u64..1_000,
        nodes in 60usize..140,
        rules in 2usize..4,
        batches in collection::vec(
            (
                collection::vec(0u32..64, 0..3),          // new nodes
                collection::vec((0u32..4096, 0u32..4096, 0u32..64), 0..6), // new edges
                collection::vec((0u32..4096, 0u32..64), 0..3),             // relabels
                collection::vec(0u32..4096, 0..4),                         // edge deletions
                collection::vec(0u32..4096, 0..2),                         // node removals
            ),
            2..6,
        ),
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma: Vec<Gpar> = generate_rules(&g, &pred, &RuleGenConfig {
            count: rules,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: 2,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let mut catalog = RuleCatalog::new(g.vocab().clone());
        for r in &sigma {
            catalog.insert(Arc::new(r.clone()), ConfStats::default());
        }
        let labels = label_universe(&g);
        let base = Arc::new(g.clone());
        let mut truth = Materialized::of(&g);
        let updates: Vec<_> =
            batches.iter().map(|raw| truth.resolve_and_apply(raw, &labels)).collect();

        // The sequential twin: one generation per batch, no window.
        let seq = ServeEngine::new(
            base.clone(),
            &catalog,
            ServeConfig { workers: 2, eta: 0.5, ..Default::default() },
        );
        seq.identify(pred, None).expect("warm");
        for u in &updates {
            seq.apply_update(u).expect("update batches are valid by construction");
        }

        let overlay_subset: Vec<NodeId> = truth.live_ids().into_iter().step_by(3).collect();
        let expect_seq = surface(&seq, pred, &overlay_subset);
        // Independent anchor: the fresh rebuild on the ground truth.
        let (fresh_graph, fwd) = truth.build();
        let fresh = ServeEngine::new(
            fresh_graph,
            &catalog,
            ServeConfig { workers: 2, eta: 0.5, ..Default::default() },
        );
        let fresh_subset: Vec<NodeId> =
            overlay_subset.iter().map(|&v| fwd[v.index()].unwrap()).collect();
        let expect_fresh = surface_to_overlay_ids(surface(&fresh, pred, &fresh_subset), &fwd);
        prop_assert_eq!(&expect_seq, &expect_fresh, "sequential twin diverged from rebuild");

        for workers in [1usize, 2, 8] {
            let burst = ServeEngine::new(
                base.clone(),
                &catalog,
                ServeConfig {
                    workers,
                    eta: 0.5,
                    coalesce_window: Duration::from_millis(100),
                    ..Default::default()
                },
            );
            burst.identify(pred, None).expect("warm");
            // Fire the whole burst before the first window can close;
            // the writer absorbs whatever it finds queued. (Equivalence
            // may not depend on how the burst splits into windows — a
            // straggler landing in its own generation must answer the
            // same.)
            let replies: Vec<_> = updates
                .iter()
                .map(|u| {
                    burst
                        .submit_update_from(u.clone(), Ts::now())
                        .expect("engine accepts while running")
                })
                .collect();
            for rx in replies {
                rx.recv_timeout(Duration::from_secs(60))
                    .expect("every burst member is acknowledged")
                    .expect("coalesced batches revalidate cleanly");
            }
            let stats = burst.stats();
            prop_assert!(
                stats.epoch <= seq.stats().epoch,
                "coalescing may only merge generations, not mint extras \
                 (burst epoch {} vs sequential {})",
                stats.epoch,
                seq.stats().epoch
            );
            prop_assert_eq!(
                &surface(&burst, pred, &overlay_subset),
                &expect_seq,
                "coalesced burst (workers = {}) diverged from sequential application",
                workers
            );
        }
    }
}
