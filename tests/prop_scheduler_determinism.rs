//! Property tests pinning down the execution runtime's determinism rule:
//! task outputs are reduced in task-index order, so mining and EIP results
//! are **bit-identical** across worker counts and steal interleavings.
//!
//! The worker sets below always include {1, 2, 8}; a `GPAR_WORKERS`
//! override (the CI matrix leg) is added on top, so the suite exercises
//! whatever width the matrix pins.

use gpar::core::{ConfStats, Predicate};
use gpar::datagen::{generate_rules, synthetic, RuleGenConfig, SyntheticConfig};
use gpar::eip::{identify, EipAlgorithm, EipConfig};
use gpar::graph::{Graph, NodeId};
use gpar::mine::{DMine, DmineConfig, MineResult};
use gpar::pattern::CanonicalCode;
use proptest::prelude::*;

/// The most frequent edge triple of a synthetic graph, as its predicate.
fn predicate_of(g: &Graph) -> Option<Predicate> {
    let top = g.frequent_edge_patterns(1);
    let ((sl, el, dl), _) = top.first()?;
    Some(Predicate::new(
        gpar::pattern::NodeCond::Label(*sl),
        *el,
        gpar::pattern::NodeCond::Label(*dl),
    ))
}

/// Worker counts to compare: {1, 2, 8} plus any `GPAR_WORKERS` override.
fn worker_counts() -> Vec<usize> {
    let mut w = vec![1, 2, 8];
    if let Some(n) = gpar::exec::env_workers() {
        if !w.contains(&n) {
            w.push(n);
        }
    }
    w
}

/// A mining run's invariant surface: Σ in discovery order with exact
/// stats, the top-k selection, the objective bits, and the run counters.
type MiningFingerprint =
    (Vec<(CanonicalCode, ConfStats)>, Vec<CanonicalCode>, u64, usize, usize, usize);

/// Everything about a mining run that must be invariant across worker
/// counts.
fn mining_fingerprint(r: &MineResult) -> MiningFingerprint {
    (
        r.sigma.iter().map(|m| (m.rule.pr().canonical_code(), m.stats)).collect(),
        r.top_k.iter().map(|m| m.rule.pr().canonical_code()).collect(),
        r.objective.to_bits(),
        r.sigma_size,
        r.candidates_generated,
        r.rounds_run,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn dmine_is_bit_identical_across_worker_counts(
        seed in 0u64..1_000,
        nodes in 120usize..260,
        density in 15usize..25,
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * density / 10, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let run = |workers: usize| {
            let cfg = DmineConfig {
                k: 4,
                sigma: 2,
                workers,
                max_rounds: 2,
                ..Default::default()
            };
            mining_fingerprint(&DMine::new(cfg).run(&g, &pred))
        };
        let baseline = run(1);
        for w in worker_counts() {
            prop_assert_eq!(&run(w), &baseline, "workers = {}", w);
        }
        // Same width twice: a different steal interleaving must not show.
        prop_assert_eq!(&run(8), &baseline, "steal-order rerun");
    }

    #[test]
    fn identify_is_invariant_under_steal_order(
        seed in 0u64..1_000,
        nodes in 150usize..300,
        rules in 2usize..5,
    ) {
        let g = synthetic(&SyntheticConfig::sized(nodes, nodes * 2, seed));
        let Some(pred) = predicate_of(&g) else { return };
        let sigma = generate_rules(&g, &pred, &RuleGenConfig {
            count: rules,
            pattern_nodes: 4,
            pattern_edges: 5,
            max_radius: 2,
            seed,
        });
        if sigma.is_empty() {
            return;
        }
        let run = |workers: usize| {
            let cfg = EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, workers) };
            let res = identify(&g, &sigma, &cfg).expect("valid Σ");
            let mut customers: Vec<NodeId> = res.customers.iter().copied().collect();
            customers.sort_unstable();
            let stats: Vec<ConfStats> = res.per_rule.iter().map(|o| o.stats).collect();
            (customers, stats)
        };
        let baseline = run(1);
        for w in worker_counts() {
            prop_assert_eq!(&run(w), &baseline, "workers = {}", w);
        }
        prop_assert_eq!(&run(8), &baseline, "steal-order rerun");
    }
}
