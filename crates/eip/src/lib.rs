//! # gpar-eip
//!
//! The **entity identification problem (EIP)** of §5: given a set `Σ` of
//! GPARs pertaining to one event `q(x, y)`, a confidence bound `η` and a
//! graph `G`, compute
//!
//! ```text
//! Σ(x, G, η) = { v_x | v_x ∈ Q(x, G), Q ⇒ q ∈ Σ, conf(R, G) ≥ η }
//! ```
//!
//! — the potential customers identified by at least one sufficiently
//! confident rule. EIP is NP-hard even for a single rule (Prop. 5) but
//! **parallel scalable** (Theorem 6): the algorithms here split the
//! candidate centers over `n` workers, decide membership per candidate
//! inside its d-neighborhood `G_d(v_x)` (data locality of subgraph
//! isomorphism), and assemble the global confidence from per-worker
//! counts.
//!
//! Four algorithm configurations reproduce the paper's comparison:
//!
//! | name | per-candidate strategy |
//! |---|---|
//! | [`EipAlgorithm::Match`] | early termination + sketch-guided search + common-subpattern sharing (§5.2) |
//! | [`EipAlgorithm::Matchs`] | as `Match` but with the degree-based ordering of [38] |
//! | [`EipAlgorithm::Matchc`] | full enumeration per candidate, no guidance (§5.1) |
//! | [`EipAlgorithm::DisVf2`] | two full VF2 enumerations per candidate per rule (`P_R` *and* `Q`) |

pub mod eval;
pub mod identify;
pub mod options;

pub use eval::{antecedent_sketches, CandidateEvaluator, SharingPlan};
pub use identify::{derive_radius, identify, EipError, EipResult, RuleOutcome};
pub use options::{EipAlgorithm, EipConfig, MatchOpts};
