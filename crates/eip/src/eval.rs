//! Per-candidate membership evaluation with the §5.2 optimizations.

use crate::options::MatchOpts;
use gpar_core::{classify, Gpar, LcwaClass, Predicate};
use gpar_graph::Sketch;
use gpar_iso::Matcher;
use gpar_partition::CenterSite;
use gpar_pattern::pattern_sketch;

/// The multi-rule sharing plan: rules ordered by antecedent size, plus,
/// for each rule, the indices of *dominating* rules — rules whose
/// antecedent embeds into this rule's antecedent (with `x` pinned). If a
/// dominator's antecedent failed at a candidate, this rule's antecedent
/// must fail too (anti-monotonicity), so the search is skipped. This is
/// the common-subpattern multi-query optimization the paper adopts from
/// Le et al. [32].
#[derive(Debug, Clone)]
pub struct SharingPlan {
    /// Evaluation order (antecedent edge count ascending).
    pub order: Vec<usize>,
    /// `dominators[r]` — rules (by index) embedded in rule `r`'s
    /// antecedent.
    pub dominators: Vec<Vec<usize>>,
}

impl SharingPlan {
    /// Builds the plan with pairwise subsumption tests (`|Σ|²` small
    /// pattern embeddings; Σ is ≤ a few dozen rules in practice).
    pub fn build(rules: &[Gpar]) -> Self {
        let n = rules.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (rules[i].antecedent().edge_count(), i));
        let mut dominators = vec![Vec::new(); n];
        for i in 0..n {
            for j in 0..n {
                if i != j
                    && rules[j].antecedent().edge_count() < rules[i].antecedent().edge_count()
                    && rules[j].antecedent().is_subsumed_by(rules[i].antecedent())
                {
                    dominators[i].push(j);
                }
            }
        }
        Self { order, dominators }
    }
}

/// Per-candidate, per-rule membership outcome.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// LCWA class of the candidate (always defined: candidates satisfy
    /// `x`'s condition by construction).
    pub class: LcwaClass,
    /// Per rule: `v_x ∈ Q(x, G_d(v_x))`.
    pub q_member: Vec<bool>,
    /// Per rule: `v_x ∈ P_R(x, G_d(v_x))` (only positives can hold).
    pub pr_member: Vec<bool>,
}

/// The sketch depth an evaluator uses under `opts` (the engine's
/// configured depth, defaulting to 2).
fn effective_sketch_k(opts: &MatchOpts) -> u32 {
    if opts.engine.sketch_k > 0 {
        opts.engine.sketch_k
    } else {
        2
    }
}

/// Builds the per-rule antecedent sketches at `x` used by the
/// candidate-level prefilter under `opts`. Build once per rule group and
/// hand the `Arc` to [`CandidateEvaluator::with_plan_and_sketches`] so
/// repeated evaluator construction (one per serving request) does no
/// per-rule sketch work.
pub fn antecedent_sketches(rules: &[Gpar], opts: &MatchOpts) -> std::sync::Arc<Vec<Sketch>> {
    let k = effective_sketch_k(opts);
    std::sync::Arc::new(
        rules.iter().map(|r| pattern_sketch(r.antecedent(), r.antecedent().x(), k)).collect(),
    )
}

/// Evaluates one candidate site against all rules of Σ.
pub struct CandidateEvaluator<'r> {
    rules: &'r [Gpar],
    pred: Predicate,
    opts: MatchOpts,
    plan: Option<SharingPlan>,
    /// Antecedent sketches at `x`, for the candidate-level prefilter
    /// (shareable across evaluators, see [`antecedent_sketches`]).
    q_sketches: std::sync::Arc<Vec<Sketch>>,
    sketch_k: u32,
    /// Pattern sketches shared across the per-site matchers (they do not
    /// depend on the data graph).
    psketch_cache: gpar_iso::PatternSketchCache,
    /// Search-state arena shared across the per-site matchers: candidate
    /// stacks, mark buffers and traversal scratch survive the thousands
    /// of matcher invocations a worker makes per round.
    scratch: gpar_iso::SharedScratch,
}

impl<'r> CandidateEvaluator<'r> {
    /// Prepares the evaluator (sharing plan + pattern sketches are built
    /// once and reused across all candidates of a worker).
    pub fn new(rules: &'r [Gpar], opts: MatchOpts) -> Self {
        let plan = opts.subpattern_sharing.then(|| SharingPlan::build(rules));
        Self::with_plan_opt(rules, opts, plan)
    }

    /// Replaces the internal pattern-sketch cache with a caller-provided
    /// one. Successive evaluators over the *same rules on the same
    /// thread* (the serving layer builds one per request) then reuse
    /// pattern-side sketches instead of re-deriving them; the cache is
    /// `Rc`-based and must stay thread-local.
    pub fn with_pattern_cache(mut self, cache: gpar_iso::PatternSketchCache) -> Self {
        self.psketch_cache = cache;
        self
    }

    /// Replaces the internal search-state arena with a caller-provided
    /// one (see [`gpar_iso::SharedScratch`]). Like the pattern cache,
    /// successive evaluators on one thread then reuse search buffers
    /// instead of regrowing them per evaluator; `Rc`-based, thread-local.
    pub fn with_scratch(mut self, scratch: gpar_iso::SharedScratch) -> Self {
        self.scratch = scratch;
        self
    }

    /// As [`CandidateEvaluator::new`] but reusing a pre-built
    /// [`SharingPlan`] (skipping the `|Σ|²` pairwise subsumption tests)
    /// and antecedent sketches pre-built with [`antecedent_sketches`] for
    /// the *same `(rules, opts)`*. This is the serving layer's
    /// per-request constructor: both inputs are built once per catalog
    /// rule group, so constructing an evaluator does no per-rule work.
    ///
    /// The plan must have been built for exactly this `rules` slice
    /// (same contents, same order); it is ignored when
    /// `opts.subpattern_sharing` is off.
    pub fn with_plan_and_sketches(
        rules: &'r [Gpar],
        opts: MatchOpts,
        plan: SharingPlan,
        q_sketches: std::sync::Arc<Vec<Sketch>>,
    ) -> Self {
        assert_eq!(q_sketches.len(), rules.len(), "sketches must align with rules");
        let plan = opts.subpattern_sharing.then_some(plan);
        Self {
            rules,
            pred: *rules[0].predicate(),
            opts,
            plan,
            q_sketches,
            sketch_k: effective_sketch_k(&opts),
            psketch_cache: gpar_iso::PatternSketchCache::default(),
            scratch: gpar_iso::SharedScratch::default(),
        }
    }

    fn with_plan_opt(rules: &'r [Gpar], opts: MatchOpts, plan: Option<SharingPlan>) -> Self {
        Self {
            rules,
            pred: *rules[0].predicate(),
            opts,
            plan,
            q_sketches: antecedent_sketches(rules, &opts),
            sketch_k: effective_sketch_k(&opts),
            psketch_cache: gpar_iso::PatternSketchCache::default(),
            scratch: gpar_iso::SharedScratch::default(),
        }
    }

    /// The consequent predicate shared by Σ.
    pub fn predicate(&self) -> &Predicate {
        &self.pred
    }

    /// Evaluates all rules at one candidate inside its site.
    pub fn evaluate(&self, cs: &CenterSite) -> CandidateOutcome {
        let g = cs.graph();
        let center = cs.center;
        let class = classify(g, &self.pred, center)
            .expect("candidates satisfy x's condition by construction");
        let n = self.rules.len();
        let mut q_member = vec![false; n];
        let mut pr_member = vec![false; n];
        let matcher = Matcher::new(g, self.opts.engine)
            .with_shared_pattern_cache(self.psketch_cache.clone())
            .with_scratch(self.scratch.clone());
        // Candidate-level sketch prefilter: built once per candidate,
        // through the shared arena's traversal scratch.
        let center_sketch = self.opts.sketch_guidance.then(|| {
            self.scratch.with_neighborhood(|nbr| Sketch::build_with(g, center, self.sketch_k, nbr))
        });

        let default_order: Vec<usize>;
        let order: &[usize] = match &self.plan {
            Some(p) => &p.order,
            None => {
                default_order = (0..n).collect();
                &default_order
            }
        };
        for &r in order {
            let rule = &self.rules[r];
            // Sharing: a failed embedded antecedent implies failure here.
            if let Some(plan) = &self.plan {
                if plan.dominators[r].iter().any(|&ddom| !q_member[ddom]) {
                    continue;
                }
            }
            // Sketch prefilter on the antecedent demand at x.
            if let Some(cs) = &center_sketch {
                if !cs.covers(&self.q_sketches[r]) {
                    continue;
                }
            }
            let q = rule.antecedent();
            let in_q = if self.opts.early_termination {
                matcher.exists_anchored(q, q.x(), center)
            } else {
                matcher.count_anchored(q, q.x(), center, None) > 0
            };
            q_member[r] = in_q;
            // P_R membership: only positives can match (P_R contains the
            // consequent edge). disVF2 checks unconditionally — its
            // second full enumeration per candidate.
            let need_pr =
                if self.opts.double_check { true } else { in_q && class == LcwaClass::Positive };
            if need_pr {
                let pr = rule.pr();
                pr_member[r] = if self.opts.early_termination {
                    matcher.exists_anchored(pr, pr.x(), center)
                } else {
                    matcher.count_anchored(pr, pr.x(), center, None) > 0
                };
            }
        }
        CandidateOutcome { class, q_member, pr_member }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::EipAlgorithm;
    use gpar_graph::{GraphBuilder, NodeId, Vocab};
    use gpar_pattern::PatternBuilder;

    /// Graph: c1 likes+visits r; has friend c2 who likes r.
    /// Rules: R_a: like(x,y) ⇒ visit; R_b: like(x,y) ∧ friend(x,x2) ∧
    /// like(x2, y) ⇒ visit. R_a's antecedent embeds in R_b's.
    fn setup() -> (gpar_graph::Graph, Vec<Gpar>, NodeId, NodeId) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let (like, visit, friend) =
            (vocab.intern("like"), vocab.intern("visit"), vocab.intern("friend"));
        let mut b = GraphBuilder::new(vocab.clone());
        let c1 = b.add_node(cust);
        let c2 = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c1, r, like);
        b.add_edge(c1, r, visit);
        b.add_edge(c1, c2, friend);
        b.add_edge(c2, r, like);
        let g = b.build();

        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let ra = Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap();

        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        let x2 = pb.node(cust);
        pb.edge(x, y, like);
        pb.edge(x, x2, friend);
        pb.edge(x2, y, like);
        let rb = Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap();
        (g, vec![rb, ra], c1, c2)
    }

    #[test]
    fn sharing_plan_orders_by_size_and_finds_dominators() {
        let (_, rules, _, _) = setup();
        let plan = SharingPlan::build(&rules);
        // rules[1] (R_a, 1 edge) must be evaluated before rules[0] (R_b).
        assert_eq!(plan.order, vec![1, 0]);
        assert_eq!(plan.dominators[0], vec![1], "R_a dominates R_b");
        assert!(plan.dominators[1].is_empty());
    }

    #[test]
    fn all_algorithms_agree_on_memberships() {
        let (g, rules, c1, c2) = setup();
        let d = 2;
        for algo in
            [EipAlgorithm::Match, EipAlgorithm::Matchs, EipAlgorithm::Matchc, EipAlgorithm::DisVf2]
        {
            let ev = CandidateEvaluator::new(&rules, MatchOpts::for_algorithm(algo));
            let s1 = gpar_partition::CenterSite::build(&g, c1, d);
            let o1 = ev.evaluate(&s1);
            assert_eq!(o1.class, LcwaClass::Positive, "{algo:?}");
            assert_eq!(o1.q_member, vec![true, true], "{algo:?}");
            assert_eq!(o1.pr_member, vec![true, true], "{algo:?}");
            let s2 = gpar_partition::CenterSite::build(&g, c2, d);
            let o2 = ev.evaluate(&s2);
            assert_eq!(o2.class, LcwaClass::Unknown, "{algo:?}");
            // c2 likes r but has no friend with a like: matches R_a's
            // antecedent only.
            assert_eq!(o2.q_member, vec![false, true], "{algo:?}");
            assert_eq!(o2.pr_member, vec![false, false], "{algo:?}");
        }
    }

    #[test]
    fn sharing_skips_dominated_rules_after_failure() {
        // A candidate with no like edge at all: R_a fails, so R_b must be
        // skipped (and stay false) without searching.
        let (g0, rules, _, _) = setup();
        let vocab = g0.vocab().clone();
        let cust = vocab.get("cust").unwrap();
        let friend = vocab.get("friend").unwrap();
        let mut b = GraphBuilder::new(vocab);
        let lonely = b.add_node(cust);
        let other = b.add_node(cust);
        b.add_edge(lonely, other, friend);
        let g = b.build();
        let ev = CandidateEvaluator::new(&rules, MatchOpts::for_algorithm(EipAlgorithm::Match));
        let s = gpar_partition::CenterSite::build(&g, lonely, 2);
        let o = ev.evaluate(&s);
        assert_eq!(o.q_member, vec![false, false]);
    }
}
