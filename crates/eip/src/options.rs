//! EIP algorithm configurations.

use gpar_iso::MatcherConfig;
use gpar_partition::PartitionStrategy;

/// The paper's EIP algorithm variants (§5–§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EipAlgorithm {
    /// Optimized `Match`: early termination, k-hop-sketch guided search
    /// and pruning, common-subpattern sharing across Σ.
    Match,
    /// `Matchs`: `Match` with the degree-ordered search of Ren & Wang
    /// [38] instead of sketch guidance (the paper reports near-identical
    /// performance).
    Matchs,
    /// Baseline `Matchc` (§5.1): parallel-scalable but enumerates all
    /// matches per candidate, with no guidance or sharing.
    Matchc,
    /// `disVF2`: a distributed VF2 that runs *two* full enumerations per
    /// candidate per rule — one for `P_R` and one for `Q`/`Qq̄` — without
    /// the single-check discipline of `Matchc`/`Match`.
    DisVf2,
}

/// Fine-grained optimization toggles, derivable from an
/// [`EipAlgorithm`] but also settable individually for ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct MatchOpts {
    /// Stop at the first witness per candidate instead of enumerating all
    /// matches.
    pub early_termination: bool,
    /// Prune candidates whose 2-hop sketch cannot cover the pattern's
    /// sketch at `x`, and order in-search candidates by sketch surplus.
    pub sketch_guidance: bool,
    /// Skip rules whose antecedent subsumes an already-failed antecedent
    /// at the same candidate (multi-query common-subpattern sharing [32]).
    pub subpattern_sharing: bool,
    /// Evaluate `P_R` and `Q` independently per candidate (the disVF2
    /// cost model) instead of deriving what one check implies.
    pub double_check: bool,
    /// The underlying engine configuration.
    pub engine: MatcherConfig,
}

impl MatchOpts {
    /// Options implementing `algo`.
    pub fn for_algorithm(algo: EipAlgorithm) -> Self {
        match algo {
            EipAlgorithm::Match => Self {
                early_termination: true,
                sketch_guidance: true,
                subpattern_sharing: true,
                double_check: false,
                engine: MatcherConfig::guided(),
            },
            EipAlgorithm::Matchs => Self {
                early_termination: true,
                sketch_guidance: false,
                subpattern_sharing: true,
                double_check: false,
                engine: MatcherConfig::degree_ordered(),
            },
            EipAlgorithm::Matchc => Self {
                early_termination: false,
                sketch_guidance: false,
                subpattern_sharing: false,
                double_check: false,
                engine: MatcherConfig::vf2(),
            },
            EipAlgorithm::DisVf2 => Self {
                early_termination: false,
                sketch_guidance: false,
                subpattern_sharing: false,
                double_check: true,
                engine: MatcherConfig::vf2(),
            },
        }
    }
}

/// Full EIP run configuration.
#[derive(Debug, Clone)]
pub struct EipConfig {
    /// Algorithm preset (expanded into [`MatchOpts`] unless overridden).
    pub algorithm: EipAlgorithm,
    /// Confidence bound η.
    pub eta: f64,
    /// Number of worker threads `n`.
    pub workers: usize,
    /// Radius `d`; `None` derives the maximum `r(P_R, x)` over Σ.
    pub d: Option<u32>,
    /// Center-to-worker assignment strategy.
    pub strategy: PartitionStrategy,
    /// Optional explicit toggles (ablation); `None` uses the preset.
    pub opts: Option<MatchOpts>,
}

impl EipConfig {
    /// A configuration for `algo` with the paper's default η = 1.5.
    pub fn new(algo: EipAlgorithm, workers: usize) -> Self {
        Self {
            algorithm: algo,
            eta: 1.5,
            workers,
            d: None,
            strategy: PartitionStrategy::Balanced,
            opts: None,
        }
    }

    /// The effective per-candidate options.
    pub fn match_opts(&self) -> MatchOpts {
        self.opts.unwrap_or_else(|| MatchOpts::for_algorithm(self.algorithm))
    }
}

impl Default for EipConfig {
    fn default() -> Self {
        Self::new(EipAlgorithm::Match, gpar_exec::default_workers(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_iso::EngineKind;

    #[test]
    fn presets_match_paper_semantics() {
        let m = MatchOpts::for_algorithm(EipAlgorithm::Match);
        assert!(m.early_termination && m.sketch_guidance && m.subpattern_sharing);
        assert!(!m.double_check);
        assert_eq!(m.engine.kind, EngineKind::Guided);

        let c = MatchOpts::for_algorithm(EipAlgorithm::Matchc);
        assert!(!c.early_termination && !c.sketch_guidance && !c.subpattern_sharing);
        assert!(!c.double_check);

        let v = MatchOpts::for_algorithm(EipAlgorithm::DisVf2);
        assert!(v.double_check, "disVF2 runs two checks per candidate");

        let s = MatchOpts::for_algorithm(EipAlgorithm::Matchs);
        assert_eq!(s.engine.kind, EngineKind::DegreeOrdered);
    }

    #[test]
    fn explicit_opts_override_preset() {
        let mut cfg = EipConfig::new(EipAlgorithm::Match, 2);
        assert!(cfg.match_opts().sketch_guidance);
        let mut o = MatchOpts::for_algorithm(EipAlgorithm::Match);
        o.sketch_guidance = false;
        cfg.opts = Some(o);
        assert!(!cfg.match_opts().sketch_guidance);
    }
}
