//! The parallel EIP driver (`Matchc`'s three steps, §5.1, shared by all
//! algorithm variants).

use crate::eval::CandidateEvaluator;
use crate::options::EipConfig;
use gpar_core::{ConfStats, Confidence, Gpar, LcwaClass};
use gpar_exec::Executor;
use gpar_graph::{FxHashSet, GraphView, NodeId};
use gpar_partition::{build_sites, chunk_by_load, PartitionStrategy};
use gpar_pattern::NodeCond;
use std::fmt;
use std::time::Duration;

/// Site-chunk granules per worker (the task unit of the work-stealing
/// executor). EIP runs exactly one task per chunk — the whole Σ is
/// evaluated per site — so granules can be fine: 16 per worker bounds the
/// load imbalance of the largest chunk at ~6% of a worker's share while
/// per-task overhead stays invisible next to multi-rule site evaluation.
const CHUNKS_PER_WORKER: usize = 16;

/// Errors raised by [`identify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EipError {
    /// Σ must contain at least one rule.
    EmptySigma,
    /// All rules in Σ must pertain to the same event `q(x, y)` (§5.1).
    MixedPredicates,
}

impl fmt::Display for EipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EipError::EmptySigma => write!(f, "Σ is empty"),
            EipError::MixedPredicates => {
                write!(f, "all GPARs in Σ must share the same predicate q(x, y)")
            }
        }
    }
}

impl std::error::Error for EipError {}

/// Per-rule global outcome.
#[derive(Debug, Clone)]
pub struct RuleOutcome {
    /// Assembled support counts.
    pub stats: ConfStats,
    /// Global BF confidence.
    pub confidence: Confidence,
    /// `Q(x, G)` — the rule's potential customers.
    pub q_matches: FxHashSet<NodeId>,
    /// `P_R(x, G)` — customers that already performed `q`.
    pub pr_matches: FxHashSet<NodeId>,
}

/// Result of an EIP run.
#[derive(Debug)]
pub struct EipResult {
    /// `Σ(x, G, η)` — the identified potential customers.
    pub customers: FxHashSet<NodeId>,
    /// Per-rule outcomes, aligned with the input Σ.
    pub per_rule: Vec<RuleOutcome>,
    /// Per-worker busy times (skew measurement): measured **per-task
    /// thread-CPU costs** list-scheduled onto `workers` virtual
    /// processors — what each worker of an idle `workers`-core host would
    /// be busy for, independent of how the OS interleaved the pool. Same
    /// clock as [`EipResult::partition_time`] and
    /// [`EipResult::coordinator_time`].
    pub worker_times: Vec<Duration>,
    /// Successful work-steal operations (0 means the static chunk seed
    /// was already balanced, or `workers = 1`).
    pub steals: u64,
    /// Total wall-clock time (the one wall-clock field).
    pub elapsed: Duration,
    /// Thread-CPU time spent building candidate sites (step 1; itself
    /// center-parallel on a real cluster).
    pub partition_time: Duration,
    /// Thread-CPU time the coordinating thread spent on validation and
    /// assembly — excludes any task work executed inline on it when
    /// `workers = 1`.
    pub coordinator_time: Duration,
    /// Number of candidate centers examined (`|L|`).
    pub candidates: usize,
}

impl EipResult {
    /// Simulated wall-clock on an `n`-processor shared-nothing cluster:
    /// partitioning (embarrassingly center-parallel) divided by `n`, plus
    /// the *critical path* of the matching step (the slowest worker), plus
    /// the sequential assembly remainder. Every component is measured on
    /// the **thread-CPU clock** (never wall-clock), so the sum stays
    /// meaningful on oversubscribed hosts; on a single-core host — where
    /// thread wall-clock cannot exhibit parallel speedup — this is the
    /// faithful reading of the paper's `T(|G|, |Σ|, n)` (see DESIGN.md
    /// substitutions).
    pub fn simulated_parallel_time(&self) -> Duration {
        let n = self.worker_times.len().max(1) as u32;
        let critical = self.worker_times.iter().max().copied().unwrap_or_default();
        self.partition_time / n + critical + self.coordinator_time
    }
}

/// One chunk task's partial counts (merged in task-index order, so the
/// assembly is independent of the steal interleaving).
struct ChunkOut {
    supp_q: u64,
    supp_qbar: u64,
    /// Per rule: (supp_r, supp_q_qbar, q-matching centers, PR-matching
    /// centers) over this chunk's candidates.
    per_rule: Vec<(u64, u64, Vec<NodeId>, Vec<NodeId>)>,
}

/// The evaluation radius `d` for a rule set: the maximum of `r(P_R, x)`
/// and `r(Q, x)` over Σ (§5.1). The paper states `r(P_R, x)`; we also
/// cover `r(Q, x)`, which can exceed it — the consequent edge shortens
/// paths in `P_R` (e.g. Q1's `y` sits 2 hops from `x` in `Q` but only 1
/// in `P_R`), yet EIP must evaluate *antecedent* membership. Components
/// of `Q` that `x` cannot reach have unbounded radius and are matched
/// within the d-ball (the locality boundary; see the gpar-partition
/// docs). Shared with `gpar-serve`'s candidate index so serving and
/// one-shot evaluation can never diverge on `d`.
pub fn derive_radius(sigma: &[Gpar]) -> u32 {
    sigma
        .iter()
        .map(|r| {
            let pr = r.radius().unwrap_or(1);
            let q = r.antecedent().radius().unwrap_or(pr);
            pr.max(q)
        })
        .max()
        .unwrap_or(1)
}

/// Computes `Σ(x, G, η)` with the configured algorithm. This is exact for
/// every variant (Theorem 6's `Matchc` is exact; the optimizations only
/// change the work per candidate), so all four algorithms return identical
/// results — a property the integration tests pin down.
pub fn identify<G: GraphView + ?Sized>(
    g: &G,
    sigma: &[Gpar],
    config: &EipConfig,
) -> Result<EipResult, EipError> {
    let start = gpar_obs::Ts::monotonic_now();
    let cpu0 = gpar_graph::thread_cpu_time();
    let first = sigma.first().ok_or(EipError::EmptySigma)?;
    if sigma.iter().any(|r| !r.same_predicate(first)) {
        return Err(EipError::MixedPredicates);
    }
    let pred = *first.predicate();
    let d = config.d.unwrap_or_else(|| derive_radius(sigma));

    // Step 1: candidates L = nodes satisfying x's search condition,
    // partitioned with their d-neighborhoods.
    let centers: Vec<NodeId> = match pred.x_cond {
        NodeCond::Label(l) => g.label_members(l),
        NodeCond::Any => g.nodes().collect(),
    };
    let candidates = centers.len();
    let cpu_pre_part = gpar_graph::thread_cpu_time();
    let sites = build_sites(g, &centers, d);
    let partition_time = gpar_graph::thread_cpu_time().saturating_sub(cpu_pre_part);
    let opts = config.match_opts();

    // Step 2: per-candidate evaluation fans out as chunk tasks on the
    // work-stealing executor — the chunk granule (not a static per-worker
    // split) is what keeps the critical path at `max(chunk)` instead of
    // `max(static share)` when per-site cost is skewed. Each worker
    // builds one evaluator (sharing plan, sketches, scratch) on its own
    // thread and reuses it for every task it runs, stolen or not.
    let workers = config.workers.max(1);
    let max_chunks = workers * CHUNKS_PER_WORKER;
    let chunks = match config.strategy {
        PartitionStrategy::Balanced => {
            let loads: Vec<u64> = sites.iter().map(|s| s.load()).collect();
            chunk_by_load(&loads, max_chunks)
        }
        PartitionStrategy::Hash => chunk_by_load(&vec![1u64; sites.len()], max_chunks),
    };
    let nrules = sigma.len();
    let exec = Executor::new(workers);
    let (parts, stats) = exec.map_indexed(
        chunks.len(),
        |_w| CandidateEvaluator::new(sigma, opts),
        |ev, c| {
            let mut out = ChunkOut {
                supp_q: 0,
                supp_qbar: 0,
                per_rule: vec![(0, 0, Vec::new(), Vec::new()); nrules],
            };
            for cs in &sites[chunks[c].clone()] {
                let o = ev.evaluate(cs);
                match o.class {
                    LcwaClass::Positive => out.supp_q += 1,
                    LcwaClass::Negative => out.supp_qbar += 1,
                    LcwaClass::Unknown => {}
                }
                for (r, slot) in out.per_rule.iter_mut().enumerate() {
                    if o.q_member[r] {
                        slot.2.push(cs.center_global);
                        if o.class == LcwaClass::Negative {
                            slot.1 += 1;
                        }
                    }
                    if o.pr_member[r] && o.class == LcwaClass::Positive {
                        slot.0 += 1;
                        slot.3.push(cs.center_global);
                    }
                }
            }
            out
        },
    );
    // Inline execution (workers = 1) books task work as worker time; keep
    // it out of the coordinator's own accounting below.
    let inline_cpu: Duration =
        if stats.inline { stats.worker_times.iter().sum() } else { Duration::ZERO };
    let worker_times = stats.virtual_worker_times(workers);

    // Step 3: assemble, folding chunk partials in task-index order.
    let mut supp_q = 0u64;
    let mut supp_qbar = 0u64;
    let mut per_rule: Vec<(u64, u64, FxHashSet<NodeId>, FxHashSet<NodeId>)> =
        vec![(0, 0, FxHashSet::default(), FxHashSet::default()); sigma.len()];
    for out in parts {
        supp_q += out.supp_q;
        supp_qbar += out.supp_qbar;
        for (acc, part) in per_rule.iter_mut().zip(out.per_rule) {
            acc.0 += part.0;
            acc.1 += part.1;
            acc.2.extend(part.2);
            acc.3.extend(part.3);
        }
    }

    let mut customers = FxHashSet::default();
    let per_rule: Vec<RuleOutcome> = per_rule
        .into_iter()
        .map(|(supp_r, supp_q_qbar, q_matches, pr_matches)| {
            let stats = ConfStats {
                supp_r,
                supp_q_ante: q_matches.len() as u64,
                supp_q,
                supp_qbar,
                supp_q_qbar,
            };
            let confidence = stats.conf();
            if confidence.at_least(config.eta) {
                // det: set-into-set union — element order cannot leak
                // into the (unordered) customers set.
                customers.extend(q_matches.iter().copied());
            }
            RuleOutcome { stats, confidence, q_matches, pr_matches }
        })
        .collect();

    let coordinator_time = gpar_graph::thread_cpu_time()
        .saturating_sub(cpu0)
        .saturating_sub(partition_time)
        .saturating_sub(inline_cpu);
    Ok(EipResult {
        customers,
        per_rule,
        worker_times,
        steals: stats.steals,
        elapsed: start.elapsed(),
        partition_time,
        coordinator_time,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::EipAlgorithm;
    use gpar_graph::{Graph, GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    /// 10 positives matching the rule, 2 negatives matching the
    /// antecedent, 3 unknowns matching the antecedent.
    fn scenario() -> (Graph, Vec<Gpar>) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        for _ in 0..10 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
            b.add_edge(c, r, visit);
        }
        for _ in 0..2 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            let bb = b.add_node(bar);
            b.add_edge(c, r, like);
            b.add_edge(c, bb, visit);
        }
        for _ in 0..3 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
        }
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let rule = Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap();
        (g, vec![rule])
    }

    #[test]
    fn counts_follow_the_lcwa() {
        let (g, sigma) = scenario();
        let cfg = EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, 3) };
        let res = identify(&g, &sigma, &cfg).unwrap();
        let o = &res.per_rule[0];
        assert_eq!(o.stats.supp_q, 10);
        assert_eq!(o.stats.supp_qbar, 2);
        assert_eq!(o.stats.supp_r, 10);
        assert_eq!(o.stats.supp_q_qbar, 2);
        assert_eq!(o.stats.supp_q_ante, 15);
        // conf = 10*2/(2*10) = 1.0 ≥ η = 0.5 ⇒ all 15 antecedent matches
        // are potential customers.
        assert_eq!(o.confidence, Confidence::Value(1.0));
        assert_eq!(res.customers.len(), 15);
        assert_eq!(res.candidates, 15);
    }

    #[test]
    fn eta_gates_the_output() {
        let (g, sigma) = scenario();
        let cfg = EipConfig { eta: 1.5, ..EipConfig::new(EipAlgorithm::Match, 2) };
        let res = identify(&g, &sigma, &cfg).unwrap();
        assert!(res.customers.is_empty(), "conf 1.0 < η 1.5");
        // The per-rule outcome is still reported.
        assert_eq!(res.per_rule[0].q_matches.len(), 15);
    }

    #[test]
    fn all_algorithms_return_identical_results() {
        let (g, sigma) = scenario();
        let baseline = identify(
            &g,
            &sigma,
            &EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::DisVf2, 2) },
        )
        .unwrap();
        for algo in [EipAlgorithm::Match, EipAlgorithm::Matchs, EipAlgorithm::Matchc] {
            for workers in [1, 3, 5] {
                let res =
                    identify(&g, &sigma, &EipConfig { eta: 0.5, ..EipConfig::new(algo, workers) })
                        .unwrap();
                assert_eq!(res.customers, baseline.customers, "{algo:?}/{workers}");
                assert_eq!(res.per_rule[0].stats, baseline.per_rule[0].stats, "{algo:?}/{workers}");
            }
        }
    }

    #[test]
    fn validation_errors() {
        let (g, sigma) = scenario();
        assert_eq!(identify(&g, &[], &EipConfig::default()).unwrap_err(), EipError::EmptySigma);
        // A rule with a different predicate label.
        let vocab = g.vocab().clone();
        let cust = vocab.get("cust").unwrap();
        let rest = vocab.get("rest").unwrap();
        let like = vocab.get("like").unwrap();
        let other = vocab.intern("recommends");
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let mixed = Gpar::new(pb.designate(x, y).build().unwrap(), other).unwrap();
        let sigma2 = vec![sigma[0].clone(), mixed];
        assert_eq!(
            identify(&g, &sigma2, &EipConfig::default()).unwrap_err(),
            EipError::MixedPredicates
        );
    }

    #[test]
    fn multi_rule_union_semantics() {
        // Two rules: the strong one admits its antecedent matches, the
        // weak one (conf < η) contributes nothing.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let (like, hate, visit) =
            (vocab.intern("like"), vocab.intern("hate"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        // likers: always visit. haters: never visit (negatives).
        for _ in 0..6 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
            b.add_edge(c, r, visit);
        }
        for _ in 0..4 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            let bb = b.add_node(bar);
            b.add_edge(c, r, hate);
            b.add_edge(c, bb, visit);
        }
        let g = b.build();
        let mk = |edge| {
            let mut pb = PatternBuilder::new(vocab.clone());
            let x = pb.node(cust);
            let y = pb.node(rest);
            pb.edge(x, y, edge);
            Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap()
        };
        let sigma = vec![mk(like), mk(hate)];
        let cfg = EipConfig { eta: 1.0, ..EipConfig::new(EipAlgorithm::Match, 2) };
        let res = identify(&g, &sigma, &cfg).unwrap();
        // like-rule: supp_r 6, Qq̄ 0 → logical rule (∞ ≥ η) — admits 6.
        // hate-rule: supp_r 0 → conf 0 — admits nothing.
        assert_eq!(res.customers.len(), 6);
        assert_eq!(res.per_rule[1].stats.supp_r, 0);
    }
}
