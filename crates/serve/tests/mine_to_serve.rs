//! End-to-end: mine on a generated social graph, export the catalog,
//! round-trip it through the binary codec, and check the serving engine
//! answers exactly as direct EIP evaluation.

use gpar_core::Gpar;
use gpar_datagen::pokec_like;
use gpar_eip::{identify, EipAlgorithm, EipConfig};
use gpar_graph::{NodeId, Vocab};
use gpar_mine::{DMine, DmineConfig};
use gpar_serve::{RuleCatalog, ServeConfig, ServeEngine};
use std::sync::Arc;

#[test]
fn mined_catalog_roundtrips_and_serves_like_eip() {
    let sg = pokec_like(600, 42);
    let pred = sg.schema.predicate("music", 0).unwrap();
    let cfg = DmineConfig { k: 4, sigma: 4, d: 2, workers: 2, max_rounds: 2, ..Default::default() };
    let mined = DMine::new(cfg).run(&sg.graph, &pred);
    assert!(!mined.sigma.is_empty(), "mining must retain rules on homophily data");

    // Export → save → load through a fresh vocabulary.
    let catalog = RuleCatalog::from_mine_result(&mined, sg.graph.vocab().clone());
    assert_eq!(catalog.len(), mined.unique_sigma().len());
    assert_eq!(catalog.version(), 1);
    let mut buf = Vec::new();
    catalog.save(&mut buf).unwrap();

    // Serving-side: read the graph's own vocab (production would load the
    // graph first, then the catalog into the same vocabulary).
    let loaded = RuleCatalog::load(buf.as_slice(), sg.graph.vocab().clone()).unwrap();
    assert_eq!(loaded.len(), catalog.len());
    assert_eq!(loaded.version(), catalog.version());

    // The loaded predicate key must equal the mining predicate (same
    // vocab ⇒ same labels).
    assert!(!loaded.indices_for(&pred).is_empty());

    // Direct EIP on the same graph with the same Σ.
    let sigma: Vec<Gpar> = loaded.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
    let eta = 0.5;
    let eip = identify(
        &sg.graph,
        &sigma,
        &EipConfig { eta, d: Some(2), ..EipConfig::new(EipAlgorithm::Match, 3) },
    )
    .unwrap();
    let mut expect: Vec<NodeId> = eip.customers.iter().copied().collect();
    expect.sort_unstable();

    let graph = Arc::new(sg.graph.clone());
    for workers in [1, 4] {
        let engine = ServeEngine::new(
            graph.clone(),
            &loaded,
            ServeConfig { workers, eta, d: Some(2), ..Default::default() },
        );
        let res = engine.identify(pred, None).unwrap();
        assert_eq!(res.customers, expect, "serve (w={workers}) must equal direct EIP");

        // Per-rule serving confidences equal EIP's assembly.
        let top = engine.top_rules(pred, sigma.len()).unwrap();
        let mut eip_stats: Vec<_> = eip.per_rule.iter().map(|o| o.stats).collect();
        let mut srv_stats: Vec<_> = top.iter().map(|r| r.stats).collect();
        eip_stats.sort_by_key(|s| (s.supp_r, s.supp_q_ante, s.supp_q_qbar));
        srv_stats.sort_by_key(|s| (s.supp_r, s.supp_q_ante, s.supp_q_qbar));
        assert_eq!(srv_stats, eip_stats);

        // Subset queries are intersections of the full answer.
        let subset: Vec<NodeId> =
            (0..sg.graph.node_count() as u32).step_by(7).map(NodeId).collect();
        let sub = engine.identify(pred, Some(subset.clone())).unwrap();
        let want: Vec<NodeId> =
            subset.iter().filter(|c| eip.customers.contains(c)).copied().collect();
        assert_eq!(sub.customers, want);
    }
}

#[test]
fn catalog_survives_a_cold_vocabulary() {
    // Loading into a *fresh* vocab re-interns label names; serving a graph
    // written/read through the binary codec with that same vocab must
    // still work end-to-end.
    let sg = pokec_like(300, 7);
    let pred = sg.schema.predicate("music", 0).unwrap();
    let cfg = DmineConfig { k: 3, sigma: 3, d: 2, workers: 2, max_rounds: 1, ..Default::default() };
    let mined = DMine::new(cfg).run(&sg.graph, &pred);
    if mined.sigma.is_empty() {
        return; // tiny graph: nothing mined at this σ, nothing to check
    }
    let catalog = RuleCatalog::from_mine_result(&mined, sg.graph.vocab().clone());
    let mut cat_bytes = Vec::new();
    catalog.save(&mut cat_bytes).unwrap();
    let mut graph_bytes = Vec::new();
    gpar_graph::io::write_graph_binary(&sg.graph, &mut graph_bytes).unwrap();

    // Cold start: new vocab, graph first, catalog second.
    let vocab = Vocab::new();
    let graph =
        Arc::new(gpar_graph::io::read_graph_binary(graph_bytes.as_slice(), vocab.clone()).unwrap());
    let loaded = RuleCatalog::load(cat_bytes.as_slice(), vocab.clone()).unwrap();

    // Rebuild the predicate key in the new vocabulary by name.
    let family = sg.schema.family("music").unwrap();
    let pred_cold = gpar_core::Predicate::new(
        gpar_pattern::NodeCond::Label(vocab.get("user").unwrap()),
        vocab.get(&sg.graph.vocab().resolve(family.edge)).unwrap(),
        gpar_pattern::NodeCond::Label(
            vocab.get(&sg.graph.vocab().resolve(family.values[0])).unwrap(),
        ),
    );
    let engine = ServeEngine::new(graph, &loaded, ServeConfig { eta: 0.5, ..Default::default() });
    assert!(engine.predicates().contains(&pred_cold));
    let res = engine.identify(pred_cold, None).unwrap();

    // Same answer as serving in the original vocabulary.
    let orig = ServeEngine::new(
        Arc::new(sg.graph.clone()),
        &catalog,
        ServeConfig { eta: 0.5, ..Default::default() },
    );
    let orig_res = orig.identify(pred, None).unwrap();
    assert_eq!(res.customers.len(), orig_res.customers.len());
}
