//! Fault-injection suite: drives a [`ServeEngine`] through a seeded
//! mixed workload (queries with rotating deadline/staleness options,
//! update batches toggling an edge) while a [`gpar_chaos`] plan injects
//! panics, delays, queue-full rejections and poisoned batches — then
//! proves the robustness contract:
//!
//! * **No hang, no lost reply**: every admitted request's channel yields
//!   an answer (bounded `recv_timeout`), and every fault surfaces as a
//!   typed error (`Shed` / `DeadlineExceeded` / `Panicked` /
//!   `UpdateError::{Rejected, Panicked}`) or a correct answer — never a
//!   dead channel.
//! * **No half-mutated state**: a batch the engine reported as applied
//!   is applied *exactly*; after disarming, answers, warm ledgers and
//!   per-rule stats are equal to a fresh engine built from scratch on a
//!   mirror graph that applied the same accepted batches.
//! * **Determinism**: every fault decision is a pure function of the
//!   plan seed, so any failure replays exactly (`CHAOS_SEED` selects the
//!   base seed; CI runs a small seed matrix).
#![cfg(feature = "chaos")]

use gpar_chaos::{ChaosPlan, ChaosTally};
use gpar_core::{ConfStats, Gpar, Predicate};
use gpar_graph::{DeltaGraph, Graph, GraphBuilder, GraphUpdate, NodeId, Vocab};
use gpar_pattern::PatternBuilder;
use gpar_serve::{
    IdentifyRequest, IdentifyResponse, QueryError, QueryOpts, RuleCatalog, ServeConfig,
    ServeEngine, Ts, UpdateError,
};
use proptest::prelude::*;
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Chaos state is process-global: tests that arm a plan take this gate.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Silences the default panic-hook backtrace for *injected* panics
/// (hundreds fire per run by design); real assertion failures still
/// print through the previous hook.
fn quiet_injected_panics() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("chaos:") {
                prev(info);
            }
        }));
    });
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The serving test scenario: 10 positives, 2 negatives, 3 unknowns,
/// one rule `like(x, y) ⇒ visit(x, y)`. Node 28 is an unknown customer
/// (likes restaurant 29, no visit edge) — the workload's churn edge.
fn scenario() -> (Arc<Graph>, RuleCatalog, Predicate) {
    let vocab = Vocab::new();
    let cust = vocab.intern("cust");
    let rest = vocab.intern("rest");
    let bar = vocab.intern("bar");
    let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
    let mut b = GraphBuilder::new(vocab.clone());
    for _ in 0..10 {
        let c = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c, r, like);
        b.add_edge(c, r, visit);
    }
    for _ in 0..2 {
        let c = b.add_node(cust);
        let r = b.add_node(rest);
        let bb = b.add_node(bar);
        b.add_edge(c, r, like);
        b.add_edge(c, bb, visit);
    }
    for _ in 0..3 {
        let c = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c, r, like);
    }
    let g = Arc::new(b.build());
    let mut pb = PatternBuilder::new(vocab.clone());
    let x = pb.node(cust);
    let y = pb.node(rest);
    pb.edge(x, y, like);
    let rule = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap());
    let pred = *rule.predicate();
    let mut cat = RuleCatalog::new(vocab);
    cat.insert(rule, ConfStats::default());
    (g, cat, pred)
}

/// One chaos round: arm a plan, drive `steps` seeded workload steps at
/// `workers`, drain every reply within a bound, disarm, then check the
/// surviving engine against a fresh rebuild on the accepted-batch
/// mirror. Returns the fault tally the round actually fired.
fn run_round(seed: u64, workers: usize, steps: u64) -> ChaosTally {
    quiet_injected_panics();
    let (g, cat, pred) = scenario();
    let engine = ServeEngine::new(
        g.clone(),
        &cat,
        ServeConfig { eta: 0.5, workers, queue_capacity: 8, ..Default::default() },
    );
    // Warm before arming so the ledger exists whatever the plan does.
    engine.identify(pred, None).expect("pre-chaos warm-up");
    // Mirror of every batch the engine *accepted* — the ground truth the
    // post-fault engine must match bit-for-bit.
    let mut mirror = DeltaGraph::new(g.clone());
    let vocab = g.vocab().clone();
    let visit = vocab.get("visit").unwrap();

    gpar_chaos::arm(ChaosPlan {
        seed,
        panic_ppk: 150,
        delay_ppk: 100,
        delay: Duration::from_micros(200),
        queue_full_ppk: 80,
        poison_batch_ppk: 250,
    });

    let mut pending: Vec<Receiver<Result<IdentifyResponse, QueryError>>> = Vec::new();
    let mut present = false; // the churn edge (28, 29, visit) starts absent
    for step in 0..steps {
        let word = splitmix64(seed ^ (step << 1 | 1));
        if word.is_multiple_of(4) {
            let edge = vec![(NodeId(28), NodeId(29), visit)];
            let batch = if present {
                GraphUpdate { del_edges: edge, ..Default::default() }
            } else {
                GraphUpdate { new_edges: edge, ..Default::default() }
            };
            match engine.apply_update(&batch) {
                Ok(_) => {
                    let applied = mirror.diff(&batch).expect("accepted batch is valid");
                    mirror.commit(&batch, &applied);
                    present = !present;
                }
                // Injected faults reject the whole batch — nothing may
                // have been applied, so the mirror is untouched.
                Err(UpdateError::Rejected | UpdateError::Panicked) => {}
                Err(e) => panic!("unexpected update error under chaos: {e}"),
            }
        } else {
            let opts = match word % 3 {
                0 => QueryOpts::default(),
                1 => QueryOpts { deadline: Some(Duration::from_millis(200)), ..Default::default() },
                _ => QueryOpts { staleness: Some(Duration::from_millis(50)), ..Default::default() },
            };
            let req = IdentifyRequest { predicate: pred, candidates: None, opts };
            match engine.submit_identify_from(req, Ts::now()) {
                Ok(rx) => pending.push(rx),
                // Admission faults (real full queue or injected) are a
                // typed shed, never a silent drop.
                Err(QueryError::Shed { .. }) => {}
                Err(e) => panic!("unexpected submit error under chaos: {e}"),
            }
        }
    }

    // No hang, no lost reply: every admitted request answers within a
    // bound, with a correct result or a typed fault.
    for rx in pending {
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(Ok(_))
            | Ok(Err(QueryError::Panicked))
            | Ok(Err(QueryError::DeadlineExceeded { .. })) => {}
            Ok(Err(e)) => panic!("untyped failure under chaos: {e}"),
            Err(e) => panic!("admitted request never answered: {e}"),
        }
    }
    let tally = gpar_chaos::disarm();

    // State consistency: the surviving engine answers exactly like a
    // fresh engine on the mirror of accepted batches.
    let fresh_graph = Arc::new(mirror.compact().graph);
    let fresh = ServeEngine::new(fresh_graph, &cat, ServeConfig { eta: 0.5, ..Default::default() });
    assert_eq!(
        engine.identify(pred, None).expect("post-chaos query").customers,
        fresh.identify(pred, None).expect("fresh query").customers,
        "post-fault answers diverge from a fresh rebuild (seed {seed}, workers {workers})"
    );
    let survived = engine.top_rules(pred, 16).expect("post-chaos top_rules");
    let rebuilt = fresh.top_rules(pred, 16).expect("fresh top_rules");
    assert_eq!(survived.len(), rebuilt.len());
    for (a, b) in survived.iter().zip(&rebuilt) {
        assert_eq!(a.stats, b.stats, "warm ledger diverged (seed {seed}, workers {workers})");
        assert_eq!(a.confidence, b.confidence);
        assert_eq!(a.active, b.active);
    }
    tally
}

/// The CI matrix entry point: `CHAOS_SEED` picks the base seed, and each
/// worker count gets its own derived seed so the four rounds explore
/// different fault sequences.
#[test]
fn chaos_rounds_recover_to_rebuild_equivalence() {
    let _g = gate();
    let base: u64 = std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let mut fired = 0u64;
    for workers in 1..=4 {
        fired += run_round(base.wrapping_mul(1000) + workers as u64, workers, 80).total();
    }
    assert!(fired > 0, "the plan must actually inject faults for the suite to mean anything");
}

/// With the feature compiled in but **no plan armed**, failpoints must
/// change nothing: the workload completes fault-free and the tally
/// stays zero — the guarantee that lets `chaos` builds run the regular
/// differential suites unchanged.
#[test]
fn unarmed_failpoints_are_inert_in_the_engine() {
    let _g = gate();
    let (g, cat, pred) = scenario();
    let vocab = g.vocab().clone();
    let visit = vocab.get("visit").unwrap();
    let engine = ServeEngine::new(
        g,
        &cat,
        ServeConfig { eta: 0.5, workers: 2, queue_capacity: 8, ..Default::default() },
    );
    assert!(!gpar_chaos::is_armed());
    let baseline = engine.identify(pred, None).expect("warm-up").customers;
    for i in 0..20 {
        let edge = vec![(NodeId(28), NodeId(29), visit)];
        let batch = if i % 2 == 0 {
            GraphUpdate { new_edges: edge, ..Default::default() }
        } else {
            GraphUpdate { del_edges: edge, ..Default::default() }
        };
        engine.apply_update(&batch).expect("unarmed updates never fault");
        assert!(engine.identify(pred, None).expect("unarmed queries never fault").epoch > 0);
    }
    assert_eq!(engine.identify(pred, None).unwrap().customers, baseline);
    assert_eq!(gpar_chaos::tally(), ChaosTally::default(), "no faults fire unarmed");
    assert_eq!(engine.stats().shed, 0);
}

// Any seed converges: the fault sequence is arbitrary, the contract is
// not. CI raises the case count via `PROPTEST_CASES`.
proptest! {
    #![proptest_config(ProptestConfig::env_or(8))]

    #[test]
    fn chaos_converges_for_any_seed(seed in 0u64..u64::MAX) {
        let _g = gate();
        run_round(seed, 2, 40);
    }
}
