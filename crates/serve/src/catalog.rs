//! The versioned, persistent rule catalog.
//!
//! A [`RuleCatalog`] is the durable artifact between *mining* and
//! *serving*: DMine runs once (or periodically) and exports its retained
//! rule set Σ with mining-time support/confidence statistics; the serving
//! engine loads the catalog next to a (possibly newer) graph and answers
//! identification queries from it.
//!
//! Catalogs are persisted with the workspace's compact binary codec
//! (patterns via [`gpar_pattern::codec`], shared varint primitives via
//! [`gpar_graph::io::bin`]). The header carries a **format version** (for
//! future layout evolution) and a **catalog version** — a counter bumped
//! on every mutation so replicas and caches can detect staleness cheaply.

use gpar_core::{ConfStats, Confidence, Gpar, Predicate};
use gpar_graph::io::bin::{self, BinError};
use gpar_graph::Vocab;
use gpar_mine::MineResult;
use gpar_pattern::{read_pattern_binary, write_pattern_binary, CanonicalCode};
use rustc_hash::FxHashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Magic header of the binary catalog format.
pub const CATALOG_MAGIC: &[u8; 8] = b"GPARC01\n";

/// Layout version written after the magic; readers reject anything newer.
pub const CATALOG_FORMAT_VERSION: u64 = 1;

/// One cataloged rule with its mining-time statistics.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The rule `R(x, y): Q ⇒ q`.
    pub rule: Arc<Gpar>,
    /// Global support/confidence counts from the mining evaluation.
    pub stats: ConfStats,
}

impl CatalogEntry {
    /// The BF confidence implied by the stored counts.
    pub fn confidence(&self) -> Confidence {
        self.stats.conf()
    }

    /// `supp(R, G)` at mining time.
    pub fn support(&self) -> u64 {
        self.stats.supp_r
    }
}

/// Errors raised by catalog construction and persistence.
#[derive(Debug)]
pub enum CatalogError {
    /// Binary-codec failure (I/O, bad magic, malformed content).
    Codec(BinError),
    /// The stream's format version is newer than this build understands.
    UnsupportedVersion(u64),
    /// A deserialized rule failed GPAR validation.
    BadRule(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Codec(e) => write!(f, "catalog codec error: {e}"),
            CatalogError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "catalog format version {v} is newer than supported ({CATALOG_FORMAT_VERSION})"
                )
            }
            CatalogError::BadRule(msg) => write!(f, "catalog contains an invalid rule: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<BinError> for CatalogError {
    fn from(e: BinError) -> Self {
        CatalogError::Codec(e)
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Codec(BinError::Io(e))
    }
}

/// A versioned collection of mined GPARs, grouped by consequent predicate.
#[derive(Debug, Clone)]
pub struct RuleCatalog {
    vocab: Arc<Vocab>,
    entries: Vec<CatalogEntry>,
    by_predicate: FxHashMap<Predicate, Vec<usize>>,
    codes: rustc_hash::FxHashSet<CanonicalCode>,
    version: u64,
}

impl RuleCatalog {
    /// An empty catalog over `vocab` at version 0.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        Self {
            vocab,
            entries: Vec::new(),
            by_predicate: FxHashMap::default(),
            codes: Default::default(),
            version: 0,
        }
    }

    /// Builds a catalog from a mining run: every retained rule of Σ (not
    /// just the diversified top-k) is exported with its assembled global
    /// statistics, deduplicated by canonical code.
    pub fn from_mine_result(res: &MineResult, vocab: Arc<Vocab>) -> Self {
        let mut cat = Self::new(vocab);
        cat.merge_mine_result(res);
        cat
    }

    /// Merges a mining run into this catalog, skipping rules already
    /// present (by canonical code of `P_R`). Bumps the catalog version
    /// once if anything was added; returns how many rules were added.
    pub fn merge_mine_result(&mut self, res: &MineResult) -> usize {
        let mut added = 0;
        for mr in res.unique_sigma() {
            if self.insert_inner(mr.rule.clone(), mr.stats) {
                added += 1;
            }
        }
        if added > 0 {
            self.version += 1;
        }
        added
    }

    /// Inserts one rule with its statistics. Returns `false` (and leaves
    /// the catalog unchanged) if an automorphic rule is already cataloged.
    /// Bumps the version on success.
    pub fn insert(&mut self, rule: Arc<Gpar>, stats: ConfStats) -> bool {
        let inserted = self.insert_inner(rule, stats);
        if inserted {
            self.version += 1;
        }
        inserted
    }

    fn insert_inner(&mut self, rule: Arc<Gpar>, stats: ConfStats) -> bool {
        if !self.codes.insert(rule.pr().canonical_code()) {
            return false;
        }
        let idx = self.entries.len();
        self.by_predicate.entry(*rule.predicate()).or_default().push(idx);
        self.entries.push(CatalogEntry { rule, stats });
        true
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// The mutation counter; persisted, so replicas can detect staleness.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of cataloged rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// The distinct consequent predicates, in no particular order.
    pub fn predicates(&self) -> impl Iterator<Item = &Predicate> {
        self.by_predicate.keys()
    }

    /// Entry indices pertaining to `pred` (empty if unknown).
    pub fn indices_for(&self, pred: &Predicate) -> &[usize] {
        self.by_predicate.get(pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Entries pertaining to `pred`, in insertion order.
    pub fn rules_for(&self, pred: &Predicate) -> Vec<&CatalogEntry> {
        self.indices_for(pred).iter().map(|&i| &self.entries[i]).collect()
    }

    /// The `k` highest-confidence entries for `pred` (mining-time
    /// confidence; ties broken by support, then insertion order).
    pub fn top_rules(&self, pred: &Predicate, k: usize) -> Vec<&CatalogEntry> {
        let mut out = self.rules_for(pred);
        out.sort_by(|a, b| {
            b.confidence()
                .ranking_value()
                .total_cmp(&a.confidence().ranking_value())
                .then(b.support().cmp(&a.support()))
        });
        out.truncate(k);
        out
    }

    /// Writes the catalog in the binary format.
    pub fn save(&self, mut w: impl Write) -> Result<(), CatalogError> {
        let w = &mut w;
        bin::write_magic(w, CATALOG_MAGIC)?;
        bin::write_uvarint(w, CATALOG_FORMAT_VERSION)?;
        bin::write_uvarint(w, self.version)?;
        bin::write_uvarint(w, self.entries.len() as u64)?;
        for e in &self.entries {
            // The antecedent pattern designates both x and y, so the rule
            // is fully reconstructible from (Q, q-label).
            write_pattern_binary(e.rule.antecedent(), &mut *w)?;
            // Resolve through the rule's own vocabulary: entries imported
            // from a mining run share the catalog vocab, but resolving
            // locally keeps save correct even for mixed provenance.
            let q = e.rule.antecedent().vocab().resolve(e.rule.predicate().label);
            bin::write_str(w, &q)?;
            let s = &e.stats;
            for v in [s.supp_r, s.supp_q_ante, s.supp_q, s.supp_qbar, s.supp_q_qbar] {
                bin::write_uvarint(w, v)?;
            }
        }
        Ok(())
    }

    /// Writes the catalog to a file.
    pub fn save_path(&self, path: impl AsRef<Path>) -> Result<(), CatalogError> {
        let f = std::fs::File::create(path)?;
        self.save(std::io::BufWriter::new(f))
    }

    /// Reads a catalog in the binary format, interning labels into
    /// `vocab`.
    pub fn load(mut r: impl Read, vocab: Arc<Vocab>) -> Result<Self, CatalogError> {
        let r = &mut r;
        bin::read_magic(r, CATALOG_MAGIC)?;
        let fv = bin::read_uvarint(r)?;
        if fv > CATALOG_FORMAT_VERSION {
            return Err(CatalogError::UnsupportedVersion(fv));
        }
        let version = bin::read_uvarint(r)?;
        let n = bin::read_count(r, 1 << 24, "catalog entry")?;
        let mut cat = Self::new(vocab.clone());
        for _ in 0..n {
            let antecedent = read_pattern_binary(&mut *r, vocab.clone())?;
            let q = vocab.intern(&bin::read_str(r)?);
            let mut counts = [0u64; 5];
            for c in &mut counts {
                *c = bin::read_uvarint(r)?;
            }
            // The strict constructor: save can only ever emit nontrivial
            // rules (insert takes `Gpar`s built via `Gpar::new`), so an
            // empty-antecedent entry here is corruption or a crafted
            // stream — and a trivial rule would make *every* candidate a
            // customer if it slipped into the serving index.
            let rule =
                Gpar::new(antecedent, q).map_err(|e| CatalogError::BadRule(e.to_string()))?;
            let stats = ConfStats {
                supp_r: counts[0],
                supp_q_ante: counts[1],
                supp_q: counts[2],
                supp_qbar: counts[3],
                supp_q_qbar: counts[4],
            };
            cat.insert_inner(Arc::new(rule), stats);
        }
        cat.version = version;
        Ok(cat)
    }

    /// Reads a catalog from a file.
    pub fn load_path(path: impl AsRef<Path>, vocab: Arc<Vocab>) -> Result<Self, CatalogError> {
        let f = std::fs::File::open(path)?;
        Self::load(std::io::BufReader::new(f), vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_pattern::PatternBuilder;

    fn rule(vocab: &Arc<Vocab>, via: &str, q: &str) -> Arc<Gpar> {
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let y = b.node(rest);
        b.edge(x, y, vocab.intern(via));
        Arc::new(Gpar::new(b.designate(x, y).build().unwrap(), vocab.intern(q)).unwrap())
    }

    fn stats(supp_r: u64, qqbar: u64) -> ConfStats {
        ConfStats {
            supp_r,
            supp_q_ante: supp_r + qqbar,
            supp_q: 20,
            supp_qbar: 5,
            supp_q_qbar: qqbar,
        }
    }

    #[test]
    fn insert_dedups_and_versions() {
        let vocab = Vocab::new();
        let mut cat = RuleCatalog::new(vocab.clone());
        assert_eq!(cat.version(), 0);
        assert!(cat.insert(rule(&vocab, "like", "visit"), stats(10, 2)));
        assert_eq!(cat.version(), 1);
        // Automorphic duplicate is rejected and does not bump the version.
        assert!(!cat.insert(rule(&vocab, "like", "visit"), stats(9, 3)));
        assert_eq!(cat.version(), 1);
        assert!(cat.insert(rule(&vocab, "follow", "visit"), stats(8, 1)));
        assert_eq!((cat.len(), cat.version()), (2, 2));
    }

    #[test]
    fn grouping_and_top_rules_rank_by_confidence() {
        let vocab = Vocab::new();
        let mut cat = RuleCatalog::new(vocab.clone());
        let r1 = rule(&vocab, "like", "visit");
        let pred = *r1.predicate();
        cat.insert(r1, stats(10, 10)); // conf = 10*5/(10*20) = 0.25
        cat.insert(rule(&vocab, "follow", "visit"), stats(16, 2)); // conf = 2.0
        cat.insert(rule(&vocab, "like", "recommend"), stats(4, 1));
        assert_eq!(cat.rules_for(&pred).len(), 2);
        let top = cat.top_rules(&pred, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].support(), 16, "higher-confidence rule must rank first");
        assert_eq!(cat.predicates().count(), 2);
    }

    #[test]
    fn save_load_roundtrip_preserves_rules_stats_and_version() {
        let vocab = Vocab::new();
        let mut cat = RuleCatalog::new(vocab.clone());
        cat.insert(rule(&vocab, "like", "visit"), stats(10, 2));
        cat.insert(rule(&vocab, "follow", "visit"), stats(7, 0));
        let mut buf = Vec::new();
        cat.save(&mut buf).unwrap();

        let fresh = Vocab::new();
        let back = RuleCatalog::load(buf.as_slice(), fresh.clone()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.version(), cat.version());
        for (a, b) in cat.entries().iter().zip(back.entries()) {
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.confidence(), b.confidence());
            assert_eq!(a.rule.antecedent().edge_count(), b.rule.antecedent().edge_count());
        }
        // Labels resolve by *name* in the fresh vocabulary.
        let visit = fresh.get("visit").expect("interned on load");
        assert!(back.entries().iter().all(|e| e.rule.predicate().label == visit));
    }

    #[test]
    fn load_rejects_corruption_and_future_versions() {
        let vocab = Vocab::new();
        let mut cat = RuleCatalog::new(vocab.clone());
        cat.insert(rule(&vocab, "like", "visit"), stats(10, 2));
        let mut buf = Vec::new();
        cat.save(&mut buf).unwrap();

        let mut bad = buf.clone();
        bad[3] = b'X';
        assert!(matches!(
            RuleCatalog::load(bad.as_slice(), Vocab::new()).unwrap_err(),
            CatalogError::Codec(BinError::BadMagic { .. })
        ));

        for cut in 0..buf.len() {
            assert!(RuleCatalog::load(&buf[..cut], Vocab::new()).is_err(), "cut {cut}");
        }

        // Format version 999 must be rejected as unsupported.
        let mut future = Vec::new();
        bin::write_magic(&mut future, CATALOG_MAGIC).unwrap();
        bin::write_uvarint(&mut future, 999).unwrap();
        assert!(matches!(
            RuleCatalog::load(future.as_slice(), Vocab::new()).unwrap_err(),
            CatalogError::UnsupportedVersion(999)
        ));
    }

    #[test]
    fn load_rejects_trivial_rules() {
        // A crafted stream carrying an edgeless antecedent: `save` can
        // never produce one, and if accepted the trivial rule would make
        // every x-labeled node a "customer" at serving time.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let p = gpar_pattern::Pattern::from_parts(
            vec![gpar_pattern::NodeCond::Label(cust), gpar_pattern::NodeCond::Label(rest)],
            vec![],
            gpar_pattern::PNodeId(0),
            Some(gpar_pattern::PNodeId(1)),
            vocab.clone(),
        )
        .unwrap();
        let mut buf = Vec::new();
        bin::write_magic(&mut buf, CATALOG_MAGIC).unwrap();
        bin::write_uvarint(&mut buf, CATALOG_FORMAT_VERSION).unwrap();
        bin::write_uvarint(&mut buf, 1).unwrap(); // catalog version
        bin::write_uvarint(&mut buf, 1).unwrap(); // one entry
        write_pattern_binary(&p, &mut buf).unwrap();
        bin::write_str(&mut buf, "visit").unwrap();
        for _ in 0..5 {
            bin::write_uvarint(&mut buf, 0).unwrap();
        }
        let err = RuleCatalog::load(buf.as_slice(), vocab).unwrap_err();
        assert!(matches!(&err, CatalogError::BadRule(m) if m.contains("antecedent")), "{err}");
    }
}
