//! # gpar-serve
//!
//! The serving subsystem: mine GPARs **once**, then answer entity
//! identification queries (§5's EIP, "identify potential customers") at
//! production rates against a live graph.
//!
//! The one-shot pipeline (`gpar-mine` → `gpar-eip`) re-derives everything
//! per call: candidate sets, sharing plans, d-ball extractions, global
//! confidences. This crate splits that work along the serving boundary:
//!
//! * [`RuleCatalog`] — the durable artifact between mining and serving: a
//!   **versioned** rule collection with mining-time statistics, persisted
//!   with the workspace's compact binary codec (`gpar_graph::io::bin` +
//!   `gpar_pattern::codec`). Export a mining run with
//!   [`RuleCatalog::from_mine_result`], ship the file, load it next to any
//!   graph.
//! * [`CandidateIndex`] — per consequent predicate: the rule group with
//!   unsatisfiable rules deactivated (antecedent **label signature**
//!   check), a pre-built [`gpar_eip::SharingPlan`], the candidate centers
//!   `L`, and optional k-hop sketches so candidates that cannot cover any
//!   antecedent's demand at `x` are pruned without search.
//! * [`ServeEngine`] — a fixed worker pool servicing
//!   [`identify`](ServeEngine::identify) /
//!   [`top_rules`](ServeEngine::top_rules) requests concurrently over
//!   **lock-free snapshots**: the whole serving view (graph overlay,
//!   candidate index, histograms, warm ledgers, the LRU cache of
//!   per-center d-ball extractions) is one immutable epoch-stamped
//!   generation behind an atomic pointer. Readers load it with a single
//!   atomic operation and never block — not on each other and not on
//!   writers. **Live updates** ([`ServeEngine::apply_update`], a
//!   [`GraphUpdate`] batch of inserts / relabels / deletions with edge
//!   tombstones and node removal) flow through a dedicated writer
//!   thread that **coalesces** each queued burst into one net batch
//!   (delete + reinsert cancels, relabel chains collapse), builds the
//!   successor generation off to the side — invalidating only the
//!   d-balls a mutation can reach on either side of it (the union-ball
//!   rule for non-monotone deletions) and incrementally repairing index
//!   and warm state — then publishes it with one pointer swap.
//!   [`ServeEngine::compact`] folds the overlay back into CSR form as a
//!   generation of its own (the writer triggers the same fold by itself
//!   under overlay pressure), publishing a [`gpar_graph::NodeRemap`]
//!   when node removals re-densified the id space.
//!
//! The engine's answers are **exactly** those of a direct
//! [`gpar_eip::identify`] run on the same (current) graph — the warm-up
//! pass assembles the same global confidence counts, and updates patch
//! them to what a from-scratch rebuild would compute; see the
//! consistency contract in [`engine`].
//!
//! ```
//! use gpar_serve::{RuleCatalog, ServeConfig, ServeEngine};
//! use gpar_core::{ConfStats, Gpar};
//! use gpar_graph::{GraphBuilder, Vocab};
//! use gpar_pattern::PatternBuilder;
//! use std::sync::Arc;
//!
//! // A tiny graph: two customers like a restaurant; one already visits.
//! let vocab = Vocab::new();
//! let (cust, rest) = (vocab.intern("cust"), vocab.intern("rest"));
//! let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
//! let mut b = GraphBuilder::new(vocab.clone());
//! let c1 = b.add_node(cust);
//! let c2 = b.add_node(cust);
//! let r = b.add_node(rest);
//! b.add_edge(c1, r, like);
//! b.add_edge(c1, r, visit);
//! b.add_edge(c2, r, like);
//! let g = Arc::new(b.build());
//!
//! // Catalog one rule: like(x, y) ⇒ visit(x, y).
//! let mut pb = PatternBuilder::new(vocab.clone());
//! let x = pb.node(cust);
//! let y = pb.node(rest);
//! pb.edge(x, y, like);
//! let rule = Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap();
//! let pred = *rule.predicate();
//! let mut catalog = RuleCatalog::new(vocab);
//! catalog.insert(Arc::new(rule), ConfStats::default());
//!
//! // Serve: c2 likes but does not yet visit — a potential customer.
//! let engine = ServeEngine::new(g, &catalog, ServeConfig { eta: 0.0, ..Default::default() });
//! let res = engine.identify(pred, None).unwrap();
//! assert_eq!(res.customers, vec![c1, c2]);
//! ```

pub mod cache;
pub mod catalog;
pub mod clock;
pub mod engine;
pub mod index;
pub mod shard;

pub use cache::{CacheStats, LruCache};
pub use catalog::{CatalogEntry, CatalogError, RuleCatalog, CATALOG_FORMAT_VERSION, CATALOG_MAGIC};
pub use engine::{
    EngineStats, IdentifyRequest, IdentifyResponse, QueryError, QueryOpts, RuleInfo, ServeConfig,
    ServeEngine, ShardAnswer, ShardQuery, UpdateError, UpdateReport,
};
pub use gpar_graph::GraphUpdate;
pub use shard::ShardedEngine;
// Observability vocabulary, re-exported so engine consumers (the load
// harness, dashboards) need not depend on gpar-obs directly.
pub use gpar_obs::{
    Counter, HistKind, HistogramSnapshot, MetricsSnapshot, Stage, Trace, TraceKind, Ts,
};
pub use index::{CandidateIndex, LabelSignature, PredicateGroup};
