//! A small intrusive-list LRU cache with hit/miss accounting.
//!
//! The serving engine keys this by `(center, d)` and stores
//! `Arc<CenterSite>` values, so hot candidate centers are never
//! re-extracted: a d-ball extraction is a BFS plus an induced-subgraph
//! build (`O(|G_d(v)|)`), which dominates per-candidate latency for small
//! patterns. All operations are `O(1)`; the engine wraps the cache in a
//! `Mutex` shared by the worker pool.

use rustc_hash::FxHashMap;
use std::hash::Hash;

/// Monotonic counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries removed by [`LruCache::retain`] (graph-update
    /// invalidation, as opposed to capacity pressure).
    pub invalidations: u64,
    /// Entries inserted (new keys only, not value replacements). With
    /// `evictions` and `invalidations` this makes churn derivable from a
    /// snapshot: `inserted - evictions - invalidations` entries are live
    /// or replaced-in-place.
    pub inserted: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity least-recently-used cache.
///
/// Capacity 0 disables the cache entirely: every `get` misses and
/// `insert` is a no-op, which the throughput bench uses as its baseline.
pub struct LruCache<K, V> {
    map: FxHashMap<K, usize>,
    entries: Vec<Entry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            entries: Vec::with_capacity(capacity.min(4096)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Looks up `key`, refreshing its recency. Returns a clone of the
    /// value (values are `Arc`s in the serving engine, so this is cheap).
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.stats.hits += 1;
                if self.head != i {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(self.entries[i].value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value` as most-recently used, evicting the LRU
    /// entry if the cache is full. Replaces the value on key collision.
    /// Returns the evicted key, if the insert displaced one.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&i) = self.map.get(&key) {
            self.entries[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return None;
        }
        self.stats.inserted += 1;
        let mut evicted = None;
        if self.map.len() == self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = self.entries[lru].key.clone();
            self.map.remove(&old);
            evicted = Some(old);
            self.free.push(lru);
            self.stats.evictions += 1;
        }
        let i = match self.free.pop() {
            Some(slot) => {
                self.entries[slot] = Entry { key: key.clone(), value, prev: NIL, next: NIL };
                slot
            }
            None => {
                self.entries.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
                self.entries.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }

    /// Iterator over the live keys (arbitrary order).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    /// Drops every entry, counting them as invalidations. Used when a
    /// compaction re-densifies node ids: cached values embed the old ids,
    /// so the whole working set is stale at once.
    pub fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.stats.invalidations += n as u64;
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        n
    }

    /// Builds a new cache holding exactly the entries whose key passes
    /// `keep`, preserving recency order and carrying the cumulative
    /// counters forward (dropped entries count as invalidations, as in
    /// [`LruCache::retain`]). The source is untouched — this is the
    /// copy-on-write twin of `retain`, used when the serving engine
    /// derives the next snapshot's cache from the published one while
    /// readers keep hitting it. Returns the new cache and the dropped
    /// keys.
    pub fn cloned_retain(&self, mut keep: impl FnMut(&K) -> bool) -> (Self, Vec<K>) {
        let mut out = Self::new(self.capacity);
        out.stats = self.stats;
        let mut dropped = Vec::new();
        // Walk LRU → MRU so each push_front lands the entry exactly where
        // the source had it.
        let mut i = self.tail;
        while i != NIL {
            let e = &self.entries[i];
            let up = e.prev;
            if keep(&e.key) {
                let slot = out.entries.len();
                out.entries.push(Entry {
                    key: e.key.clone(),
                    value: e.value.clone(),
                    prev: NIL,
                    next: NIL,
                });
                out.map.insert(e.key.clone(), slot);
                out.push_front(slot);
            } else {
                dropped.push(e.key.clone());
                out.stats.invalidations += 1;
            }
            i = up;
        }
        (out, dropped)
    }

    /// Removes every entry whose key fails `keep`, returning the removed
    /// keys. This is the scoped-invalidation hook: a graph update evicts
    /// exactly the `(center, d)` extractions whose d-ball it may have
    /// changed, leaving the rest of the working set hot.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) -> Vec<K> {
        let doomed: Vec<(K, usize)> =
            self.map.iter().filter(|(k, _)| !keep(k)).map(|(k, &i)| (k.clone(), i)).collect();
        for (k, i) in &doomed {
            self.unlink(*i);
            self.map.remove(k);
            self.free.push(*i);
            self.stats.invalidations += 1;
        }
        doomed.into_iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u32, &str> = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some("a")); // 1 is now MRU
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.get(&3), Some("c"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_refreshes_and_replaces() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh 1 → 2 becomes LRU
        c.insert(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        assert_eq!(c.get(&1), None);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
        assert_eq!(c.get(&1), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!(s.hit_rate() > 0.6);
    }

    #[test]
    fn inserted_counts_new_keys_and_insert_reports_evictee() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        assert_eq!(c.insert(1, 10), None);
        assert_eq!(c.insert(2, 20), None);
        assert_eq!(c.insert(1, 11), None, "replacement is not an insert");
        assert_eq!(c.stats().inserted, 2);
        // 2 is now LRU; inserting 3 reports it as displaced.
        assert_eq!(c.insert(3, 30), Some(2));
        let s = c.stats();
        assert_eq!((s.inserted, s.evictions), (3, 1));
        // Capacity 0: nothing inserted, nothing displaced.
        let mut z: LruCache<u32, u32> = LruCache::new(0);
        assert_eq!(z.insert(1, 1), None);
        assert_eq!(z.stats().inserted, 0);
    }

    #[test]
    fn retain_removes_exactly_the_failing_keys() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..6u32 {
            c.insert(i, i * 10);
        }
        let mut gone = c.retain(|&k| k % 2 == 0);
        gone.sort_unstable();
        assert_eq!(gone, vec![1, 3, 5]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().invalidations, 3);
        for i in 0..6u32 {
            assert_eq!(c.get(&i).is_some(), i % 2 == 0, "{i}");
        }
        // Freed slots are reusable and the list stays consistent.
        for i in 10..20u32 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn cloned_retain_preserves_order_stats_and_source() {
        let mut c: LruCache<u32, u32> = LruCache::new(8);
        for i in 0..6u32 {
            c.insert(i, i * 10);
        }
        let _ = c.get(&0); // 0 becomes MRU
        let before = c.stats();
        let (mut d, mut gone) = c.cloned_retain(|&k| k % 2 == 0);
        gone.sort_unstable();
        assert_eq!(gone, vec![1, 3, 5]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.stats().invalidations, before.invalidations + 3);
        // Source untouched.
        assert_eq!(c.len(), 6);
        assert_eq!(c.stats(), before);
        // Recency order survives the copy: 2 and 4 are older than 0, so
        // filling the clone to capacity evicts them first.
        for i in 10..15u32 {
            d.insert(i, i);
        }
        assert_eq!(d.len(), 8);
        assert_eq!(d.insert(20, 20), Some(2));
        assert_eq!(d.insert(21, 21), Some(4));
        assert_eq!(d.insert(22, 22), Some(0));
        assert_eq!(d.get(&0), None);
        assert_eq!(d.get(&10), Some(10));
    }

    #[test]
    fn clear_drops_everything_and_stays_usable() {
        let mut c: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4u32 {
            c.insert(i, i);
        }
        assert_eq!(c.clear(), 4);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 4);
        for i in 10..16u32 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.get(&15), Some(15));
    }

    #[test]
    fn heavy_churn_keeps_list_consistent() {
        let mut c: LruCache<u32, u32> = LruCache::new(5);
        for i in 0..1000u32 {
            c.insert(i % 13, i);
            let _ = c.get(&(i % 7));
            assert!(c.len() <= 5);
        }
        // The five most recent distinct keys of the i%13 stream survive.
        assert_eq!(c.len(), 5);
    }
}
