//! Fragment-sharded serving: a scatter/gather front over per-shard
//! [`ServeEngine`]s — §4.2's fragmentation promoted from mining rounds
//! to the long-lived serving layer.
//!
//! ## What is sharded (and what is not)
//!
//! A [`gpar_partition::ShardPlan`] splits the initial node id space into
//! contiguous ranges balanced by adjacency load; each shard runs a full
//! [`ServeEngine`] whose **answer state** — candidate index centers,
//! warm ledgers, d-ball cache, and update repair work — is restricted to
//! the centers its [`gpar_partition::ShardSpec`] owns
//! ([`crate::ServeConfig::owned`]). The **graph itself is replicated**:
//! every shard applies every [`GraphUpdate`] in the same submit order
//! (the front broadcasts under one lock), so id allocation, overlays,
//! and compactions agree bit-for-bit across shards without any
//! cross-shard coordination. Replicating the cheap part (the graph) is
//! what makes sharding the expensive part (per-center evaluation and
//! repair) sound under dynamic updates: an update whose d-ball reaches
//! into a shard's owned range is repaired by that shard's own
//! union-ball invalidation, exactly as in the single-engine proof — a
//! shard none of whose owned centers are within `d` of a touched node
//! publishes the generation with zero repair work. The plan's
//! precomputed halos ([`gpar_partition::ShardPlan::halo`]) are the
//! planning/diagnostic surface for that locality argument.
//!
//! ## Why merge re-derives statistics
//!
//! A shard's local η verdicts are meaningless on their own: confidence
//! is a **global** ratio (`supp(R)·supp(q̄) / (supp(Qq̄)·supp(q))`), and
//! every term is a count over *all* candidate centers. So queries
//! scatter a [`ShardQuery`] to **every** shard — each answers with raw
//! per-rule support counters plus its owned members of each rule's
//! match set, read from one snapshot — and the merger sums the counters
//! into exact global [`ConfStats`], re-derives confidence and the η
//! mask once, then unions the member lists of the globally active
//! rules. The merged answer is bit-equal to a single unsharded engine's
//! (`tests/prop_shard_equivalence.rs` pins this across shard counts).
//!
//! Per-shard coalescing windows may group the same update stream into
//! different generations (epochs can drift), but the settled state is
//! identical; the merged `epoch` is the minimum across shards.
//!
//! Auto-compaction is disabled per shard — only the front's explicit
//! [`ShardedEngine::compact`], broadcast in queue order like any
//! update, folds overlays, so id spaces never diverge.

use crate::catalog::RuleCatalog;
use crate::engine::{
    EngineStats, IdentifyRequest, IdentifyResponse, QueryError, QueryOpts, RuleInfo, ServeConfig,
    ServeEngine, ShardAnswer, ShardQuery, UpdateError, UpdateReport,
};
use gpar_core::{ConfStats, Predicate};
use gpar_graph::{Graph, GraphUpdate, NodeId, NodeRemap, Vocab};
use gpar_obs::{HistKind, MetricsRegistry, MetricsSnapshot, Ts};
use gpar_partition::ShardPlan;
use parking_lot::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A deferred merge, run on the gather pool with its worker index (the
/// front registry shard it records into).
type GatherJob = Box<dyn FnOnce(usize) + Send + 'static>;

/// A scatter/gather serving front: one [`ServeEngine`] per shard plus a
/// small gather pool that merges per-shard ledger surfaces into global
/// answers. The public surface mirrors [`ServeEngine`]'s — blocking
/// calls, open-loop `submit_*_from` entry points, stats, metrics — so
/// callers (and the load harness) swap between the two freely.
pub struct ShardedEngine {
    shards: Vec<ServeEngine>,
    plan: ShardPlan,
    eta: f64,
    /// Front-side registry: end-to-end Identify/TopRules/Update
    /// latencies, recorded at merge completion (per-shard scatter
    /// latencies live in each shard's own registry as
    /// [`HistKind::ShardQueryLatency`]).
    obs: Arc<MetricsRegistry>,
    /// Serializes update broadcast so every shard's update queue sees
    /// the identical order (also held across `compact`, which must land
    /// at the same queue position everywhere).
    submit: Mutex<()>,
    gather_tx: Mutex<Option<Sender<GatherJob>>>,
    gather_handles: Vec<JoinHandle<()>>,
}

impl ShardedEngine {
    /// Plans the shards over `graph` (halo radius = the catalog's max
    /// rule radius, or `cfg.d` when set), spawns one [`ServeEngine`] per
    /// shard with ownership-restricted answer state, and starts the
    /// gather pool. `cfg.workers` is the *total* query-worker budget,
    /// divided across shards (at least one each).
    pub fn new(graph: Arc<Graph>, catalog: &RuleCatalog, cfg: ServeConfig, shards: usize) -> Self {
        let n = shards.max(1);
        let d = cfg
            .d
            .unwrap_or_else(|| {
                catalog.entries().iter().filter_map(|e| e.rule.radius()).max().unwrap_or(1)
            })
            .max(1);
        let plan = ShardPlan::build(&*graph, d, n);
        let eta = cfg.eta;
        let workers_per_shard = (cfg.workers.max(1) / n).max(1);
        let engines: Vec<ServeEngine> = (0..n)
            .map(|i| {
                ServeEngine::new(
                    graph.clone(),
                    catalog,
                    ServeConfig {
                        workers: workers_per_shard,
                        owned: Some(plan.spec(i)),
                        // Self-triggered compaction would let shards fold
                        // (and remap) at different queue positions and
                        // diverge; only the front's broadcast compact runs.
                        compact_pressure: f64::INFINITY,
                        compact_dead_fraction: f64::INFINITY,
                        ..cfg.clone()
                    },
                )
            })
            .collect();
        let gather_workers = n.clamp(2, 4);
        let obs = Arc::new(MetricsRegistry::new(gather_workers));
        let (tx, rx) = channel::<GatherJob>();
        let rx = Arc::new(Mutex::new(rx));
        let gather_handles = (0..gather_workers)
            .map(|w| {
                let rx = rx.clone();
                std::thread::spawn(move || loop {
                    // Hold the lock only across the blocking recv; the
                    // job itself runs unlocked so merges overlap.
                    let job = rx.lock().recv();
                    match job {
                        Ok(job) => job(w),
                        Err(_) => return,
                    }
                })
            })
            .collect();
        Self {
            shards: engines,
            plan,
            eta,
            obs,
            submit: Mutex::new(()),
            gather_tx: Mutex::new(Some(tx)),
            gather_handles,
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The sharding plan (owned ranges, halos, load balance diagnostics).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    fn spawn_gather(&self, f: impl FnOnce(usize) + Send + 'static) -> Result<(), ()> {
        match &*self.gather_tx.lock() {
            Some(tx) => tx.send(Box::new(f)).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Scatters one [`ShardQuery`] per shard. Every shard is queried —
    /// even for candidate-subset requests — because the merged statistics
    /// need every shard's counters (see the module docs). A submission
    /// error (shed/stopped shard) aborts the scatter; already-queued
    /// shard reads run harmlessly to completion.
    fn scatter(
        &self,
        predicate: Predicate,
        candidates: Option<Vec<NodeId>>,
        opts: QueryOpts,
        scheduled: Ts,
    ) -> Result<Vec<Receiver<Result<ShardAnswer, QueryError>>>, QueryError> {
        self.shards
            .iter()
            .map(|e| {
                e.submit_shard_query_from(
                    ShardQuery { predicate, candidates: candidates.clone(), opts },
                    scheduled,
                )
            })
            .collect()
    }

    /// `Σ_p(x, G, η)` over `candidates` (or all candidates), merged
    /// across shards: submits the scatter and blocks for the gathered
    /// answer.
    pub fn identify(
        &self,
        predicate: Predicate,
        candidates: Option<Vec<NodeId>>,
    ) -> Result<IdentifyResponse, QueryError> {
        self.identify_opts(predicate, candidates, QueryOpts::default())
    }

    /// [`ShardedEngine::identify`] with explicit deadline / staleness
    /// options (enforced independently by each shard; the merged answer
    /// is `stale` if any shard's part was).
    pub fn identify_opts(
        &self,
        predicate: Predicate,
        candidates: Option<Vec<NodeId>>,
        opts: QueryOpts,
    ) -> Result<IdentifyResponse, QueryError> {
        let rx =
            self.submit_identify_from(IdentifyRequest { predicate, candidates, opts }, Ts::now())?;
        rx.recv().map_err(|_| QueryError::ReplyLost)?
    }

    /// Open-loop identify: scatters to every shard without blocking and
    /// returns the reply channel; a gather worker merges the parts and
    /// records the end-to-end latency from `scheduled`.
    pub fn submit_identify_from(
        &self,
        req: IdentifyRequest,
        scheduled: Ts,
    ) -> Result<Receiver<Result<IdentifyResponse, QueryError>>, QueryError> {
        let parts = self.scatter(req.predicate, req.candidates, req.opts, scheduled)?;
        let (tx, rx) = channel();
        let eta = self.eta;
        let obs = self.obs.clone();
        self.spawn_gather(move |w| {
            let res = gather_parts(parts, QueryError::ReplyLost).map(|a| merge_identify(&a, eta));
            obs.record(w, HistKind::IdentifyLatency, scheduled.elapsed());
            let _ = tx.send(res);
        })
        .map_err(|_| QueryError::Stopped)?;
        Ok(rx)
    }

    /// The `k` highest-confidence rules for `predicate` with **global**
    /// exact confidence, merged from every shard's counters.
    pub fn top_rules(&self, predicate: Predicate, k: usize) -> Result<Vec<RuleInfo>, QueryError> {
        let rx = self.submit_top_rules_from(predicate, k, QueryOpts::default(), Ts::now())?;
        rx.recv().map_err(|_| QueryError::ReplyLost)?
    }

    /// Non-blocking [`ShardedEngine::top_rules`] with an external
    /// schedule timestamp.
    pub fn submit_top_rules_from(
        &self,
        predicate: Predicate,
        k: usize,
        opts: QueryOpts,
        scheduled: Ts,
    ) -> Result<Receiver<Result<Vec<RuleInfo>, QueryError>>, QueryError> {
        let parts = self.scatter(predicate, None, opts, scheduled)?;
        let (tx, rx) = channel();
        let eta = self.eta;
        let obs = self.obs.clone();
        self.spawn_gather(move |w| {
            let res =
                gather_parts(parts, QueryError::ReplyLost).map(|a| merge_top_rules(&a, k, eta));
            obs.record(w, HistKind::TopRulesLatency, scheduled.elapsed());
            let _ = tx.send(res);
        })
        .map_err(|_| QueryError::Stopped)?;
        Ok(rx)
    }

    /// Applies one update batch to **every** shard (same submit order
    /// everywhere) and blocks until each shard has published a
    /// generation containing it. The merged report carries the
    /// structural fields once (they are identical across shards) and
    /// sums the repair-side tallies.
    pub fn apply_update(&self, update: &GraphUpdate) -> Result<UpdateReport, UpdateError> {
        let rx = self.submit_update_from(update.clone(), Ts::now())?;
        rx.recv().map_err(|_| UpdateError::Stopped)?
    }

    /// Open-loop update broadcast. Submission only fails when the
    /// engine is stopping (per-shard update queues are unbounded), so a
    /// partial broadcast cannot arise in steady state.
    pub fn submit_update_from(
        &self,
        update: GraphUpdate,
        scheduled: Ts,
    ) -> Result<Receiver<Result<UpdateReport, UpdateError>>, UpdateError> {
        let parts: Vec<Receiver<Result<UpdateReport, UpdateError>>> = {
            let _order = self.submit.lock();
            self.shards
                .iter()
                .map(|e| e.submit_update_from(update.clone(), scheduled))
                .collect::<Result<_, _>>()?
        };
        let (tx, rx) = channel();
        let obs = self.obs.clone();
        self.spawn_gather(move |w| {
            let res = gather_parts(parts, UpdateError::Stopped).map(merge_updates);
            obs.record(w, HistKind::UpdateLatency, scheduled.elapsed());
            let _ = tx.send(res);
        })
        .map_err(|_| UpdateError::Stopped)?;
        Ok(rx)
    }

    /// Broadcast compaction: folds every shard's overlay at the same
    /// update-queue position (the broadcast lock is held across all
    /// shards, so no update can interleave). All shards fold identical
    /// graphs, hence produce identical remaps; shard 0's is returned.
    pub fn compact(&self) -> Option<Arc<NodeRemap>> {
        let _order = self.submit.lock();
        let mut first = None;
        for (i, e) in self.shards.iter().enumerate() {
            let remap = e.compact();
            if i == 0 {
                first = remap;
            }
        }
        first
    }

    /// Every id-remapping compaction published after `epoch` (shard 0's
    /// log; remaps are identical across shards).
    pub fn remaps_since(&self, epoch: u64) -> Vec<(u64, Arc<NodeRemap>)> {
        self.shards[0].remaps_since(epoch)
    }

    /// Predicates this engine can serve (identical across shards: center
    /// filtering never drops a predicate group).
    pub fn predicates(&self) -> Vec<Predicate> {
        self.shards[0].predicates()
    }

    /// The shared label vocabulary.
    pub fn vocab(&self) -> Arc<Vocab> {
        self.shards[0].vocab()
    }

    /// Current serving-graph size as `(nodes, edges)` — shard 0's view;
    /// all shards hold the same graph.
    pub fn graph_size(&self) -> (usize, usize) {
        self.shards[0].graph_size()
    }

    /// Write-pipeline counters from shard 0, the representative replica:
    /// every shard accepts the same update stream, so `updates`,
    /// `compactions`, and the coalescing invariant read the same
    /// everywhere (though `snapshot_publishes` may differ — coalescing
    /// windows are timing-dependent per shard). Query-side counters
    /// count shard 0's scatter reads.
    pub fn stats(&self) -> EngineStats {
        self.shards[0].stats()
    }

    /// Shard `i`'s own counters (exact for that replica).
    pub fn shard_stats(&self, shard: usize) -> EngineStats {
        self.shards[shard].stats()
    }

    /// Shard `i`'s full metrics snapshot ([`HistKind::ShardQueryLatency`]
    /// holds its scatter-read latencies).
    pub fn shard_metrics(&self, shard: usize) -> MetricsSnapshot {
        self.shards[shard].metrics()
    }

    /// The front's own registry: end-to-end Identify / TopRules / Update
    /// latencies measured at merge completion.
    pub fn front_metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// Grand-total snapshot: the front registry merged with every
    /// shard's. Counters and gauges are sums over all replicas; note
    /// that [`HistKind::UpdateLatency`] then mixes the front's
    /// end-to-end samples with each shard's per-replica publish
    /// latencies (one + `shards` samples per logical update) — use
    /// [`ShardedEngine::front_metrics`] / [`ShardedEngine::shard_metrics`]
    /// when the distinction matters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let front = self.obs.snapshot();
        let per: Vec<MetricsSnapshot> = self.shards.iter().map(ServeEngine::metrics).collect();
        MetricsSnapshot::merged(std::iter::once(&front).chain(per.iter()))
    }

    /// Stops every shard engine (queued jobs get typed errors, as in
    /// [`ServeEngine::stop`]). Idempotent; also invoked by `Drop`.
    pub fn stop(&self) {
        for e in &self.shards {
            e.stop();
        }
        // Close the gather pool's intake; workers drain queued merges
        // (their parts answer promptly once the shards are stopped) and
        // exit on the closed channel.
        self.gather_tx.lock().take();
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        self.stop();
        for h in self.gather_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Collects every shard's part, failing with the **first** error in
/// shard order (deterministic under races: shard order, not arrival
/// order). `lost` is the error for a reply channel that died without an
/// answer.
fn gather_parts<T, E: Clone>(parts: Vec<Receiver<Result<T, E>>>, lost: E) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(parts.len());
    for rx in parts {
        match rx.recv() {
            Ok(Ok(part)) => out.push(part),
            Ok(Err(e)) => return Err(e),
            Err(_) => return Err(lost.clone()),
        }
    }
    Ok(out)
}

/// Sums per-shard counters into exact global per-rule [`ConfStats`].
/// Rules are aligned positionally: every shard's group was built from
/// the same catalog against the same graph, so the rule vectors are
/// identical (same `Arc`s, same order).
fn merge_stats(answers: &[ShardAnswer]) -> Vec<ConfStats> {
    let first = &answers[0];
    let n_rules = first.rules.len();
    let mut per_rule = vec![(0u64, 0u64, 0u64); n_rules];
    let (mut supp_q, mut supp_qbar) = (0u64, 0u64);
    for a in answers {
        debug_assert_eq!(a.rules.len(), n_rules, "shards disagree on the rule group");
        debug_assert!(
            a.rules.iter().zip(&first.rules).all(|(x, y)| Arc::ptr_eq(x, y)),
            "shards disagree on rule identity/order"
        );
        supp_q += a.supp_q;
        supp_qbar += a.supp_qbar;
        for (slot, &(r, qq, qa)) in per_rule.iter_mut().zip(&a.per_rule) {
            slot.0 += r;
            slot.1 += qq;
            slot.2 += qa;
        }
    }
    per_rule
        .iter()
        .map(|&(supp_r, supp_q_qbar, supp_q_ante)| ConfStats {
            supp_r,
            supp_q_ante,
            supp_q,
            supp_qbar,
            supp_q_qbar,
        })
        .collect()
}

/// Merges shard parts into the global identify answer: global η mask
/// from the summed counters, then the sorted deduplicated union of the
/// active rules' member lists.
fn merge_identify(answers: &[ShardAnswer], eta: f64) -> IdentifyResponse {
    let stats = merge_stats(answers);
    let active: Vec<bool> = stats.iter().map(|s| s.conf().at_least(eta)).collect();
    let mut customers: Vec<NodeId> = Vec::new();
    let (mut evaluated, mut pruned) = (0usize, 0usize);
    let (mut warmed, mut stale) = (false, false);
    let mut epoch = u64::MAX;
    for a in answers {
        for (members, &act) in a.q_members.iter().zip(&active) {
            if act {
                customers.extend_from_slice(members);
            }
        }
        evaluated += a.evaluated;
        pruned += a.pruned;
        warmed |= a.warmed;
        stale |= a.stale;
        epoch = epoch.min(a.epoch);
    }
    // A center can match several active rules (within its one owning
    // shard), so the union needs a dedup even though shards are disjoint.
    customers.sort_unstable();
    customers.dedup();
    IdentifyResponse { customers, evaluated, pruned, warmed, epoch, stale }
}

/// Merges shard parts into the global top-k: exact global confidence
/// per rule, ranked with the same comparator as the single engine.
fn merge_top_rules(answers: &[ShardAnswer], k: usize, eta: f64) -> Vec<RuleInfo> {
    let stats = merge_stats(answers);
    let mut out: Vec<RuleInfo> = answers[0]
        .rules
        .iter()
        .zip(&stats)
        .map(|(rule, &stats)| RuleInfo {
            rule: rule.clone(),
            confidence: stats.conf(),
            stats,
            active: stats.conf().at_least(eta),
        })
        .collect();
    out.sort_by(|a, b| {
        b.confidence
            .ranking_value()
            .total_cmp(&a.confidence.ranking_value())
            .then(b.stats.supp_r.cmp(&a.stats.supp_r))
    });
    out.truncate(k);
    out
}

/// Merges per-shard update reports: the structural fields (assigned ids,
/// touched set, effective edge/node deltas) are identical across shards
/// and taken from the first; repair tallies are summed and evictions
/// concatenated (per-shard caches are disjoint by center ownership).
fn merge_updates(reports: Vec<UpdateReport>) -> UpdateReport {
    let mut it = reports.into_iter();
    let mut out = it.next().expect("at least one shard");
    for r in it {
        debug_assert_eq!(out.assigned, r.assigned, "shards disagree on assigned ids");
        debug_assert_eq!(out.touched, r.touched, "shards disagree on the touched set");
        out.evicted.extend(r.evicted);
        out.reevaluated += r.reevaluated;
        out.added_centers += r.added_centers;
        out.removed_centers += r.removed_centers;
        out.rebuilt_groups += r.rebuilt_groups;
    }
    out.evicted.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::Gpar;
    use gpar_graph::GraphBuilder;
    use gpar_pattern::PatternBuilder;

    /// The doc-example graph scaled up: `likes` customers, of which
    /// `visits` already visit — spread across the id space so every
    /// shard owns some centers.
    fn fixture(likes: u32, visits: u32) -> (Arc<Graph>, RuleCatalog, Predicate) {
        let vocab = Vocab::new();
        let (cust, rest) = (vocab.intern("cust"), vocab.intern("rest"));
        let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        let r = b.add_node(rest);
        let mut centers = Vec::new();
        for _ in 0..likes {
            centers.push(b.add_node(cust));
        }
        for &c in &centers {
            b.add_edge(c, r, like);
        }
        for &c in centers.iter().take(visits as usize) {
            b.add_edge(c, r, visit);
        }
        let g = Arc::new(b.build());
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let rule = Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap();
        let pred = *rule.predicate();
        let mut catalog = RuleCatalog::new(vocab);
        catalog.insert(Arc::new(rule), ConfStats::default());
        (g, catalog, pred)
    }

    fn cfg() -> ServeConfig {
        ServeConfig { eta: 0.0, workers: 2, ..Default::default() }
    }

    #[test]
    fn sharded_identify_matches_single_engine() {
        let (g, catalog, pred) = fixture(12, 5);
        let single = ServeEngine::new(g.clone(), &catalog, cfg());
        let want = single.identify(pred, None).unwrap();
        for shards in [1usize, 2, 3, 4] {
            let sharded = ShardedEngine::new(g.clone(), &catalog, cfg(), shards);
            let got = sharded.identify(pred, None).unwrap();
            assert_eq!(got.customers, want.customers, "{shards} shards");
            assert_eq!(got.evaluated, want.evaluated, "{shards} shards");
        }
    }

    #[test]
    fn sharded_top_rules_reports_global_confidence() {
        let (g, catalog, pred) = fixture(12, 5);
        let single = ServeEngine::new(g.clone(), &catalog, cfg());
        let want = single.top_rules(pred, 8).unwrap();
        let sharded = ShardedEngine::new(g, &catalog, cfg(), 3);
        let got = sharded.top_rules(pred, 8).unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!(Arc::ptr_eq(&g.rule, &w.rule));
            assert_eq!(g.stats, w.stats, "counters must sum to the global counts");
            assert_eq!(g.confidence, w.confidence);
            assert_eq!(g.active, w.active);
        }
    }

    #[test]
    fn broadcast_update_keeps_shards_equal_to_single() {
        let (g, catalog, pred) = fixture(10, 4);
        let single = ServeEngine::new(g.clone(), &catalog, cfg());
        let sharded = ShardedEngine::new(g.clone(), &catalog, cfg(), 2);
        // Warm both, then flip one liker into a visitor (center 3 likes
        // and now visits: it leaves the answer set).
        single.identify(pred, None).unwrap();
        sharded.identify(pred, None).unwrap();
        let vocab = sharded.vocab();
        let visit = vocab.intern("visit");
        let mut up = GraphUpdate::default();
        up.new_edges.push((NodeId(6), NodeId(0), visit));
        let a = single.apply_update(&up).unwrap();
        let b = sharded.apply_update(&up).unwrap();
        assert_eq!(a.touched, b.touched);
        assert_eq!(a.added_edges, b.added_edges);
        let want = single.identify(pred, None).unwrap();
        let got = sharded.identify(pred, None).unwrap();
        assert_eq!(got.customers, want.customers);
        assert_eq!(got.stale, want.stale);
    }

    #[test]
    #[cfg_attr(feature = "obs-off", ignore = "latency recording is compiled out")]
    fn front_records_end_to_end_latency() {
        let (g, catalog, pred) = fixture(8, 3);
        let sharded = ShardedEngine::new(g, &catalog, cfg(), 2);
        sharded.identify(pred, None).unwrap();
        sharded.top_rules(pred, 4).unwrap();
        let front = sharded.front_metrics();
        assert_eq!(front.hist(HistKind::IdentifyLatency).count(), 1);
        assert_eq!(front.hist(HistKind::TopRulesLatency).count(), 1);
        // Shards record their scatter reads, never end-to-end kinds.
        let s0 = sharded.shard_metrics(0);
        assert_eq!(s0.hist(HistKind::IdentifyLatency).count(), 0);
        assert!(s0.hist(HistKind::ShardQueryLatency).count() >= 2);
    }

    #[test]
    fn stop_fails_new_queries_without_hanging() {
        let (g, catalog, pred) = fixture(6, 2);
        let sharded = ShardedEngine::new(g, &catalog, cfg(), 2);
        sharded.stop();
        assert!(matches!(
            sharded.identify(pred, None),
            Err(QueryError::Stopped) | Err(QueryError::ReplyLost)
        ));
    }
}
