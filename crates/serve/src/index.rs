//! The candidate index: per consequent predicate, everything a query
//! needs that does **not** depend on the query itself.
//!
//! Built once per `(graph, catalog)` pair, the index holds for each
//! predicate `q`:
//!
//! * the rule group (catalog entries pertaining to `q`), with rules whose
//!   **antecedent label signature** cannot occur in the graph marked
//!   inactive up front — a rule demanding a node or edge label the graph
//!   simply does not contain matches nowhere, so queries never touch it;
//! * a pre-built [`SharingPlan`] (the `|Σ|²` subsumption tests are paid
//!   once per catalog version, not per request);
//! * the candidate centers `L` (nodes satisfying `x`'s condition) with,
//!   optionally, pre-computed k-hop [`Sketch`]es so candidates that cannot
//!   cover *any* antecedent's demand at `x` are pruned without search
//!   (§5.2's guidance, hoisted from per-query to index-build time);
//! * the evaluation radius `d` (max rule radius, as EIP derives it).

use crate::catalog::RuleCatalog;
use gpar_core::{Gpar, Predicate};
use gpar_eip::{antecedent_sketches, derive_radius, MatchOpts, SharingPlan};
use gpar_graph::{FxHashMap, GraphView, Label, NodeId, Sketch};
use gpar_pattern::{pattern_sketch, NodeCond, Pattern};
use rustc_hash::FxHashMap as Map;
use std::sync::Arc;

/// The sorted, deduplicated node- and edge-label demand of an antecedent.
/// A necessary condition for `Q(x, G) ≠ ∅`: every concrete label `Q`
/// mentions must exist in `G` (wildcards impose no demand).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSignature {
    /// Concrete node labels the antecedent requires.
    pub node_labels: Vec<Label>,
    /// Concrete edge labels the antecedent requires.
    pub edge_labels: Vec<Label>,
}

impl LabelSignature {
    /// Extracts the signature of a pattern.
    pub fn of_pattern(p: &Pattern) -> Self {
        let mut node_labels: Vec<Label> = p.conds().iter().filter_map(|c| c.label()).collect();
        node_labels.sort_unstable();
        node_labels.dedup();
        let mut edge_labels: Vec<Label> = p
            .edges()
            .iter()
            .filter_map(|e| match e.cond {
                gpar_pattern::EdgeCond::Label(l) => Some(l),
                gpar_pattern::EdgeCond::Any => None,
            })
            .collect();
        edge_labels.sort_unstable();
        edge_labels.dedup();
        Self { node_labels, edge_labels }
    }

    /// Whether every demanded label occurs in the histograms (a sound
    /// satisfiability prefilter: `false` ⇒ the pattern matches nowhere).
    pub fn satisfiable_in(
        &self,
        node_hist: &FxHashMap<Label, u64>,
        edge_hist: &FxHashMap<Label, u64>,
    ) -> bool {
        self.node_labels.iter().all(|l| node_hist.contains_key(l))
            && self.edge_labels.iter().all(|l| edge_hist.contains_key(l))
    }
}

/// Everything precomputed for one consequent predicate.
#[derive(Debug, Clone)]
pub struct PredicateGroup {
    /// The predicate `q(x, y)` this group serves.
    pub predicate: Predicate,
    /// Catalog entry indices of the *active* rules, aligned with
    /// [`PredicateGroup::rules`].
    pub entry_indices: Vec<usize>,
    /// Active rules (owned clones, in catalog order) — the Σ every query
    /// for this predicate evaluates.
    pub rules: Vec<Gpar>,
    /// The same rules as shared handles (aligned with
    /// [`PredicateGroup::rules`]) — query answers clone these `Arc`s
    /// instead of deep-copying patterns.
    pub rule_arcs: Vec<Arc<Gpar>>,
    /// Rules dropped because their label signature cannot occur in the
    /// graph.
    pub inactive_rules: usize,
    /// Pre-built common-subpattern sharing plan over [`PredicateGroup::rules`].
    pub plan: SharingPlan,
    /// Evaluation radius: `max(r(P_R, x), r(Q, x))` over the active rules
    /// (exactly EIP's derivation).
    pub d: u32,
    /// Candidate centers `L` (nodes satisfying `x`'s condition), id order
    /// — sorted, so membership of query-supplied ids is a binary search.
    pub centers: Vec<NodeId>,
    /// Per active rule: the antecedent's sketch at `x`, capped at depth
    /// `d` (for the index-level candidate prefilter).
    pub q_sketches: Arc<Vec<Sketch>>,
    /// Per active rule: the antecedent sketches the *evaluator* uses
    /// (depth from the engine's `MatchOpts`; shares the allocation with
    /// [`PredicateGroup::q_sketches`] when the depths coincide).
    pub eval_sketches: Arc<Vec<Sketch>>,
    /// Per center (aligned with `centers`): its k-hop sketch, if sketch
    /// pruning is enabled.
    pub center_sketches: Option<Vec<Sketch>>,
    /// Effective center-sketch depth (`min(cfg.sketch_k, d)`), kept so
    /// incremental maintenance rebuilds sketches at the same depth.
    pub sketch_k: u32,
}

impl PredicateGroup {
    /// Whether the center at `centers[i]` can possibly match *some*
    /// active antecedent (sound: `false` ⇒ member of no `Q(x, G)`).
    pub fn center_may_match(&self, i: usize) -> bool {
        match &self.center_sketches {
            None => true,
            Some(sk) => self.q_sketches.iter().any(|q| sk[i].covers(q)),
        }
    }

    /// Position of `c` in the sorted center list, if it is a candidate.
    #[inline]
    pub fn center_pos(&self, c: NodeId) -> Option<usize> {
        self.centers.binary_search(&c).ok()
    }

    /// Admits `c` as a candidate center (no-op if already present),
    /// keeping `centers` sorted and the sketch column aligned. Returns
    /// whether the center was new.
    pub fn add_center<G: GraphView + ?Sized>(&mut self, g: &G, c: NodeId) -> bool {
        match self.centers.binary_search(&c) {
            Ok(_) => false,
            Err(pos) => {
                self.centers.insert(pos, c);
                if let Some(sk) = &mut self.center_sketches {
                    sk.insert(pos, Sketch::build(g, c, self.sketch_k));
                }
                true
            }
        }
    }

    /// Retires `c` as a candidate center (after a relabel away from `x`'s
    /// condition). Returns whether it was present.
    pub fn remove_center(&mut self, c: NodeId) -> bool {
        match self.centers.binary_search(&c) {
            Ok(pos) => {
                self.centers.remove(pos);
                if let Some(sk) = &mut self.center_sketches {
                    sk.remove(pos);
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Recomputes the stored sketch of `c` against the current graph
    /// (called for centers within the invalidation ball of an update).
    pub fn refresh_center_sketch<G: GraphView + ?Sized>(&mut self, g: &G, c: NodeId) {
        if let Ok(pos) = self.centers.binary_search(&c) {
            let k = self.sketch_k;
            if let Some(sk) = &mut self.center_sketches {
                sk[pos] = Sketch::build(g, c, k);
            }
        }
    }

    /// Drops every center failing `keep`, keeping the sketch column
    /// aligned. The sharded engine uses this to restrict a group (built
    /// or rebuilt against the full graph) to the shard's owned centers.
    pub fn retain_centers(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        let mask: Vec<bool> = self.centers.iter().map(|&c| keep(c)).collect();
        let mut it = mask.iter();
        self.centers.retain(|_| *it.next().expect("mask aligned"));
        if let Some(sk) = &mut self.center_sketches {
            let mut it = mask.iter();
            sk.retain(|_| *it.next().expect("mask aligned"));
        }
    }

    /// Translates the center list through a compaction [`NodeRemap`]. All
    /// centers must survive (removed nodes are retired from every group
    /// when the removal batch is applied, before any compaction), and the
    /// remap is monotone, so the list stays sorted and the sketch column
    /// stays aligned.
    pub fn remap_centers(&mut self, remap: &gpar_graph::NodeRemap) {
        for c in &mut self.centers {
            *c = remap.get(*c).expect("removed centers are retired at removal time");
        }
        debug_assert!(self.centers.is_sorted(), "monotone remap preserves order");
    }
}

/// The full index: one [`PredicateGroup`] per predicate in the catalog
/// with at least one rule valid for the graph; predicates whose every
/// rule is unsatisfiable are parked as *dormant* and revisited when an
/// update introduces a previously-absent label.
#[derive(Debug, Default, Clone)]
pub struct CandidateIndex {
    // Groups are `Arc`-wrapped so cloning the index for the next
    // copy-on-write snapshot costs one refcount bump per predicate;
    // incremental maintenance unshares only the groups it actually
    // touches (`Arc::make_mut`).
    groups: Map<Predicate, Arc<PredicateGroup>>,
    dormant: Vec<Predicate>,
}

impl CandidateIndex {
    /// Builds the index for `graph` over every predicate of `catalog`.
    ///
    /// `sketch_k` enables candidate sketch pruning with that depth
    /// (`0` disables it — build time drops, per-query work rises);
    /// `d_override` pins the evaluation radius instead of deriving it;
    /// `eval_opts` is the engine's per-candidate matching configuration,
    /// used to pre-build the evaluator-side antecedent sketches.
    pub fn build<G: GraphView + ?Sized>(
        graph: &G,
        catalog: &RuleCatalog,
        sketch_k: u32,
        d_override: Option<u32>,
        eval_opts: &MatchOpts,
    ) -> Self {
        let node_hist = graph.node_histogram();
        let edge_hist = graph.edge_histogram();
        let mut idx = Self::default();
        for pred in catalog.predicates() {
            match build_group(
                graph, catalog, pred, sketch_k, d_override, eval_opts, &node_hist, &edge_hist,
            ) {
                Some(g) => {
                    idx.groups.insert(*pred, Arc::new(g));
                }
                None => idx.dormant.push(*pred),
            }
        }
        idx
    }

    /// The group serving `pred`, if any rule pertains to it.
    pub fn group(&self, pred: &Predicate) -> Option<&PredicateGroup> {
        self.groups.get(pred).map(|g| g.as_ref())
    }

    /// Mutable access to the group serving `pred` (incremental
    /// maintenance on the writer's private next-snapshot copy). Unshares
    /// the group if a published snapshot still holds it.
    pub fn group_mut(&mut self, pred: &Predicate) -> Option<&mut PredicateGroup> {
        self.groups.get_mut(pred).map(Arc::make_mut)
    }

    /// Number of predicate groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the index serves no predicate.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterator over the groups.
    pub fn groups(&self) -> impl Iterator<Item = &PredicateGroup> {
        self.groups.values().map(|g| g.as_ref())
    }

    /// Predicates cataloged but currently unservable (every rule's label
    /// signature is unsatisfiable in the graph).
    pub fn dormant(&self) -> &[Predicate] {
        &self.dormant
    }

    /// Restricts every group to the centers passing `keep` (see
    /// [`PredicateGroup::retain_centers`]) — the sharded engine's
    /// owned-center filter.
    pub fn retain_centers(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        for g in self.groups.values_mut() {
            Arc::make_mut(g).retain_centers(&mut keep);
        }
    }

    /// Translates every group's center list through a compaction
    /// [`NodeRemap`] (see [`PredicateGroup::remap_centers`]).
    pub fn remap_ids(&mut self, remap: &gpar_graph::NodeRemap) {
        for g in self.groups.values_mut() {
            Arc::make_mut(g).remap_centers(remap);
        }
    }

    /// Rebuilds one predicate's group from scratch against the current
    /// graph (the rule-activation slow path: an update introduced a label
    /// that may satisfy a previously-deactivated rule). Returns `true`
    /// when the set of active rules actually changed — callers must then
    /// drop any warmed state for the predicate.
    #[allow(clippy::too_many_arguments)]
    pub fn rebuild_group<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        catalog: &RuleCatalog,
        pred: &Predicate,
        sketch_k: u32,
        d_override: Option<u32>,
        eval_opts: &MatchOpts,
        node_hist: &FxHashMap<Label, u64>,
        edge_hist: &FxHashMap<Label, u64>,
    ) -> bool {
        let before: Option<Vec<usize>> = self.groups.get(pred).map(|g| g.entry_indices.clone());
        let rebuilt = build_group(
            graph, catalog, pred, sketch_k, d_override, eval_opts, node_hist, edge_hist,
        );
        let after: Option<Vec<usize>> = rebuilt.as_ref().map(|g| g.entry_indices.clone());
        if before == after {
            return false; // activation unchanged; keep the maintained group
        }
        match rebuilt {
            Some(g) => {
                self.dormant.retain(|p| p != pred);
                self.groups.insert(*pred, Arc::new(g));
            }
            None => {
                if self.groups.remove(pred).is_some() || !self.dormant.contains(pred) {
                    self.dormant.push(*pred);
                }
            }
        }
        true
    }
}

/// Builds one predicate's group, or `None` when no rule is satisfiable.
#[allow(clippy::too_many_arguments)]
fn build_group<G: GraphView + ?Sized>(
    graph: &G,
    catalog: &RuleCatalog,
    pred: &Predicate,
    sketch_k: u32,
    d_override: Option<u32>,
    eval_opts: &MatchOpts,
    node_hist: &FxHashMap<Label, u64>,
    edge_hist: &FxHashMap<Label, u64>,
) -> Option<PredicateGroup> {
    let mut entry_indices = Vec::new();
    let mut rules = Vec::new();
    let mut rule_arcs = Vec::new();
    let mut inactive = 0usize;
    for &i in catalog.indices_for(pred) {
        let e = &catalog.entries()[i];
        let sig = LabelSignature::of_pattern(e.rule.antecedent());
        if sig.satisfiable_in(node_hist, edge_hist) {
            entry_indices.push(i);
            rules.push((*e.rule).clone());
            rule_arcs.push(e.rule.clone());
        } else {
            inactive += 1;
        }
    }
    if rules.is_empty() {
        return None;
    }
    let plan = SharingPlan::build(&rules);
    let d = d_override.unwrap_or_else(|| derive_radius(&rules));
    let centers: Vec<NodeId> = match pred.x_cond {
        NodeCond::Label(l) => graph.label_members(l),
        NodeCond::Any => graph.nodes().collect(),
    };
    debug_assert!(centers.is_sorted(), "centers must stay binary-searchable");
    let eval_sketches = antecedent_sketches(&rules, eval_opts);
    // Index-side sketch depth must not exceed the evaluation
    // radius: center sketches are built on the full graph, site
    // evaluation sees the d-ball, and the two agree exactly on
    // the first min(k, d) hops.
    let k = sketch_k.min(d);
    let (q_sketches, center_sketches) = if k > 0 {
        let eval_depth = eval_sketches.first().map_or(0, |s| s.depth() as u32);
        let qs = if eval_depth == k {
            // Same depth: the prefilter shares the evaluator's set.
            eval_sketches.clone()
        } else {
            Arc::new(
                rules
                    .iter()
                    .map(|r| pattern_sketch(r.antecedent(), r.antecedent().x(), k))
                    .collect::<Vec<Sketch>>(),
            )
        };
        let cs: Vec<Sketch> = centers.iter().map(|&c| Sketch::build(graph, c, k)).collect();
        (qs, Some(cs))
    } else {
        (Arc::new(Vec::new()), None)
    };
    Some(PredicateGroup {
        predicate: *pred,
        entry_indices,
        rules,
        rule_arcs,
        inactive_rules: inactive,
        plan,
        d,
        centers,
        q_sketches,
        eval_sketches,
        center_sketches,
        sketch_k: k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::ConfStats;
    use gpar_graph::{Graph, GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    fn test_opts() -> MatchOpts {
        MatchOpts::for_algorithm(gpar_eip::EipAlgorithm::Match)
    }

    fn setup() -> (Graph, RuleCatalog, Predicate) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
        let ghost = vocab.intern("ghost_label");
        let mut b = GraphBuilder::new(vocab.clone());
        for _ in 0..4 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
            b.add_edge(c, r, visit);
        }
        let g = b.build();

        let mut cat = RuleCatalog::new(vocab.clone());
        let mk = |via: Label, q: Label| {
            let mut pb = PatternBuilder::new(vocab.clone());
            let x = pb.node(cust);
            let y = pb.node(rest);
            pb.edge(x, y, via);
            Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), q).unwrap())
        };
        let r1 = mk(like, visit);
        let pred = *r1.predicate();
        cat.insert(r1, ConfStats::default());
        // This rule demands an edge label absent from the graph.
        cat.insert(mk(ghost, visit), ConfStats::default());
        (g, cat, pred)
    }

    #[test]
    fn signature_pruning_deactivates_unsatisfiable_rules() {
        let (g, cat, pred) = setup();
        let idx = CandidateIndex::build(&g, &cat, 2, None, &test_opts());
        let grp = idx.group(&pred).expect("group exists");
        assert_eq!(grp.rules.len(), 1, "ghost rule must be inactive");
        assert_eq!(grp.inactive_rules, 1);
        assert_eq!(grp.entry_indices, vec![0]);
    }

    #[test]
    fn centers_are_the_x_condition_matches() {
        let (g, cat, pred) = setup();
        let idx = CandidateIndex::build(&g, &cat, 0, None, &test_opts());
        let grp = idx.group(&pred).unwrap();
        assert_eq!(grp.centers.len(), 4, "four cust nodes");
        assert!(grp.center_sketches.is_none(), "k = 0 disables sketches");
        assert!(grp.center_may_match(0), "no sketches ⇒ nobody pruned");
        assert!(grp.centers.is_sorted(), "centers must be binary-searchable");
    }

    #[test]
    fn sketch_pruning_is_sound_on_matching_centers() {
        let (g, cat, pred) = setup();
        let idx = CandidateIndex::build(&g, &cat, 2, None, &test_opts());
        let grp = idx.group(&pred).unwrap();
        let sk = grp.center_sketches.as_ref().unwrap();
        assert_eq!(sk.len(), grp.centers.len());
        // Every cust here has a like-edge to a rest: none may be pruned.
        for i in 0..grp.centers.len() {
            assert!(grp.center_may_match(i), "center {i} wrongly pruned");
        }
    }

    #[test]
    fn derived_radius_covers_antecedent_and_rule() {
        let (g, cat, pred) = setup();
        let idx = CandidateIndex::build(&g, &cat, 2, None, &test_opts());
        assert_eq!(idx.group(&pred).unwrap().d, 1);
        let idx = CandidateIndex::build(&g, &cat, 2, Some(3), &test_opts());
        assert_eq!(idx.group(&pred).unwrap().d, 3);
    }
}
