//! The batched query executor: a fixed worker pool serving `identify` and
//! `top_rules` requests concurrently over one graph + catalog, with live
//! graph updates.
//!
//! ## Execution model
//!
//! * [`ServeEngine::new`] builds the [`CandidateIndex`] and spawns
//!   `workers` OS threads that all drain one shared
//!   [`gpar_exec::Injector`] — the same runtime primitive family the
//!   mining and EIP layers execute on. Any idle worker, not just a lock
//!   holder, grabs the next query; dropping the engine closes the
//!   injector and joins the pool.
//! * The first query touching a predicate **warms** it: every candidate
//!   center is evaluated once, assembling the exact global
//!   [`ConfStats`]/confidence per rule — the same counts
//!   [`gpar_eip::identify`] produces, so the η-gating of rules is
//!   *identical* to a direct EIP run on this graph. The full-`L` scan
//!   fans out over a nested [`gpar_exec::Executor`] (one chunk-task
//!   queue under the pool worker that took the cold query), and the
//!   per-center records it folds are order-independent, so warm state is
//!   bit-identical at any worker count.
//! * Subsequent `identify(pred, candidates?)` requests re-evaluate only
//!   the requested candidates' antecedent memberships, with d-ball
//!   extraction — the dominant per-candidate cost — served from a shared
//!   LRU cache ([`crate::cache::LruCache`]).
//! * Rule-group state built at index time is reused across the batch:
//!   the [`gpar_eip::SharingPlan`] is cloned (two small `Vec`s) into each
//!   request's [`CandidateEvaluator`] instead of re-deriving the `|Σ|²`
//!   subsumption tests.
//!
//! ## Live updates: lock-free snapshots + a coalescing write pipeline
//!
//! The serving graph is a [`DeltaGraph`] overlay published as immutable
//! **epoch snapshots** behind an [`arc_swap::ArcSwap`]: a query grabs the
//! current [`EngineView`] `Arc` with one lock-free atomic load and
//! evaluates end to end against that frozen snapshot — readers never
//! block on writers, and a snapshot stays alive (graph, index, warm
//! ledgers, d-ball cache) until its last in-flight query drops it.
//!
//! All mutation flows through one **writer thread**.
//! [`ServeEngine::apply_update`] enqueues the batch and blocks for its
//! outcome (read-your-writes);
//! [`ServeEngine::submit_update_from`] enqueues without blocking. The
//! writer drains the queue opportunistically — plus an optional bounded
//! window ([`ServeConfig::coalesce_window`]) — and folds a burst of
//! batches into one *net* generation with [`gpar_graph::Coalescer`]:
//! delete-then-reinsert cancels, relabel chains collapse, inserts onto a
//! node the burst itself removes vanish. The net batch is applied to a
//! private copy-on-write successor of the published snapshot (the
//! overlay's `Arc`-shared logs make the clone a few refcount bumps), the
//! repair below runs off to the side, and the generation becomes visible
//! with **one pointer swap + epoch bump**. A failure anywhere before the
//! swap — including injected faults — publishes nothing: every batch in
//! the generation fails typed, all-or-nothing.
//!
//! The repair itself exploits the paper's locality property (§4.2): a
//! radius-`d` evaluation at center `v_x` reads nothing outside
//! `G_d(v_x)`, so an update touching nodes `T` can only affect centers
//! whose d-ball reaches `T`.
//!
//! **The union-ball rule.** For monotone inserts a post-update BFS from
//! `T` suffices: inserts only shrink distances, so any center whose ball
//! gained something is within post-update distance `d` of `T`. Deletion is
//! non-monotone — cutting an edge can *grow* distances, pushing a center
//! out of reach of `T` on the post-update graph even though its ball lost
//! content. The engine therefore runs the multi-source BFS on **both** the
//! pre-update and the post-update view and invalidates the *union* ball
//! (per-node minimum distance): a ball that lost an element reached it
//! pre-update, a ball that gained one reaches it post-update. Concretely:
//!
//! 1. evicts exactly the `(center, d)` d-ball cache entries inside the
//!    union ball,
//! 2. repairs each predicate's candidate list and center sketches
//!    incrementally (new/relabeled centers in, relabeled-away **and
//!    removed** centers out, in-ball sketches recomputed),
//! 3. re-evaluates only the in-ball + new centers of every *warmed*
//!    predicate, patching the per-rule [`ConfStats`] by subtracting each
//!    re-evaluated center's old contribution and adding its new one —
//!    removed centers are subtracted from the outcome ledger without
//!    replacement, so a rule whose last supporting center vanished drops
//!    below η and deactivates (the mirror of insert-side activation), and
//! 4. falls back to a full group rebuild only when the update flips a
//!    label between present and absent, which can (de)activate a
//!    signature-gated rule in either direction — deleting the last node
//!    of a label takes this path exactly like inserting the first one.
//!
//! [`ServeEngine::compact`] folds the overlay back into a fresh CSR,
//! published as its own snapshot generation. Without node removals ids
//! are stable and caches, index and warm state all survive untouched.
//! With removals the id space is re-densified: compaction returns the
//! [`NodeRemap`], the candidate index and warm ledgers are translated
//! (the remap is monotone, so sorted structures stay sorted), and the
//! d-ball cache — whose values embed old ids — is flushed. Compaction is
//! also **self-triggering**: after each published generation the writer
//! measures overlay pressure (delta edges + tombstones + relabels + dead
//! slots against the base) and compacts when it crosses
//! [`ServeConfig::compact_pressure`] — taking the id-remapping form only
//! when the dead-slot fraction alone exceeds
//! [`ServeConfig::compact_dead_fraction`]. Every remap is logged with
//! the epoch that published it; callers holding node ids resync via
//! [`ServeEngine::remaps_since`].
//!
//! ## Consistency contract
//!
//! For any predicate `p` in the catalog and any candidate subset `C`,
//! after any sequence of updates:
//! `identify(p, C).customers = C ∩ identify_eip(G', Σ_p, η).customers`
//! where `G'` is the current (post-update) graph — i.e. incremental
//! answers are those of a from-scratch rebuild. The differential property
//! suites (`tests/prop_delta_equivalence.rs`,
//! `tests/prop_invalidation_scope.rs`) pin this down.

use crate::cache::{CacheStats, LruCache};
use crate::catalog::RuleCatalog;
use crate::clock::UpdateClock;
use crate::index::{CandidateIndex, PredicateGroup};
use arc_swap::ArcSwap;
use gpar_core::{classify, ConfStats, Confidence, Gpar, LcwaClass, Predicate};
use gpar_eip::{CandidateEvaluator, EipAlgorithm, MatchOpts};
use gpar_exec::{Executor, Injector, PopTimeout, Priority, PushError};
use gpar_graph::{
    multi_source_distances, Coalescer, DeltaGraph, FxHashMap, Graph, GraphUpdate, GraphView, Label,
    NeighborhoodScratch, NodeId, NodeRemap, UpdateInvalid, Vocab,
};
use gpar_obs::{
    Counter, Gauge, HistKind, MetricsRegistry, MetricsSnapshot, Span, Stage, Trace, TraceBuilder,
    TraceKind, TraceRecorder, Ts,
};
use gpar_partition::{chunk_by_load, CenterSite};
// The per-snapshot cache/state maps, the warm lock, and the update clock
// use the parking_lot shim's non-poisoning primitives: a worker (or a
// chaos failpoint in the write pipeline) that panics while holding a
// lock must not poison shared state and brick every subsequent query —
// each protected structure is consistent between operations, so recovery
// is always safe.
use parking_lot::Mutex;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Warm-scan task granules per executor worker (same rationale as EIP's
/// chunking: fine enough that stealing evens out per-site cost skew,
/// coarse enough that task overhead stays invisible).
const WARM_CHUNKS_PER_WORKER: usize = 16;

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Capacity of the shared d-ball LRU cache (entries; 0 disables).
    pub cache_capacity: usize,
    /// Confidence bound η gating which rules admit customers.
    pub eta: f64,
    /// Evaluation radius override; `None` derives it per predicate from
    /// the rules (EIP's rule).
    pub d: Option<u32>,
    /// Per-candidate matching preset (the EIP algorithm variants).
    pub algorithm: EipAlgorithm,
    /// Depth of the index-time candidate sketches (0 disables candidate
    /// pruning; effective depth is capped at the group's radius `d`).
    pub sketch_k: u32,
    /// Per-request traces retained in the engine's ring buffer
    /// ([`ServeEngine::traces`]; 0 disables trace recording).
    pub trace_capacity: usize,
    /// Admission bound on the job queue, per priority lane (0 =
    /// unbounded). When a lane is full, `submit_*` fails fast with
    /// [`QueryError::Shed`] instead of growing the backlog without
    /// limit — under sustained overload the shed rate, not queue depth,
    /// absorbs the excess.
    pub queue_capacity: usize,
    /// How long the writer lingers after popping an update, absorbing
    /// further queued batches into the same net generation before
    /// publishing. `ZERO` (the default) still merges everything *already*
    /// queued — a burst submitted ahead of the writer coalesces either
    /// way — but never delays a lone update.
    pub coalesce_window: Duration,
    /// Most update batches folded into one generation (bounds both the
    /// latency of the first batch in a window and the size of the net
    /// diff a single publish carries).
    pub coalesce_max_batch: usize,
    /// Overlay-pressure threshold for self-triggering compaction: after a
    /// publish, when `(delta nodes+edges + tombstones + relabels + dead
    /// slots) / (live nodes+edges)` crosses this, the writer folds the
    /// overlay into a fresh CSR base as its own snapshot generation.
    /// `f64::INFINITY` disables auto-compaction.
    pub compact_pressure: f64,
    /// Auto-compaction takes the **id-remapping** form only when the
    /// dead-slot fraction alone exceeds this (remaps invalidate caller-
    /// held node ids — see [`ServeEngine::remaps_since`] — so the writer
    /// avoids them until dead slots dominate). Until then, an overlay
    /// with pending removals is left un-compacted.
    pub compact_dead_fraction: f64,
    /// When set, this engine serves as one shard of a
    /// [`crate::ShardedEngine`]: its candidate index, warm ledgers, and
    /// repair work cover only the centers the spec owns. The graph
    /// itself stays whole (every shard applies every update, so ids and
    /// overlays agree across shards); only the *answer* state is
    /// sharded. `None` (the default) serves the full center set.
    pub owned: Option<gpar_partition::ShardSpec>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: gpar_exec::default_workers(4),
            cache_capacity: 4096,
            eta: 1.5,
            d: None,
            algorithm: EipAlgorithm::Match,
            sketch_k: 2,
            trace_capacity: 256,
            queue_capacity: 0,
            coalesce_window: Duration::ZERO,
            coalesce_max_batch: 64,
            compact_pressure: 0.5,
            compact_dead_fraction: 0.6,
            owned: None,
        }
    }
}

/// Errors returned by queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No cataloged rule pertains to the predicate (or none is
    /// satisfiable in this graph).
    UnknownPredicate,
    /// The worker pool has shut down. Jobs still queued when
    /// [`ServeEngine::stop`] runs are failed with this error instead of
    /// being silently dropped.
    Stopped,
    /// The query evaluation panicked. The worker caught the panic, so the
    /// pool keeps serving; only this request is lost.
    Panicked,
    /// Rejected at admission: the job queue's lane was at capacity
    /// ([`ServeConfig::queue_capacity`]). `depth` is the total backlog
    /// observed at rejection time. Retry later or shed upstream.
    Shed {
        /// Queued jobs (both lanes) when the request was rejected.
        depth: usize,
    },
    /// The request's deadline ([`QueryOpts::deadline`]) expired before an
    /// answer was produced. The budget runs from the schedule timestamp;
    /// workers check it at stage boundaries, and an answer that completes
    /// late is replaced by this error rather than delivered stale.
    DeadlineExceeded {
        /// The requested budget.
        budget: Duration,
        /// Time actually elapsed when the request was abandoned.
        elapsed: Duration,
    },
    /// The worker's reply channel disconnected without an answer — a
    /// worker died catastrophically. Distinct from [`QueryError::Stopped`]
    /// (orderly shutdown), which pending jobs receive explicitly.
    ReplyLost,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownPredicate => write!(f, "no cataloged rules for this predicate"),
            QueryError::Stopped => write!(f, "serving engine stopped"),
            QueryError::Panicked => write!(f, "query evaluation panicked"),
            QueryError::Shed { depth } => {
                write!(f, "request shed at admission (queue depth {depth})")
            }
            QueryError::DeadlineExceeded { budget, elapsed } => {
                write!(f, "deadline exceeded: budget {budget:?}, elapsed {elapsed:?}")
            }
            QueryError::ReplyLost => write!(f, "reply channel lost without an answer"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-request quality-of-service options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOpts {
    /// Latency budget, measured from the request's schedule timestamp
    /// (`submit_*_from`'s `scheduled`; submission time for the blocking
    /// wrappers). Workers check it at stage boundaries — on dequeue,
    /// after lock acquisition, per candidate — and answer
    /// [`QueryError::DeadlineExceeded`] instead of finishing dead work.
    /// `None` disables the deadline.
    pub deadline: Option<Duration>,
    /// Opt-in bounded staleness, measured as **publish lag**: reads are
    /// always served lock-free from the latest published snapshot, and
    /// when updates have been *accepted but not yet published*, that
    /// snapshot trails the write frontier. A request carrying a bound
    /// accepts answers whose oldest unpublished update is at most this
    /// old (`stale = true`, stamped with the snapshot's epoch); if the
    /// lag exceeds the bound, the request waits (deadline-aware) for the
    /// writer to publish instead of answering too far behind.
    /// `Some(ZERO)` therefore always observes every accepted update;
    /// `None` serves the latest snapshot without a staleness claim and
    /// never stamps `stale`.
    pub staleness: Option<Duration>,
}

/// A request's armed deadline. The budget anchors on the schedule
/// instant when timing is compiled in; under `obs-off` (where [`Ts`] is
/// zero-sized) it falls back to the submit instant.
#[derive(Debug, Clone, Copy)]
struct Deadline {
    started: std::time::Instant,
    budget: Duration,
}

impl Deadline {
    fn arm(opts: &QueryOpts, scheduled: Ts) -> Option<Deadline> {
        opts.deadline.map(|budget| Deadline {
            started: scheduled.instant().unwrap_or_else(Ts::monotonic_now),
            budget,
        })
    }

    /// The stage-boundary cancellation check.
    fn check(this: Option<&Deadline>) -> Result<(), QueryError> {
        let Some(d) = this else { return Ok(()) };
        let elapsed = d.started.elapsed();
        if elapsed > d.budget {
            Err(QueryError::DeadlineExceeded { budget: d.budget, elapsed })
        } else {
            Ok(())
        }
    }
}

/// One identification request.
#[derive(Debug, Clone)]
pub struct IdentifyRequest {
    /// The event `q(x, y)` to identify potential customers for.
    pub predicate: Predicate,
    /// Candidate centers to test; `None` means all candidates `L`.
    pub candidates: Option<Vec<NodeId>>,
    /// Deadline / staleness options (default: none).
    pub opts: QueryOpts,
}

/// The answer to an [`IdentifyRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentifyResponse {
    /// Identified potential customers, sorted by node id.
    pub customers: Vec<NodeId>,
    /// Candidates actually evaluated (after intersection with `L` and
    /// sketch pruning). On the request that performed the warm-up
    /// (`warmed == true`) this reports the warm pass's counts over *all*
    /// of `L`, since that pass answered the request.
    pub evaluated: usize,
    /// Candidates skipped by the index-time sketch prefilter (warm-pass
    /// counts when `warmed == true`, as above).
    pub pruned: usize,
    /// Whether this request performed the predicate warm-up.
    pub warmed: bool,
    /// View epoch this answer reflects (bumped once per published
    /// snapshot generation). Stale-bounded answers stamp the epoch of
    /// the snapshot they read, which may lag unpublished updates.
    pub epoch: u64,
    /// Whether this answer was served within a staleness bound while
    /// accepted-but-unpublished updates were in flight
    /// ([`QueryOpts::staleness`]) — the snapshot it read predates those
    /// updates.
    pub stale: bool,
}

/// The sharded front's scatter primitive: one shard's per-predicate
/// ledger surface, read from a single snapshot. Carries everything the
/// merger needs to re-derive **global** statistics exactly — per-rule
/// support counters to sum, plus this shard's per-rule member lists to
/// union — because a shard's local η verdicts are meaningless on their
/// own (confidence is a global ratio).
#[derive(Debug, Clone)]
pub struct ShardQuery {
    /// The event `q(x, y)` to read the ledger surface for.
    pub predicate: Predicate,
    /// `None` reports every owned candidate's memberships; `Some`
    /// restricts the member lists (but never the counters, which always
    /// cover the shard's whole owned candidate set) to these centers.
    pub candidates: Option<Vec<NodeId>>,
    /// Deadline / staleness options (default: none).
    pub opts: QueryOpts,
}

/// One shard's answer to a [`ShardQuery`].
#[derive(Debug, Clone)]
pub struct ShardAnswer {
    /// The group's rules, in group order. Identical across shards (rule
    /// activation depends only on the graph, which every shard shares),
    /// so the merger aligns per-rule data positionally.
    pub rules: Vec<Arc<Gpar>>,
    /// Per rule: `(supp_r, supp_q_qbar, supp_q_ante)` over this shard's
    /// owned candidates.
    pub per_rule: Vec<(u64, u64, u64)>,
    /// `supp(q)` over this shard's owned candidates.
    pub supp_q: u64,
    /// `supp(q̄)` over this shard's owned candidates.
    pub supp_qbar: u64,
    /// Per rule: the owned candidates in `Q(x, G_d(v_x))` (sorted;
    /// restricted to `candidates` when given). The merger unions these
    /// across shards for every rule that clears η *globally*.
    pub q_members: Vec<Vec<NodeId>>,
    /// Owned candidates evaluated / sketch-pruned in the ledger.
    pub evaluated: usize,
    /// See `evaluated`.
    pub pruned: usize,
    /// Whether this query performed the shard's predicate warm-up.
    pub warmed: bool,
    /// View epoch of the snapshot this surface reflects.
    pub epoch: u64,
    /// Whether the answer was served within a staleness bound while
    /// updates were in flight on this shard.
    pub stale: bool,
}

/// One rule with its serving-graph confidence, as returned by
/// [`ServeEngine::top_rules`].
#[derive(Debug, Clone)]
pub struct RuleInfo {
    /// The rule.
    pub rule: Arc<Gpar>,
    /// Exact confidence on the serving graph.
    pub confidence: Confidence,
    /// Exact counts on the serving graph.
    pub stats: ConfStats,
    /// Whether the rule clears η (i.e. contributes customers).
    pub active: bool,
}

/// Aggregate engine counters, plus the epoch of the snapshot the call
/// observed. All fields come from one registry read and one snapshot
/// load, so `epoch` and the counters describe the same generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Queries answered (identify + top_rules).
    pub queries: u64,
    /// Predicate warm-ups performed.
    pub warmups: u64,
    /// Update batches accepted (each input batch, before coalescing —
    /// including batches whose window netted to nothing).
    pub updates: u64,
    /// Snapshot generations published (net update generations +
    /// compactions); the current view epoch equals this count.
    pub snapshot_publishes: u64,
    /// Accepted batches that did not publish a generation of their own:
    /// absorbed into an earlier batch's window, netted to nothing, or
    /// deduplicated away — the write amplification the coalescer saved.
    /// Invariant: `updates_coalesced ==
    /// updates - (snapshot_publishes - compactions)`.
    pub updates_coalesced: u64,
    /// Overlay compactions performed (explicit + self-triggered).
    pub compactions: u64,
    /// Requests rejected at admission (bounded queue full).
    pub shed: u64,
    /// Requests answered with [`QueryError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Staleness-opted identify answers stamped `stale`: served from the
    /// latest snapshot while accepted-but-unpublished updates were in
    /// flight within the caller's bound.
    pub stale_served: u64,
    /// Epoch of the snapshot current when this call read the counters.
    pub epoch: u64,
    /// d-ball cache counters.
    pub cache: CacheStats,
}

/// Errors returned by [`ServeEngine::apply_update`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The update references a node id outside the graph (counting the
    /// update's own node appends; deletions may only reference pre-batch
    /// ids). Nothing was applied.
    NodeOutOfRange(NodeId),
    /// The update relabels or attaches an edge to a node that is removed —
    /// either by an earlier batch or by this batch's own `del_nodes`.
    /// Nothing was applied.
    NodeRemoved(NodeId),
    /// Appending this batch's `new_nodes` would overflow the `u32` node
    /// id space (`have` existing id slots + `adding` appends >
    /// `gpar_graph::MAX_NODE_SLOTS`). Rejected at batch admission —
    /// nothing was applied, and no truncated ids were ever acked.
    IdSpaceExhausted {
        /// Id slots already allocated (live + tombstoned).
        have: usize,
        /// Nodes the rejected batch tried to append.
        adding: usize,
    },
    /// The update pipeline panicked while this batch's generation was
    /// being built (e.g. a chaos-injected fault). The generation was
    /// abandoned *before* the publish swap, so nothing this batch — or
    /// any batch coalesced with it — changed is visible.
    Panicked,
    /// The batch was rejected at admission by a fault-injection plan (the
    /// `chaos` feature's poisoned-batch failpoint). Nothing was applied.
    Rejected,
    /// The engine stopped before this batch was applied: it was still in
    /// the update queue (or submitted afterwards) when
    /// [`ServeEngine::stop`] drained the pipeline. Nothing was applied.
    Stopped,
}

impl From<UpdateInvalid> for UpdateError {
    fn from(e: UpdateInvalid) -> Self {
        match e {
            UpdateInvalid::NodeOutOfRange(v) => UpdateError::NodeOutOfRange(v),
            UpdateInvalid::NodeRemoved(v) => UpdateError::NodeRemoved(v),
            UpdateInvalid::IdSpaceExhausted { have, adding } => {
                UpdateError::IdSpaceExhausted { have, adding }
            }
        }
    }
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::NodeOutOfRange(v) => {
                write!(f, "update references node {v} out of range")
            }
            UpdateError::NodeRemoved(v) => {
                write!(f, "update references removed node {v}")
            }
            UpdateError::IdSpaceExhausted { have, adding } => {
                write!(
                    f,
                    "appending {adding} nodes to {have} existing id slots \
                     would overflow the u32 node id space"
                )
            }
            UpdateError::Panicked => {
                write!(f, "update generation panicked; nothing was published")
            }
            UpdateError::Rejected => {
                write!(f, "update batch rejected by fault injection; nothing was applied")
            }
            UpdateError::Stopped => {
                write!(f, "engine stopped before the update was applied")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// What one [`ServeEngine::apply_update`] call changed. When the writer
/// coalesced several batches into one generation, `assigned` is always
/// **this batch's** ids, while the repair-side tallies (`touched`,
/// `evicted`, `reevaluated`, …) describe the whole generation the batch
/// rode in — the publish is one atomic unit and its repair work is not
/// attributable per input batch.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Ids assigned to the update's `new_nodes`, in input order.
    pub assigned: Vec<NodeId>,
    /// Nodes whose incident structure or label effectively changed
    /// (sorted, deduplicated) — the invalidation seed set.
    pub touched: Vec<NodeId>,
    /// Effective (non-duplicate) edge inserts.
    pub added_edges: usize,
    /// Effective edge deletions, including edges cascaded from node
    /// removals.
    pub removed_edges: usize,
    /// Effective node removals.
    pub removed_nodes: usize,
    /// d-ball cache keys evicted by scoped invalidation. Every key is
    /// within distance `d` of a touched node on the pre- or post-update
    /// view (the union-ball tightness property).
    pub evicted: Vec<(NodeId, u32)>,
    /// Centers re-evaluated across all warmed predicates.
    pub reevaluated: usize,
    /// Candidate centers admitted (new/relabeled-in nodes).
    pub added_centers: usize,
    /// Candidate centers retired (relabeled-away nodes).
    pub removed_centers: usize,
    /// Predicate groups rebuilt from scratch because the update
    /// introduced a label that re-activates a deactivated rule.
    pub rebuilt_groups: usize,
}

/// One center's cached evaluation outcome, kept per warmed predicate so
/// updates can subtract its exact contribution before re-evaluating.
#[derive(Debug, Clone)]
struct CenterRecord {
    /// LCWA class on the *global* graph (counts supp_q / supp_q̄ even for
    /// sketch-pruned centers).
    class: LcwaClass,
    /// Whether the index-level sketch prefilter skipped evaluation
    /// (memberships are then vacuously all-false).
    pruned: bool,
    /// Per rule: `v_x ∈ Q(x, G_d(v_x))`. Empty iff `pruned`.
    q_member: Vec<bool>,
    /// Per rule: `v_x ∈ P_R(x, G_d(v_x))`. Empty iff `pruned`.
    pr_member: Vec<bool>,
}

/// Per-predicate state established by the warm-up pass and maintained
/// incrementally across updates.
#[derive(Debug, Clone)]
struct PredicateState {
    /// `supp(q, G)` over all candidates.
    supp_q: u64,
    /// `supp(q̄, G)` over all candidates.
    supp_qbar: u64,
    /// Per rule: `(supp_r, supp_q_qbar, supp_q_ante)` running counters.
    per_rule: Vec<(u64, u64, u64)>,
    /// Per center: its evaluation record (the subtractable ledger).
    outcomes: FxHashMap<NodeId, CenterRecord>,
    /// Exact per-rule counts, derived from the counters by `finalize`.
    stats: Vec<ConfStats>,
    /// Per-rule confidence.
    conf: Vec<Confidence>,
    /// Per-rule: clears η.
    active: Vec<bool>,
    /// The full answer implied by the current state (sorted).
    warm_customers: Vec<NodeId>,
    /// Centers evaluated / sketch-pruned (current ledger tallies).
    warm_evaluated: usize,
    warm_pruned: usize,
    /// The view epoch this ledger reflects (stamped at warm-up and at
    /// each update's ledger patch); stale-bounded answers report it.
    epoch: u64,
}

impl PredicateState {
    fn empty(rules: usize) -> Self {
        Self {
            supp_q: 0,
            supp_qbar: 0,
            per_rule: vec![(0, 0, 0); rules],
            outcomes: FxHashMap::default(),
            stats: Vec::new(),
            conf: Vec::new(),
            active: Vec::new(),
            warm_customers: Vec::new(),
            warm_evaluated: 0,
            warm_pruned: 0,
            epoch: 0,
        }
    }

    /// Adds `rec`'s contribution to the counters and stores it.
    fn add_record(&mut self, c: NodeId, rec: CenterRecord) {
        if rec.pruned {
            self.warm_pruned += 1;
        } else {
            self.warm_evaluated += 1;
        }
        match rec.class {
            LcwaClass::Positive => self.supp_q += 1,
            LcwaClass::Negative => self.supp_qbar += 1,
            LcwaClass::Unknown => {}
        }
        for (r, slot) in self.per_rule.iter_mut().enumerate() {
            if rec.q_member.get(r).copied().unwrap_or(false) {
                slot.2 += 1;
                if rec.class == LcwaClass::Negative {
                    slot.1 += 1;
                }
            }
            if rec.pr_member.get(r).copied().unwrap_or(false) && rec.class == LcwaClass::Positive {
                slot.0 += 1;
            }
        }
        let prev = self.outcomes.insert(c, rec);
        debug_assert!(prev.is_none(), "record replaced without subtraction");
    }

    /// Removes `c`'s record, subtracting its exact contribution.
    fn remove_record(&mut self, c: NodeId) {
        let Some(rec) = self.outcomes.remove(&c) else { return };
        if rec.pruned {
            self.warm_pruned -= 1;
        } else {
            self.warm_evaluated -= 1;
        }
        match rec.class {
            LcwaClass::Positive => self.supp_q -= 1,
            LcwaClass::Negative => self.supp_qbar -= 1,
            LcwaClass::Unknown => {}
        }
        for (r, slot) in self.per_rule.iter_mut().enumerate() {
            if rec.q_member.get(r).copied().unwrap_or(false) {
                slot.2 -= 1;
                if rec.class == LcwaClass::Negative {
                    slot.1 -= 1;
                }
            }
            if rec.pr_member.get(r).copied().unwrap_or(false) && rec.class == LcwaClass::Positive {
                slot.0 -= 1;
            }
        }
    }

    /// Whether `c`'s current record makes it a customer under `active`.
    fn is_customer(&self, c: NodeId) -> bool {
        self.outcomes
            .get(&c)
            .is_some_and(|rec| rec.q_member.iter().zip(&self.active).any(|(&m, &a)| m && a))
    }

    /// Recomputes the per-rule surface (stats, confidence, η-gating) from
    /// the counters — O(|Σ|). Returns whether any rule's η verdict
    /// flipped (callers must then rebuild the answer set; otherwise a
    /// per-center patch suffices).
    fn recompute_rule_surface(&mut self, eta: f64) -> bool {
        self.stats = self
            .per_rule
            .iter()
            .map(|&(supp_r, supp_q_qbar, supp_q_ante)| ConfStats {
                supp_r,
                supp_q_ante,
                supp_q: self.supp_q,
                supp_qbar: self.supp_qbar,
                supp_q_qbar,
            })
            .collect();
        self.conf = self.stats.iter().map(ConfStats::conf).collect();
        let active: Vec<bool> = self.conf.iter().map(|c| c.at_least(eta)).collect();
        let changed = active != self.active;
        self.active = active;
        changed
    }

    /// Rebuilds the full sorted answer set from the ledger — O(|L|).
    fn rebuild_customers(&mut self) {
        self.warm_customers = self
            .outcomes
            .iter()
            .filter(|(_, rec)| rec.q_member.iter().zip(&self.active).any(|(&m, &a)| m && a))
            .map(|(&c, _)| c)
            .collect();
        self.warm_customers.sort_unstable();
    }

    /// Patches the sorted answer set for exactly the given centers (their
    /// records were removed / re-evaluated) — O(ball · log |L|), the
    /// per-update fast path when no rule's η verdict flipped.
    fn patch_customers(&mut self, centers: impl IntoIterator<Item = NodeId>) {
        for c in centers {
            let is = self.is_customer(c);
            match self.warm_customers.binary_search(&c) {
                Ok(i) if !is => {
                    self.warm_customers.remove(i);
                }
                Err(i) if is => self.warm_customers.insert(i, c),
                _ => {}
            }
        }
    }

    /// Recomputes the whole derived surface (rule stats + answer set).
    fn finalize(&mut self, eta: f64) {
        self.recompute_rule_surface(eta);
        self.rebuild_customers();
    }
}

/// Per-worker-thread reusable state. The pattern-sketch cache and search
/// arena are `Rc`-based (thread-local by construction), so each worker
/// keeps its own instances and hands clones to every evaluator it
/// builds — pattern-side sketches are derived once per worker, and
/// search/traversal buffers are grown once per worker, not once per
/// request.
#[derive(Default)]
struct WorkerCaches {
    /// Registry shard this worker records into (worker index; wrapped
    /// modulo the shard count by the registry).
    shard: usize,
    psketch: FxHashMap<Predicate, gpar_iso::PatternSketchCache>,
    /// Matcher search-state arena shared by every evaluator this worker
    /// builds; its embedded neighborhood scratch also serves d-ball
    /// extraction on cache misses (`SharedScratch::with_neighborhood`).
    scratch: gpar_iso::SharedScratch,
}

impl WorkerCaches {
    fn pattern_cache(&mut self, pred: &Predicate) -> gpar_iso::PatternSketchCache {
        self.psketch.entry(*pred).or_default().clone()
    }
}

/// One published snapshot generation: graph overlay, candidate index,
/// label histograms, warm ledgers and d-ball cache, all consistent with
/// each other at `epoch`. Queries load the current snapshot `Arc` with
/// one lock-free atomic read and evaluate entirely against it; the
/// writer builds the next generation as a copy-on-write successor and
/// publishes it with a single pointer swap. The structural fields are
/// frozen after publish; `states` and `cache` have mutex interior
/// because queries *warm into* the snapshot they read (a warm-up ledger,
/// a cached d-ball extraction) — both are carried forward into the next
/// generation by the writer.
struct EngineView {
    graph: DeltaGraph,
    index: CandidateIndex,
    node_hist: FxHashMap<Label, u64>,
    edge_hist: FxHashMap<Label, u64>,
    /// Bumped once per published generation; answers stamp the epoch
    /// they read so clients can order them against updates.
    epoch: u64,
    /// Per-predicate warm ledgers, versioned with this snapshot: each
    /// state's answers are exact for `graph` (patched by the writer when
    /// the generation was built; stamped with the epoch that last
    /// touched them).
    states: Mutex<FxHashMap<Predicate, Arc<PredicateState>>>,
    /// The d-ball cache for this snapshot's graph. Successor generations
    /// start from a `cloned_retain` of it (union-ball invalidation), so
    /// the hot working set survives publishes.
    cache: Mutex<LruCache<(NodeId, u32), Arc<CenterSite>>>,
}

/// One warm-scan chunk's partial fold (merged in task-index order;
/// commutative sums, so warm state is identical at any worker count).
struct WarmPart {
    records: Vec<(NodeId, CenterRecord)>,
}

struct Shared {
    /// The published snapshot. Queries grab it with one lock-free atomic
    /// load (`load_full`) and evaluate entirely against that generation;
    /// only the writer thread swaps in successors.
    view: ArcSwap<EngineView>,
    /// The catalog, retained for rule re-activation rebuilds.
    catalog: RuleCatalog,
    cfg: ServeConfig,
    /// Serializes warm-up passes so concurrent cold queries for one
    /// predicate don't all run the full O(|L|) scan (warm-ups happen once
    /// per predicate, so cross-predicate contention here is negligible).
    warm_lock: Mutex<()>,
    /// Per-worker-sharded counters + latency histograms. Engine counters
    /// (queries, warm-ups, updates, cache activity) live here exclusively;
    /// [`ServeEngine::stats`] reads them at one stable epoch.
    obs: Arc<MetricsRegistry>,
    /// Bounded ring of recent per-request traces.
    traces: TraceRecorder,
    /// Accepted-but-unpublished update batches. Staleness-bounded reads
    /// ([`QueryOpts::staleness`]) measure the published snapshot's lag
    /// against it and wait when the lag exceeds their bound.
    clock: UpdateClock,
    /// `(epoch, remap)` per id-remapping compaction, oldest first —
    /// served by [`ServeEngine::remaps_since`].
    remap_log: Mutex<Vec<(u64, Arc<NodeRemap>)>>,
    /// Mirrors the published snapshot's epoch into the metrics gauges.
    view_epoch: Gauge,
}

impl Shared {
    fn site(
        &self,
        view: &EngineView,
        center: NodeId,
        d: u32,
        shard: usize,
        nbr: &mut NeighborhoodScratch,
    ) -> Arc<CenterSite> {
        let key = (center, d);
        if let Some(hit) = view.cache.lock().get(&key) {
            self.obs.incr(shard, Counter::CacheHits);
            return hit;
        }
        self.obs.incr(shard, Counter::CacheMisses);
        // Extract outside the lock: extraction is the expensive part and
        // must not serialize the pool. Rarely two workers race on the
        // same cold center and both extract; last insert wins, both use
        // their own (identical) site. The worker's traversal scratch is
        // reused across misses. The cache belongs to this snapshot, so a
        // site built here is always consistent with `view.graph`.
        let site = Arc::new(CenterSite::build_with(&view.graph, center, d, nbr));
        {
            let mut cache = view.cache.lock();
            let len_before = cache.len();
            let evicted = cache.insert(key, site.clone());
            // A new key either grows the cache or displaces the LRU entry;
            // a same-key replacement (two workers raced on one cold
            // center) does neither and is not an insert.
            if evicted.is_some() || cache.len() > len_before {
                self.obs.incr(shard, Counter::CacheInserted);
            }
            if evicted.is_some() {
                self.obs.incr(shard, Counter::CacheEvictions);
            }
        }
        site
    }

    /// Drains the plain per-thread counters accumulated in `caches`
    /// (matcher candidate tallies, traversal tallies) into the registry —
    /// called once per job / warm chunk, so the matcher hot path never
    /// touches an atomic.
    fn drain_worker_counters(&self, caches: &mut WorkerCaches) {
        let shard = caches.shard;
        let (generated, pruned, recomputes) = caches.scratch.drain_counters();
        let (balls, visited) = caches.scratch.with_neighborhood(|nbr| nbr.take_counters());
        self.obs.add(shard, Counter::IsoCandidatesGenerated, generated);
        self.obs.add(shard, Counter::IsoCandidatesPruned, pruned);
        self.obs.add(shard, Counter::IsoMetaRecomputes, recomputes);
        self.obs.add(shard, Counter::BallsExtracted, balls);
        self.obs.add(shard, Counter::BallNodesVisited, visited);
    }

    /// Records a finished request: root duration into `kind`'s histogram,
    /// each stage into its mapped histogram, and the trace into the ring.
    fn finish_trace(&self, shard: usize, tb: TraceBuilder, total: Duration, kind: HistKind) {
        self.obs.record(shard, kind, total);
        let trace = tb.finish(total);
        for &(stage, d) in &trace.stages {
            self.obs.record(shard, stage.hist(), d);
        }
        self.traces.push(trace);
    }

    fn opts(&self) -> MatchOpts {
        MatchOpts::for_algorithm(self.cfg.algorithm)
    }

    /// Builds the per-request evaluator: the group's pre-built sharing
    /// plan plus the worker's persistent pattern-sketch cache, so
    /// pattern-side sketches are derived once per worker rather than once
    /// per request.
    fn evaluator<'r>(
        &self,
        group: &'r PredicateGroup,
        caches: &mut WorkerCaches,
    ) -> CandidateEvaluator<'r> {
        CandidateEvaluator::with_plan_and_sketches(
            &group.rules,
            self.opts(),
            group.plan.clone(),
            group.eval_sketches.clone(),
        )
        .with_pattern_cache(caches.pattern_cache(&group.predicate))
        .with_scratch(caches.scratch.clone())
    }

    /// Classifies + (unless sketch-pruned) evaluates the center at
    /// `group.centers[pos]`, producing its ledger record.
    fn evaluate_center(
        &self,
        view: &EngineView,
        group: &PredicateGroup,
        ev: &CandidateEvaluator<'_>,
        pos: usize,
        caches: &mut WorkerCaches,
    ) -> CenterRecord {
        let c = group.centers[pos];
        // LCWA class is rule-independent and must count *every*
        // candidate, including sketch-pruned ones.
        let class = classify(&view.graph, &group.predicate, c)
            .expect("centers satisfy x's condition by construction");
        if !group.center_may_match(pos) {
            return CenterRecord {
                class,
                pruned: true,
                q_member: Vec::new(),
                pr_member: Vec::new(),
            };
        }
        let shard = caches.shard;
        let site = caches.scratch.with_neighborhood(|nbr| self.site(view, c, group.d, shard, nbr));
        let o = ev.evaluate(&site);
        debug_assert_eq!(o.class, class, "site and global LCWA must agree");
        CenterRecord { class, pruned: false, q_member: o.q_member, pr_member: o.pr_member }
    }

    /// Returns the warmed state for `group`, performing the full-candidate
    /// evaluation pass if this predicate has not been touched on `view`'s
    /// generation yet. Warms *into the snapshot*: the writer carries the
    /// ledger forward (patched) into successor generations, so the scan
    /// still happens once per predicate — a warm-up racing a publish at
    /// worst lands on a superseded snapshot and is redone on the next one.
    fn state(
        &self,
        view: &EngineView,
        group: &PredicateGroup,
        shard: usize,
    ) -> (Arc<PredicateState>, bool) {
        if let Some(s) = view.states.lock().get(&group.predicate) {
            return (s.clone(), false);
        }
        // Cold predicate: serialize warmers so losers wait for the winner
        // instead of redoing the full O(|L|) scan.
        let _warming = self.warm_lock.lock();
        if let Some(s) = view.states.lock().get(&group.predicate) {
            return (s.clone(), false);
        }
        let state = Arc::new(self.warm(view, group));
        self.obs.incr(shard, Counter::Warmups);
        view.states.lock().insert(group.predicate, state.clone());
        (state, true)
    }

    /// The warm-up pass: evaluate every candidate once and assemble the
    /// exact global statistics, exactly as `gpar_eip::identify`'s step 3.
    /// The full-`L` scan fans out as chunk tasks over a work-stealing
    /// [`Executor`] nested under the pool worker running the cold query;
    /// partial folds are commutative per-center records, so the resulting
    /// state is bit-identical at any worker count.
    fn warm(&self, view: &EngineView, group: &PredicateGroup) -> PredicateState {
        let workers = self.cfg.workers.max(1);
        let chunks =
            chunk_by_load(&vec![1u64; group.centers.len()], workers * WARM_CHUNKS_PER_WORKER);
        let exec = Executor::new(workers).with_obs(self.obs.clone());
        let (parts, _stats) = exec.map_indexed(
            chunks.len(),
            |w| WorkerCaches { shard: w, ..Default::default() },
            |caches, ci| {
                let ev = self.evaluator(group, caches);
                let mut part = WarmPart { records: Vec::new() };
                for pos in chunks[ci].clone() {
                    let rec = self.evaluate_center(view, group, &ev, pos, caches);
                    part.records.push((group.centers[pos], rec));
                }
                self.drain_worker_counters(caches);
                part
            },
        );
        let mut state = PredicateState::empty(group.rules.len());
        state.epoch = view.epoch;
        for part in parts {
            for (c, rec) in part.records {
                state.add_record(c, rec);
            }
        }
        state.finalize(self.cfg.eta);
        self.obs.add(0, Counter::CentersEvaluated, state.warm_evaluated as u64);
        self.obs.add(0, Counter::CentersSketchPruned, state.warm_pruned as u64);
        state
    }

    /// Resolves the staleness contract for one read: returns whether the
    /// answer must be stamped stale, blocking first if the snapshot's
    /// publish lag exceeds the caller's bound. A request with no
    /// staleness opt-in never waits and is never stamped — the published
    /// snapshot *is* its consistency point. An opted request tolerates
    /// answers at most `bound` behind the accepted-update frontier:
    /// within the bound it is served immediately (stamped stale while
    /// updates are pending), beyond it it waits for the writer to catch
    /// up. `Some(ZERO)` therefore observes every previously accepted
    /// update.
    fn resolve_staleness(
        &self,
        opts: &QueryOpts,
        shard: usize,
        dl: Option<&Deadline>,
    ) -> Result<bool, QueryError> {
        let Some(bound) = opts.staleness else { return Ok(false) };
        let Some(age) = self.clock.frontier_age() else { return Ok(false) };
        if age > bound {
            self.clock.wait_within(bound, || Deadline::check(dl))?;
        }
        let stale = self.clock.has_pending();
        if stale {
            self.obs.incr(shard, Counter::StaleServed);
        }
        Ok(stale)
    }

    fn identify(
        &self,
        req: &IdentifyRequest,
        caches: &mut WorkerCaches,
        tb: &mut TraceBuilder,
        dl: Option<&Deadline>,
    ) -> Result<IdentifyResponse, QueryError> {
        let shard = caches.shard;
        let stale = self.resolve_staleness(&req.opts, shard, dl)?;
        // One lock-free atomic load pins the snapshot this whole request
        // evaluates against; a concurrent publish retires the pointer but
        // never this generation, which lives until its last reader drops.
        let view = self.view.load_full();
        let epoch = view.epoch;
        let group = view.index.group(&req.predicate).ok_or(QueryError::UnknownPredicate)?;
        Deadline::check(dl)?;
        let warm_started = Ts::now();
        let (state, warmed) = self.state(&view, group, shard);
        if warmed {
            tb.add(Stage::Warmup, warm_started.elapsed());
            // This request performed the warm-up, which already evaluated
            // every candidate — answer from that pass instead of doubling
            // the cold-query latency.
            let customers = match &req.candidates {
                None => state.warm_customers.clone(),
                Some(cands) => {
                    let mut v: Vec<NodeId> = cands
                        .iter()
                        .filter(|c| state.warm_customers.binary_search(c).is_ok())
                        .copied()
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                }
            };
            return Ok(IdentifyResponse {
                customers,
                evaluated: state.warm_evaluated,
                pruned: state.warm_pruned,
                warmed: true,
                epoch,
                stale,
            });
        }
        let ev = self.evaluator(group, caches);

        // Position of each center in `centers` (for sketch lookup).
        let positions: Vec<usize> = match &req.candidates {
            None => (0..group.centers.len()).collect(),
            Some(cands) => {
                // Intersect with L; ids outside L are not candidates (no
                // x-condition match) and are silently excluded, exactly as
                // EIP never considers them.
                // `centers` is in id order, so one binary search both
                // tests membership and yields the position.
                let mut pos: Vec<usize> =
                    cands.iter().filter_map(|c| group.center_pos(*c)).collect();
                pos.sort_unstable();
                pos.dedup();
                pos
            }
        };

        let mut customers = Vec::new();
        let mut evaluated = 0usize;
        let mut pruned = 0usize;
        for i in positions {
            // Per-candidate cancellation point: a request whose budget
            // ran out mid-scan stops computing a dead answer here.
            Deadline::check(dl)?;
            let c = group.centers[i];
            let may_match = {
                let _s = Span::enter(tb, Stage::CandidatePrune);
                group.center_may_match(i)
            };
            if !may_match {
                pruned += 1;
                continue;
            }
            evaluated += 1;
            let site = {
                let _s = Span::enter(tb, Stage::CacheLookup);
                caches.scratch.with_neighborhood(|nbr| self.site(&view, c, group.d, shard, nbr))
            };
            let o = {
                let _s = Span::enter(tb, Stage::IsoEval);
                ev.evaluate(&site)
            };
            let _s = Span::enter(tb, Stage::LedgerRead);
            if o.q_member.iter().zip(&state.active).any(|(&m, &a)| m && a) {
                customers.push(c);
            }
        }
        self.obs.add(shard, Counter::CentersEvaluated, evaluated as u64);
        self.obs.add(shard, Counter::CentersSketchPruned, pruned as u64);
        customers.sort_unstable();
        Ok(IdentifyResponse { customers, evaluated, pruned, warmed, epoch, stale })
    }

    /// `top_rules` supports deadlines but ignores staleness bounds: it
    /// reads whatever snapshot is published (never blocking on writers),
    /// and its confidence figures are exact for that generation.
    fn top_rules(
        &self,
        pred: &Predicate,
        k: usize,
        shard: usize,
        tb: &mut TraceBuilder,
        dl: Option<&Deadline>,
    ) -> Result<Vec<RuleInfo>, QueryError> {
        let view = self.view.load_full();
        Deadline::check(dl)?;
        let group = view.index.group(pred).ok_or(QueryError::UnknownPredicate)?;
        let warm_started = Ts::now();
        let (state, warmed) = self.state(&view, group, shard);
        if warmed {
            tb.add(Stage::Warmup, warm_started.elapsed());
        }
        let mut out: Vec<RuleInfo> = group
            .rule_arcs
            .iter()
            .enumerate()
            .map(|(r, rule)| RuleInfo {
                rule: rule.clone(),
                confidence: state.conf[r],
                stats: state.stats[r],
                active: state.active[r],
            })
            .collect();
        out.sort_by(|a, b| {
            b.confidence
                .ranking_value()
                .total_cmp(&a.confidence.ranking_value())
                .then(b.stats.supp_r.cmp(&a.stats.supp_r))
        });
        out.truncate(k);
        Ok(out)
    }

    /// Reads this engine's per-predicate ledger surface for the sharded
    /// front (see [`ShardQuery`]): warm the predicate if needed, then
    /// report raw support counters plus per-rule membership lists from
    /// one snapshot. Pure ledger reads — no per-query evaluation — so
    /// the scatter cost is independent of candidate ball sizes.
    fn shard_answer(
        &self,
        req: &ShardQuery,
        caches: &mut WorkerCaches,
        tb: &mut TraceBuilder,
        dl: Option<&Deadline>,
    ) -> Result<ShardAnswer, QueryError> {
        let shard = caches.shard;
        let stale = self.resolve_staleness(&req.opts, shard, dl)?;
        let view = self.view.load_full();
        let group = view.index.group(&req.predicate).ok_or(QueryError::UnknownPredicate)?;
        Deadline::check(dl)?;
        let warm_started = Ts::now();
        let (state, warmed) = self.state(&view, group, shard);
        if warmed {
            tb.add(Stage::Warmup, warm_started.elapsed());
        }
        let _s = Span::enter(tb, Stage::LedgerRead);
        let nrules = group.rules.len();
        let mut q_members: Vec<Vec<NodeId>> = vec![Vec::new(); nrules];
        let push_members = |rec: &CenterRecord, c: NodeId, q_members: &mut Vec<Vec<NodeId>>| {
            for (r, members) in q_members.iter_mut().enumerate().take(nrules) {
                if rec.q_member.get(r).copied().unwrap_or(false) {
                    members.push(c);
                }
            }
        };
        match &req.candidates {
            None => {
                for (&c, rec) in state.outcomes.iter() {
                    push_members(rec, c, &mut q_members);
                }
            }
            Some(cands) => {
                // Intersect with this shard's owned candidate set; ids
                // owned elsewhere (or outside L entirely) contribute
                // nothing here and are answered by their owner.
                let mut cs: Vec<NodeId> = cands.to_vec();
                cs.sort_unstable();
                cs.dedup();
                for c in cs {
                    Deadline::check(dl)?;
                    if let Some(rec) = state.outcomes.get(&c) {
                        push_members(rec, c, &mut q_members);
                    }
                }
            }
        }
        for v in &mut q_members {
            v.sort_unstable();
        }
        Ok(ShardAnswer {
            rules: group.rule_arcs.clone(),
            per_rule: state.per_rule.clone(),
            supp_q: state.supp_q,
            supp_qbar: state.supp_qbar,
            q_members,
            evaluated: state.warm_evaluated,
            pruned: state.warm_pruned,
            warmed,
            epoch: view.epoch,
            stale,
        })
    }

    /// Absorbs one popped update batch plus everything else queued
    /// within the coalescing window, validating each against the
    /// published overlay via the [`Coalescer`] (a rejected batch answers
    /// immediately and leaves the window untouched), then builds and
    /// publishes the net generation and replies to every accepted batch.
    /// Runs on the writer thread only. Returns a non-update job popped
    /// while the window was open — it closed the window and still needs
    /// to run.
    fn update_generation(
        &self,
        jobs: &Injector<UpdateJob>,
        first: GraphUpdate,
        first_scheduled: Ts,
        first_reply: Sender<Result<UpdateReport, UpdateError>>,
    ) -> Option<UpdateJob> {
        let mut tb = TraceBuilder::new(TraceKind::Update);
        let cur = self.view.load_full();
        let base_n = cur.graph.node_count();
        let mut coalescer = Coalescer::new();
        let mut accepted: Vec<AcceptedUpdate> = Vec::new();
        let mut carry = None;

        let absorb_started = Ts::now();
        let window_deadline = Ts::monotonic_now() + self.cfg.coalesce_window;
        let mut pending = Some((first, first_scheduled, first_reply));
        loop {
            let (update, scheduled, reply) = match pending.take() {
                Some(j) => j,
                None => {
                    if accepted.len() >= self.cfg.coalesce_max_batch.max(1) {
                        break;
                    }
                    // A `ZERO` window still merges everything *already*
                    // queued; a positive window lingers for late
                    // arrivals until the deadline.
                    let next = if self.cfg.coalesce_window.is_zero() {
                        match jobs.try_pop() {
                            Some(j) => j,
                            None => break,
                        }
                    } else {
                        match jobs.pop_until(window_deadline) {
                            PopTimeout::Item(j) => j,
                            PopTimeout::TimedOut | PopTimeout::Closed => break,
                        }
                    };
                    match next {
                        UpdateJob::Update { update, scheduled, reply } => {
                            (update, scheduled, reply)
                        }
                        // A compaction (or test stall) closes the
                        // window; the caller runs it after this publish.
                        other => {
                            carry = Some(other);
                            break;
                        }
                    }
                }
            };
            if gpar_chaos::should_poison_batch("serve::update::admit") {
                let _ = reply.send(Err(UpdateError::Rejected));
                self.clock.settle(1);
                continue;
            }
            let before = coalescer.appended();
            // `push` validates before absorbing, so the window state is
            // intact whether it rejects or panics (chaos failpoint
            // included) — later batches in the window are unaffected.
            let pushed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                gpar_chaos::failpoint("serve::update::coalesce");
                coalescer.push(&cur.graph, &update)
            }));
            match pushed {
                Ok(Ok(())) => {
                    // `push` capacity-checked the append, so `base_n + i`
                    // fits in `u32` — an overflowing batch was rejected
                    // with `IdSpaceExhausted` before any id was acked.
                    let assigned = (before..coalescer.appended())
                        .map(|i| {
                            NodeId(u32::try_from(base_n + i).expect("admission checked capacity"))
                        })
                        .collect();
                    accepted.push(AcceptedUpdate { scheduled, assigned, reply });
                }
                Ok(Err(invalid)) => {
                    let _ = reply.send(Err(invalid.into()));
                    self.clock.settle(1);
                }
                Err(_) => {
                    let _ = reply.send(Err(UpdateError::Panicked));
                    self.clock.settle(1);
                }
            }
        }
        tb.add(Stage::UpdateCoalesce, absorb_started.elapsed());

        if accepted.is_empty() {
            return carry;
        }
        let (net, summary) = coalescer.finish();
        if net.is_empty() {
            // The window cancelled out entirely (or held only no-ops):
            // nothing to publish, no epoch bump. Every accepted batch
            // still counts as submitted-and-coalesced, keeping
            // `updates_coalesced == updates - update publishes` exact.
            let txn = self.obs.write_txn();
            txn.add(0, Counter::Updates, accepted.len() as u64);
            txn.add(0, Counter::UpdatesCoalesced, accepted.len() as u64);
            drop(txn);
            for a in accepted {
                let report = UpdateReport { assigned: a.assigned, ..Default::default() };
                let _ = a.reply.send(Ok(report));
            }
            self.clock.settle(summary.updates);
            return carry;
        }

        let publish_started = Ts::now();
        // The whole build runs against copy-on-write clones of the
        // published snapshot: a panic anywhere inside (chaos failpoints
        // included) publishes nothing, leaves the served view untouched,
        // and fails every batch of the window with a typed error.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.build_generation(&cur, &net, &mut tb)
        }));
        tb.add(Stage::UpdatePublish, publish_started.elapsed());
        self.clock.settle(summary.updates);
        match built {
            // Every net batch deduplicated away against the live graph:
            // same contract as an empty net window — acknowledge,
            // publish nothing, count the whole window as coalesced.
            Ok(None) => {
                let txn = self.obs.write_txn();
                txn.add(0, Counter::Updates, accepted.len() as u64);
                txn.add(0, Counter::UpdatesCoalesced, accepted.len() as u64);
                drop(txn);
                for a in accepted {
                    let report = UpdateReport { assigned: a.assigned, ..Default::default() };
                    let _ = a.reply.send(Ok(report));
                }
            }
            Ok(Some(report)) => {
                let txn = self.obs.write_txn();
                txn.add(0, Counter::Updates, accepted.len() as u64);
                txn.incr(0, Counter::SnapshotPublishes);
                // One publish for the whole window, however many net
                // segments it split into: every accepted batch beyond the
                // first was coalesced. Counting `accepted - 1` (not
                // `- segments`) keeps `updates_coalesced ==
                // updates - update publishes` exact, which is what the
                // harness's `coalesce_ratio = 1 - publishes/submitted`
                // reports.
                txn.add(0, Counter::UpdatesCoalesced, (accepted.len() - 1) as u64);
                txn.add(0, Counter::CacheInvalidations, report.evicted.len() as u64);
                txn.add(0, Counter::UpdateReevaluated, report.reevaluated as u64);
                txn.add(0, Counter::UpdateRebuiltGroups, report.rebuilt_groups as u64);
                drop(txn);
                // Record before replying, so a snapshot taken after an
                // answer arrives is guaranteed to include its batch. The
                // window opener's end-to-end latency doubles as the
                // trace root.
                self.finish_trace(0, tb, accepted[0].scheduled.elapsed(), HistKind::UpdateLatency);
                for (i, a) in accepted.into_iter().enumerate() {
                    let lag = a.scheduled.elapsed();
                    self.obs.record(0, HistKind::SnapshotLag, lag);
                    if i > 0 {
                        self.obs.record(0, HistKind::UpdateLatency, lag);
                    }
                    let mut r = report.clone();
                    r.assigned = a.assigned;
                    let _ = a.reply.send(Ok(r));
                }
            }
            Err(_) => {
                for a in accepted {
                    let _ = a.reply.send(Err(UpdateError::Panicked));
                }
            }
        }
        self.maybe_autocompact();
        carry
    }

    /// Builds the successor snapshot for one net batch sequence and
    /// publishes it with a single pointer swap. Everything here mutates
    /// copy-on-write clones; the published `cur` is never touched, so a
    /// panic (the caller catches it) is all-or-nothing. The net sequence
    /// is applied segment by segment — each contributes its pre/post
    /// invalidation BFS to one union ball — and repaired once against
    /// the final state.
    /// Returns `None` — publishing nothing, bumping nothing — when every
    /// net batch deduplicates away against the current graph (e.g. an
    /// insert of an edge that already exists).
    fn build_generation(
        &self,
        cur: &EngineView,
        net: &[GraphUpdate],
        tb: &mut TraceBuilder,
    ) -> Option<UpdateReport> {
        gpar_chaos::failpoint("serve::update::plan");
        let mut graph = cur.graph.clone();
        let mut index = cur.index.clone();
        let mut node_hist = cur.node_hist.clone();
        let mut edge_hist = cur.edge_hist.clone();
        let mut states = cur.states.lock().clone();
        let epoch = cur.epoch + 1;
        let mut report = UpdateReport::default();

        // 1. The invalidation ball radius (see the module docs): the
        // deepest radius any group evaluates at — *and* the deepest
        // radius still cached: a group removed by deactivation can leave
        // entries at a radius no current group uses, and they must keep
        // being invalidated or a later re-activation would warm against
        // stale sites. `max(d, 1)` because a center's LCWA class reads
        // its out-neighbors' labels.
        let max_cached_d = cur.cache.lock().keys().map(|&(_, dk)| dk).max().unwrap_or(0);
        let max_d = index.groups().map(|g| g.d).max().unwrap_or(0).max(max_cached_d).max(1);

        // Union ball accumulated over every net batch: deletion makes
        // invalidation non-monotone (a center can lose ball content and
        // simultaneously lose its short path to the touched set), so
        // each batch contributes a pre-commit BFS when it deletes and a
        // post-commit BFS always, min-merged. The sequence is a valid
        // start→end transformation, so the union covers every center
        // whose d-ball changed anywhere in it.
        fn union_min(dist: &mut FxHashMap<NodeId, u32>, found: FxHashMap<NodeId, u32>) {
            for (v, d) in found {
                dist.entry(v).and_modify(|c| *c = (*c).min(d)).or_insert(d);
            }
        }
        let mut dist: FxHashMap<NodeId, u32> = FxHashMap::default();

        // Histogram maintenance helpers; labels coming into existence or
        // vanishing entirely can flip a rule's label-signature
        // satisfiability (activation on appearance, symmetric
        // deactivation on disappearance).
        let mut changed_labels: gpar_graph::FxHashSet<Label> = Default::default();
        let bump = |hist: &mut FxHashMap<Label, u64>,
                    l: Label,
                    changed: &mut gpar_graph::FxHashSet<Label>| {
            let n = hist.entry(l).or_insert(0);
            if *n == 0 {
                changed.insert(l);
            }
            *n += 1;
        };
        let drop_one = |hist: &mut FxHashMap<Label, u64>,
                        l: Label,
                        changed: &mut gpar_graph::FxHashSet<Label>| {
            if let Some(n) = hist.get_mut(&l) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    hist.remove(&l);
                    changed.insert(l); // vanished
                }
            }
        };

        // Per-predicate retired centers accumulated across the batches
        // (a center retired by one batch and re-admitted by the next is
        // reconciled by the final re-evaluation pass: it sits at
        // distance 0 in the union ball).
        let mut removed_by_pred: FxHashMap<Predicate, Vec<NodeId>> = FxHashMap::default();

        let mut effective = 0usize;
        for update in net {
            let applied = {
                let _s = Span::enter(tb, Stage::UpdateDiff);
                graph.diff(update).expect("coalesced net batches revalidate on the same overlay")
            };
            if applied.touched.is_empty() {
                continue;
            }
            effective += 1;
            let deletes = !applied.removed_edges.is_empty() || !applied.removed_nodes.is_empty();
            if deletes {
                let _s = Span::enter(tb, Stage::UpdateBfs);
                let n_pre = graph.node_count();
                let pre_seeds: Vec<NodeId> =
                    applied.touched.iter().copied().filter(|v| v.index() < n_pre).collect();
                union_min(&mut dist, multi_source_distances(&graph, &pre_seeds, max_d));
            }
            {
                let _s = Span::enter(tb, Stage::UpdateCommit);
                graph.commit(update, &applied);
            }
            // Delay-only failpoint: stretches the repair (and so the
            // snapshot-lag) window without unpublishing anything —
            // readers are served from `cur` throughout.
            gpar_chaos::delaypoint("serve::update::repair");
            {
                let _s = Span::enter(tb, Stage::UpdateBfs);
                union_min(&mut dist, multi_source_distances(&graph, &applied.touched, max_d));
            }

            for &c in &applied.assigned {
                bump(&mut node_hist, graph.node_label(c), &mut changed_labels);
            }
            // `applied.relabeled` is already net-coalesced per node.
            for &(v, old, new) in &applied.relabeled {
                if applied.assigned.contains(&v) {
                    continue; // new node: final label already counted above
                }
                drop_one(&mut node_hist, old, &mut changed_labels);
                bump(&mut node_hist, new, &mut changed_labels);
            }
            for &(_, l) in &applied.removed_nodes {
                drop_one(&mut node_hist, l, &mut changed_labels);
            }
            for &(_, _, l) in &applied.added_edges {
                bump(&mut edge_hist, l, &mut changed_labels);
            }
            for &(_, _, l) in &applied.removed_edges {
                drop_one(&mut edge_hist, l, &mut changed_labels);
            }

            // Candidate-set deltas, against the post-batch graph.
            {
                let _s = Span::enter(tb, Stage::UpdateGroupRepair);
                let preds: Vec<Predicate> = index.groups().map(|g| g.predicate).collect();
                for pred in preds {
                    let group = index.group_mut(&pred).expect("group listed above");
                    let (added, removed) = center_changes(group, &graph, &applied);
                    for &c in &removed {
                        if group.remove_center(c) {
                            report.removed_centers += 1;
                        }
                    }
                    for &c in &added {
                        // Shard mode: another shard owns this center's
                        // answers; it performs the same add on its copy.
                        if self.cfg.owned.as_ref().is_some_and(|s| !s.owns(c)) {
                            continue;
                        }
                        if group.add_center(&graph, c) {
                            report.added_centers += 1;
                        }
                    }
                    if !removed.is_empty() {
                        removed_by_pred.entry(pred).or_default().extend(removed);
                    }
                }
            }

            report.touched.extend(applied.touched.iter().copied());
            report.added_edges += applied.added_edges.len();
            report.removed_edges += applied.removed_edges.len();
            report.removed_nodes += applied.removed_nodes.len();
        }
        if effective == 0 {
            return None;
        }
        report.touched.sort_unstable();
        report.touched.dedup();

        // 2. Rule activation / deactivation: rebuild exactly the
        // predicates whose rules *mention* a flipped label, against the
        // final graph and histograms; their warm state re-warms lazily
        // on the new snapshot.
        let mut rebuilt: Vec<Predicate> = Vec::new();
        if !changed_labels.is_empty() {
            let _s = Span::enter(tb, Stage::UpdateGroupRepair);
            let affected: Vec<Predicate> = self
                .catalog
                .predicates()
                .filter(|pred| {
                    self.catalog.indices_for(pred).iter().any(|&i| {
                        let sig = crate::index::LabelSignature::of_pattern(
                            self.catalog.entries()[i].rule.antecedent(),
                        );
                        sig.node_labels
                            .iter()
                            .chain(&sig.edge_labels)
                            .any(|l| changed_labels.contains(l))
                    })
                })
                .copied()
                .collect();
            for pred in affected {
                if index.rebuild_group(
                    &graph,
                    &self.catalog,
                    &pred,
                    self.cfg.sketch_k,
                    self.cfg.d,
                    &self.opts(),
                    &node_hist,
                    &edge_hist,
                ) {
                    // A rebuilt group enumerated the full graph's
                    // centers; restrict it to this shard's share again.
                    if let Some(spec) = &self.cfg.owned {
                        if let Some(g) = index.group_mut(&pred) {
                            g.retain_centers(|c| spec.owns(c));
                        }
                    }
                    rebuilt.push(pred);
                }
            }
            report.rebuilt_groups = rebuilt.len();
            for pred in &rebuilt {
                states.remove(pred); // fresh group is already exact
                removed_by_pred.remove(pred);
            }
        }

        // 3. Sketch refresh + the per-group re-evaluation sets: every
        // surviving center inside the union ball — its d-ball (hence
        // sketch, memberships, class) may have changed.
        let mut repairs: Vec<(Predicate, Vec<NodeId>, Vec<NodeId>)> = Vec::new();
        {
            let _s = Span::enter(tb, Stage::UpdateGroupRepair);
            let preds: Vec<Predicate> = index.groups().map(|g| g.predicate).collect();
            for pred in preds {
                if rebuilt.contains(&pred) {
                    continue;
                }
                let group = index.group_mut(&pred).expect("group listed above");
                let reeval: Vec<NodeId> = dist
                    .iter()
                    .filter(|&(_, &dd)| dd <= group.d.max(1))
                    .map(|(&c, _)| c)
                    .filter(|&c| group.center_pos(c).is_some())
                    .collect();
                for &c in &reeval {
                    group.refresh_center_sketch(&graph, c);
                }
                let removed = removed_by_pred.remove(&pred).unwrap_or_default();
                if !removed.is_empty() || !reeval.is_empty() {
                    repairs.push((pred, removed, reeval));
                }
            }
        }

        // 4. Scoped cache invalidation, carrying the surviving working
        // set into the successor: exactly the keys whose d-ball can
        // reach a touched node on either side of the net update are
        // dropped; everything else stays hot across the publish.
        let (next_cache, evicted) =
            cur.cache.lock().cloned_retain(|&(c, dk)| dist.get(&c).is_none_or(|&dc| dc > dk));
        report.evicted = evicted;

        let next = Arc::new(EngineView {
            graph,
            index,
            node_hist,
            edge_hist,
            epoch,
            states: Mutex::new(states),
            cache: Mutex::new(next_cache),
        });

        // 5. Warm-ledger repair, against the complete successor:
        // subtract stale contributions, re-evaluate only in-ball + new
        // centers, re-derive the answer surface (a per-center patch
        // unless a rule's η verdict flipped). Predicates the generation
        // didn't touch keep their state `Arc` — shared with `cur`, still
        // stamped with the epoch that last touched them.
        let mut caches = WorkerCaches::default();
        for (pred, removed, reeval) in repairs {
            let _s = Span::enter(tb, Stage::UpdateLedgerPatch);
            let mut states = next.states.lock();
            let Some(state) = states.get_mut(&pred) else { continue };
            let state = Arc::make_mut(state);
            state.epoch = epoch;
            let group = next.index.group(&pred).expect("repairs hold live groups");
            let ev = self.evaluator(group, &mut caches);
            for &c in &removed {
                state.remove_record(c);
            }
            for &c in &reeval {
                state.remove_record(c);
                let pos = group.center_pos(c).expect("reeval centers are candidates");
                let rec = self.evaluate_center(&next, group, &ev, pos, &mut caches);
                state.add_record(c, rec);
                report.reevaluated += 1;
            }
            if state.recompute_rule_surface(self.cfg.eta) {
                state.rebuild_customers();
            } else {
                state.patch_customers(removed.iter().chain(&reeval).copied());
            }
        }
        self.drain_worker_counters(&mut caches);

        // 6. Publish: one pointer swap makes the generation current.
        // In-flight queries holding the old `Arc` finish against their
        // snapshot; new loads see this one.
        gpar_chaos::failpoint("serve::update::publish");
        self.view.store(next);
        self.view_epoch.set(epoch as i64);
        Some(report)
    }

    /// Overlay-pressure check after each published generation: folds the
    /// overlay back into a fresh CSR base once it has grown past
    /// [`ServeConfig::compact_pressure`] relative to the live graph —
    /// but only in the id-stable form (no pending removals) until dead
    /// slots alone exceed [`ServeConfig::compact_dead_fraction`], since
    /// an id remap invalidates caller-held node ids.
    fn maybe_autocompact(&self) {
        let cur = self.view.load_full();
        let g = &cur.graph;
        if g.is_clean() {
            return;
        }
        let size = (g.node_count() + g.edge_count()).max(1) as f64;
        let overlay = g.delta_node_count()
            + g.delta_edge_count()
            + g.tomb_edge_count()
            + g.removed_node_count()
            + g.relabel_count();
        let dead = g.removed_node_count() as f64 / g.node_count().max(1) as f64;
        if dead > self.cfg.compact_dead_fraction
            || (overlay as f64 / size > self.cfg.compact_pressure && g.removed_node_count() == 0)
        {
            self.compact_generation();
        }
    }

    /// Folds the overlay into a fresh base CSR, published as its own
    /// snapshot generation (epoch bump; answers unchanged either way).
    /// Runs on the writer thread only. Without node removals ids are
    /// stable and the candidate index, warm states and d-ball cache all
    /// carry over — compaction changes the representation, never an
    /// answer. With removals the id space is re-densified: index and
    /// ledgers are translated through the [`NodeRemap`] (monotone, so
    /// sorted structures stay sorted), the d-ball cache is flushed (its
    /// values embed old ids), and the remap is appended to the log
    /// behind [`ServeEngine::remaps_since`] just before the swap, so a
    /// reader that observes the new epoch always finds its remap.
    fn compact_generation(&self) -> Option<Arc<NodeRemap>> {
        let published = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cur = self.view.load_full();
            if cur.graph.is_clean() {
                return None;
            }
            let compacted = cur.graph.compact();
            let graph = DeltaGraph::new(Arc::new(compacted.graph));
            let epoch = cur.epoch + 1;
            let mut index = cur.index.clone();
            let mut states = cur.states.lock().clone();
            let remap = compacted.remap.map(Arc::new);
            let cache = match &remap {
                None => cur.cache.lock().cloned_retain(|_| true).0,
                Some(remap) => {
                    index.remap_ids(remap);
                    for state in states.values_mut() {
                        let state = Arc::make_mut(state);
                        state.epoch = epoch;
                        state.outcomes = state
                            .outcomes
                            .drain()
                            .map(|(c, rec)| {
                                (remap.get(c).expect("warmed centers survive compaction"), rec)
                            })
                            .collect();
                        for c in &mut state.warm_customers {
                            *c = remap.get(*c).expect("customers are live centers");
                        }
                        debug_assert!(
                            state.warm_customers.is_sorted(),
                            "monotone remap preserves order"
                        );
                    }
                    let flushed = cur.cache.lock().len();
                    self.obs.add(0, Counter::CacheInvalidations, flushed as u64);
                    LruCache::new(self.cfg.cache_capacity)
                }
            };
            let next = Arc::new(EngineView {
                graph,
                index,
                node_hist: cur.node_hist.clone(),
                edge_hist: cur.edge_hist.clone(),
                epoch,
                states: Mutex::new(states),
                cache: Mutex::new(cache),
            });
            gpar_chaos::failpoint("serve::update::publish");
            if let Some(r) = &remap {
                self.remap_log.lock().push((epoch, r.clone()));
            }
            self.view.store(next);
            self.view_epoch.set(epoch as i64);
            let txn = self.obs.write_txn();
            txn.incr(0, Counter::Compactions);
            txn.incr(0, Counter::SnapshotPublishes);
            drop(txn);
            remap
        }));
        // A publish-failpoint panic aborts the fold before the swap:
        // nothing published, readers unaffected, the writer survives.
        published.unwrap_or(None)
    }
}

/// The candidate-set delta implied by an applied update for one group:
/// nodes whose (new) label admits them as centers, and nodes that stop
/// being candidates — relabeled away from `x`'s condition or removed from
/// the graph outright.
fn center_changes(
    group: &PredicateGroup,
    graph: &DeltaGraph,
    applied: &gpar_graph::AppliedUpdate,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let x = group.predicate.x_cond;
    let mut added: Vec<NodeId> =
        applied.assigned.iter().copied().filter(|&c| x.matches(graph.node_label(c))).collect();
    let mut removed = Vec::new();
    // `applied.relabeled` is net-coalesced per node and never overlaps
    // `applied.removed_nodes`.
    for &(v, old, new) in &applied.relabeled {
        if applied.assigned.contains(&v) {
            continue; // new node: final label handled above
        }
        let (was, is) = (x.matches(old), x.matches(new));
        if is && !was {
            added.push(v);
        } else if was && !is {
            removed.push(v);
        }
    }
    for &(w, old) in &applied.removed_nodes {
        if x.matches(old) {
            removed.push(w);
        }
    }
    (added, removed)
}

/// A queued write: one update batch bound for the writer's coalescing
/// window, or a maintenance command the writer serializes with update
/// generations.
enum UpdateJob {
    Update {
        update: GraphUpdate,
        /// The submitter's schedule point: update latency and snapshot
        /// lag are measured from it (open-loop semantics, exactly like
        /// query queue wait — no coordinated omission).
        scheduled: Ts,
        reply: Sender<Result<UpdateReport, UpdateError>>,
    },
    /// Explicit [`ServeEngine::compact`], routed through the queue so it
    /// serializes with generations under the single-writer invariant.
    Compact { reply: Sender<Option<Arc<NodeRemap>>> },
    /// Test-only: occupies the writer for the given duration, letting
    /// tests queue a deterministic burst behind it.
    #[cfg(test)]
    Stall(Duration),
}

/// One update admitted into the current coalescing window, waiting for
/// its generation to publish.
struct AcceptedUpdate {
    scheduled: Ts,
    /// Ids assigned to this batch's appends — the dense continuation of
    /// the window so far, identical to sequential application.
    assigned: Vec<NodeId>,
    reply: Sender<Result<UpdateReport, UpdateError>>,
}

/// A queued request, carrying its schedule timestamp so queue wait and
/// end-to-end latency are measured from submission (open-loop semantics:
/// a backed-up queue counts against latency rather than silently delaying
/// the measurement — no coordinated omission).
enum Job {
    Identify(IdentifyRequest, Ts, Option<Deadline>, Sender<Result<IdentifyResponse, QueryError>>),
    TopRules(Predicate, usize, Ts, Option<Deadline>, Sender<Result<Vec<RuleInfo>, QueryError>>),
    /// The sharded front's scatter primitive (a per-shard ledger read).
    Shard(ShardQuery, Ts, Option<Deadline>, Sender<Result<ShardAnswer, QueryError>>),
    /// Test-only: a job whose evaluation panics, pinning that a panicking
    /// query neither kills the worker nor wedges the pool.
    #[cfg(test)]
    Crash(Sender<Result<IdentifyResponse, QueryError>>),
    /// Test-only: occupies a worker for the given duration — shutdown and
    /// admission tests use it to make the pool deterministically busy.
    #[cfg(test)]
    Sleep(Duration, Sender<Result<IdentifyResponse, QueryError>>),
}

impl Job {
    /// Fails the job's requester explicitly — used by [`ServeEngine::stop`]
    /// for jobs drained from the queue, so no `submit_*` caller is ever
    /// left blocked on a reply that will never come.
    fn reject(self, err: QueryError) {
        match self {
            Job::Identify(_, _, _, tx) => {
                let _ = tx.send(Err(err));
            }
            Job::TopRules(_, _, _, _, tx) => {
                let _ = tx.send(Err(err));
            }
            Job::Shard(_, _, _, tx) => {
                let _ = tx.send(Err(err));
            }
            #[cfg(test)]
            Job::Crash(tx) | Job::Sleep(_, tx) => {
                let _ = tx.send(Err(err));
            }
        }
    }

    /// The predicate this job queries, if any.
    fn predicate(&self) -> Option<&Predicate> {
        match self {
            Job::Identify(req, ..) => Some(&req.predicate),
            Job::TopRules(pred, ..) => Some(pred),
            Job::Shard(req, ..) => Some(&req.predicate),
            #[cfg(test)]
            Job::Crash(_) | Job::Sleep(..) => None,
        }
    }
}

/// The serving engine: index + warm state + fixed worker pool.
///
/// Cloning is not supported; share the engine behind an `Arc` if multiple
/// frontends submit queries. Dropping the engine shuts the pool down and
/// joins every worker.
pub struct ServeEngine {
    shared: Arc<Shared>,
    jobs: Arc<Injector<Job>>,
    updates: Arc<Injector<UpdateJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Builds the index for `(graph, catalog)`, publishes the initial
    /// snapshot, and spawns the query pool plus the single writer.
    pub fn new(graph: Arc<Graph>, catalog: &RuleCatalog, cfg: ServeConfig) -> Self {
        let mut index = CandidateIndex::build(
            &*graph,
            catalog,
            cfg.sketch_k,
            cfg.d,
            &MatchOpts::for_algorithm(cfg.algorithm),
        );
        if let Some(spec) = &cfg.owned {
            // Shard mode: groups are built against the whole graph (so
            // activation signatures match every other shard exactly),
            // then restricted to this shard's owned centers.
            index.retain_centers(|c| spec.owns(c));
        }
        let node_hist = graph.node_label_histogram();
        let edge_hist = graph.edge_label_histogram();
        let workers = cfg.workers.max(1);
        let queue_capacity = cfg.queue_capacity;
        let cache_capacity = cfg.cache_capacity;
        let obs = Arc::new(MetricsRegistry::new(workers));
        let shared = Arc::new(Shared {
            view: ArcSwap::new(Arc::new(EngineView {
                graph: DeltaGraph::new(graph),
                index,
                node_hist,
                edge_hist,
                epoch: 0,
                states: Mutex::new(FxHashMap::default()),
                cache: Mutex::new(LruCache::new(cache_capacity)),
            })),
            catalog: catalog.clone(),
            warm_lock: Mutex::new(()),
            obs: obs.clone(),
            traces: TraceRecorder::new(cfg.trace_capacity),
            clock: UpdateClock::default(),
            remap_log: Mutex::new(Vec::new()),
            view_epoch: obs.register_gauge("view_epoch"),
            cfg,
        });
        let jobs: Arc<Injector<Job>> = Arc::new(
            Injector::with_depth_gauge(obs.register_gauge("injector_depth"))
                .with_capacity(queue_capacity),
        );
        // The update queue is unbounded: writers block on their reply
        // (or watch the depth gauge when submitting open-loop), so
        // admission control belongs to the caller, not the queue.
        let updates: Arc<Injector<UpdateJob>> =
            Arc::new(Injector::with_depth_gauge(obs.register_gauge("update_queue_depth")));
        let mut handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                let jobs = jobs.clone();
                std::thread::spawn(move || worker_loop(shared, jobs, w))
            })
            .collect();
        handles.push({
            let shared = shared.clone();
            let updates = updates.clone();
            std::thread::spawn(move || writer_loop(shared, updates))
        });
        Self { shared, jobs, updates, handles }
    }

    fn submit(&self, job: Job) -> Result<(), QueryError> {
        if gpar_chaos::should_reject_queue("serve::submit") {
            self.shared.obs.incr(0, Counter::Shed);
            return Err(QueryError::Shed { depth: self.jobs.len() });
        }
        let prio = self.priority_of(&job);
        match self.jobs.push_with(job, prio) {
            Ok(()) => Ok(()),
            Err(PushError::Closed(_)) => Err(QueryError::Stopped),
            Err(PushError::Full { depth, .. }) => {
                self.shared.obs.incr(0, Counter::Shed);
                Err(QueryError::Shed { depth })
            }
        }
    }

    /// Cold-predicate queries ride the high-priority lane: they run the
    /// shared warm-up whose ledger every later query on that predicate
    /// reuses, so a Zipf flood of already-warm hot keys must not starve
    /// them out of the bounded queue. Everything else is normal priority.
    fn priority_of(&self, job: &Job) -> Priority {
        let Some(pred) = job.predicate() else { return Priority::Normal };
        if self.shared.view.load_full().states.lock().contains_key(pred) {
            Priority::Normal
        } else {
            Priority::High
        }
    }

    /// `Σ_p(x, G, η)` over `candidates` (or all candidates): submits one
    /// job to the pool and blocks for the answer.
    pub fn identify(
        &self,
        predicate: Predicate,
        candidates: Option<Vec<NodeId>>,
    ) -> Result<IdentifyResponse, QueryError> {
        self.identify_opts(predicate, candidates, QueryOpts::default())
    }

    /// [`ServeEngine::identify`] with explicit deadline / staleness
    /// options.
    pub fn identify_opts(
        &self,
        predicate: Predicate,
        candidates: Option<Vec<NodeId>>,
        opts: QueryOpts,
    ) -> Result<IdentifyResponse, QueryError> {
        let rx =
            self.submit_identify_from(IdentifyRequest { predicate, candidates, opts }, Ts::now())?;
        rx.recv().map_err(|_| QueryError::ReplyLost)?
    }

    /// Submits an identify request without blocking, returning the reply
    /// channel — the open-loop load harness's entry point. Queue wait and
    /// end-to-end latency are measured from `scheduled`, which callers
    /// replaying a workload set to the request's *intended* arrival time:
    /// if submission itself lags the schedule, the lag is charged to the
    /// request rather than silently dropped (coordinated omission).
    pub fn submit_identify_from(
        &self,
        req: IdentifyRequest,
        scheduled: Ts,
    ) -> Result<Receiver<Result<IdentifyResponse, QueryError>>, QueryError> {
        let (tx, rx) = channel();
        let dl = Deadline::arm(&req.opts, scheduled);
        self.submit(Job::Identify(req, scheduled, dl, tx))?;
        Ok(rx)
    }

    /// Submits a whole batch concurrently and collects the answers in
    /// request order. With `workers > 1`, requests overlap.
    pub fn identify_batch(
        &self,
        reqs: Vec<IdentifyRequest>,
    ) -> Vec<Result<IdentifyResponse, QueryError>> {
        let mut waits = Vec::with_capacity(reqs.len());
        for req in reqs {
            waits.push(self.submit_identify_from(req, Ts::now()));
        }
        waits
            .into_iter()
            .map(|w| match w {
                // Submission errors (Shed / Stopped) surface as-is above;
                // a recv failure is specifically a reply channel that died
                // without an answer, not a shutdown.
                Ok(rx) => rx.recv().unwrap_or(Err(QueryError::ReplyLost)),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// The `k` highest-confidence rules for `pred`, with exact confidence
    /// on the serving graph (warms the predicate if needed).
    pub fn top_rules(&self, predicate: Predicate, k: usize) -> Result<Vec<RuleInfo>, QueryError> {
        let rx = self.submit_top_rules_from(predicate, k, QueryOpts::default(), Ts::now())?;
        rx.recv().map_err(|_| QueryError::ReplyLost)?
    }

    /// Non-blocking [`ServeEngine::top_rules`] with an external schedule
    /// timestamp; see [`ServeEngine::submit_identify_from`]. Only
    /// `opts.deadline` applies: `top_rules` answers borrow rule data
    /// behind the view lock, so they never take the stale path.
    pub fn submit_top_rules_from(
        &self,
        predicate: Predicate,
        k: usize,
        opts: QueryOpts,
        scheduled: Ts,
    ) -> Result<Receiver<Result<Vec<RuleInfo>, QueryError>>, QueryError> {
        let (tx, rx) = channel();
        let dl = Deadline::arm(&opts, scheduled);
        self.submit(Job::TopRules(predicate, k, scheduled, dl, tx))?;
        Ok(rx)
    }

    /// Submits a per-shard ledger read without blocking — the
    /// [`crate::ShardedEngine`] front's scatter primitive, also usable
    /// standalone to read a predicate's exact support surface. Rides the
    /// same worker pool, admission control, and priority lanes as
    /// `identify`.
    pub fn submit_shard_query_from(
        &self,
        req: ShardQuery,
        scheduled: Ts,
    ) -> Result<Receiver<Result<ShardAnswer, QueryError>>, QueryError> {
        let (tx, rx) = channel();
        let dl = Deadline::arm(&req.opts, scheduled);
        self.submit(Job::Shard(req, scheduled, dl, tx))?;
        Ok(rx)
    }

    /// Blocking [`ServeEngine::submit_shard_query_from`].
    pub fn shard_query(&self, req: ShardQuery) -> Result<ShardAnswer, QueryError> {
        let rx = self.submit_shard_query_from(req, Ts::now())?;
        rx.recv().map_err(|_| QueryError::ReplyLost)?
    }

    /// Applies one insert/relabel/deletion batch to the serving graph:
    /// the batch rides the writer's coalescing window (possibly merged
    /// with concurrently submitted batches into one published
    /// generation) and this call blocks until that generation is
    /// published — never blocking any reader. A malformed batch
    /// (out-of-range or removed node reference) is rejected whole:
    /// `Err` means nothing of *this* batch was applied.
    pub fn apply_update(&self, update: &GraphUpdate) -> Result<UpdateReport, UpdateError> {
        self.apply_update_from(update, Ts::now())
    }

    /// [`ServeEngine::apply_update`] with an external schedule timestamp:
    /// the recorded update latency (and its trace's root duration) starts
    /// at `scheduled`, charging queue + window wait to the batch exactly
    /// like queue wait is charged to queries.
    pub fn apply_update_from(
        &self,
        update: &GraphUpdate,
        scheduled: Ts,
    ) -> Result<UpdateReport, UpdateError> {
        let rx = self.submit_update_from(update.clone(), scheduled)?;
        rx.recv().map_err(|_| UpdateError::Stopped)?
    }

    /// Submits an update without blocking, returning the reply channel —
    /// the open-loop load harness's write-side entry point. The update
    /// is accepted into the pipeline immediately (staleness-bounded
    /// readers start counting it against their bound now); the channel
    /// yields the report once its generation publishes.
    pub fn submit_update_from(
        &self,
        update: GraphUpdate,
        scheduled: Ts,
    ) -> Result<Receiver<Result<UpdateReport, UpdateError>>, UpdateError> {
        let (tx, rx) = channel();
        self.shared.clock.submit();
        match self
            .updates
            .push_with(UpdateJob::Update { update, scheduled, reply: tx }, Priority::Normal)
        {
            Ok(()) => Ok(rx),
            Err(_) => {
                self.shared.clock.settle(1);
                Err(UpdateError::Stopped)
            }
        }
    }

    /// Merges all pending overlay deltas back into a fresh CSR base,
    /// published as its own snapshot generation; answers are unchanged
    /// either way. Routed through the update queue, so it serializes
    /// behind in-flight generations. Returns `None` when node ids were
    /// stable (no pending node removals): cached extractions, index and
    /// warm state survive untouched. Returns the old→new [`NodeRemap`]
    /// when removals re-densified the id space: internal id-keyed state
    /// is translated automatically, and callers holding node ids across
    /// the call must translate them the same way (also available later
    /// via [`ServeEngine::remaps_since`]). The writer triggers the same
    /// fold by itself under overlay pressure — see
    /// [`ServeConfig::compact_pressure`].
    pub fn compact(&self) -> Option<Arc<NodeRemap>> {
        let (tx, rx) = channel();
        if self.updates.push_with(UpdateJob::Compact { reply: tx }, Priority::Normal).is_err() {
            return None;
        }
        rx.recv().unwrap_or(None)
    }

    /// Every id-remapping compaction published after `epoch`, oldest
    /// first. A caller holding node ids stamped with epoch `e` resyncs
    /// by translating through each remap in order.
    pub fn remaps_since(&self, epoch: u64) -> Vec<(u64, Arc<NodeRemap>)> {
        self.shared.remap_log.lock().iter().filter(|(e, _)| *e > epoch).cloned().collect()
    }

    /// Predicates this engine can serve.
    pub fn predicates(&self) -> Vec<Predicate> {
        self.shared.view.load_full().index.groups().map(|g| g.predicate).collect()
    }

    /// The shared label vocabulary.
    pub fn vocab(&self) -> Arc<Vocab> {
        self.shared.view.load_full().graph.vocab().clone()
    }

    /// Current serving-graph size as `(nodes, edges)` (base + overlay).
    /// The node component is the **id-space size** — it includes dead
    /// slots left by node removals (so it is exactly the next id an
    /// appended node will be assigned), while the edge component counts
    /// live edges only. [`ServeEngine::pending_removals`] reports the
    /// dead-slot count; compaction squeezes them out.
    pub fn graph_size(&self) -> (usize, usize) {
        let view = self.shared.view.load_full();
        (view.graph.node_count(), view.graph.edge_count())
    }

    /// Edges/nodes still in the overlay (0 right after [`ServeEngine::compact`]).
    pub fn pending_deltas(&self) -> (usize, usize) {
        let view = self.shared.view.load_full();
        (view.graph.delta_node_count(), view.graph.delta_edge_count())
    }

    /// Removals still in the overlay as `(removed nodes, tombstoned
    /// edges)` — both 0 right after [`ServeEngine::compact`].
    pub fn pending_removals(&self) -> (usize, usize) {
        let view = self.shared.view.load_full();
        (view.graph.removed_node_count(), view.graph.tomb_edge_count())
    }

    /// A counters snapshot, read at one stable registry epoch: an update
    /// generation racing this call is reflected either completely or not
    /// at all — `updates`, the cache invalidation count, and the rest of
    /// a generation's counters always move together in the returned
    /// value. `epoch` is read from the same published snapshot the
    /// engine is serving at the time of the call.
    pub fn stats(&self) -> EngineStats {
        let c = self.shared.obs.counters_stable();
        let epoch = self.shared.view.load_full().epoch;
        EngineStats {
            queries: c[Counter::Queries as usize],
            warmups: c[Counter::Warmups as usize],
            updates: c[Counter::Updates as usize],
            shed: c[Counter::Shed as usize],
            deadline_exceeded: c[Counter::DeadlineExceeded as usize],
            stale_served: c[Counter::StaleServed as usize],
            snapshot_publishes: c[Counter::SnapshotPublishes as usize],
            updates_coalesced: c[Counter::UpdatesCoalesced as usize],
            compactions: c[Counter::Compactions as usize],
            epoch,
            cache: CacheStats {
                hits: c[Counter::CacheHits as usize],
                misses: c[Counter::CacheMisses as usize],
                evictions: c[Counter::CacheEvictions as usize],
                invalidations: c[Counter::CacheInvalidations as usize],
                inserted: c[Counter::CacheInserted as usize],
            },
        }
    }

    /// Shuts the engine down **without** losing replies: both injectors
    /// are atomically closed and drained, and every job still queued at
    /// that instant gets an explicit typed error on its reply channel —
    /// [`QueryError::Stopped`] for queries, [`UpdateError::Stopped`] for
    /// updates still waiting in the coalescing queue (nothing of them
    /// was applied; pending compactions answer `None`). Without the
    /// drain, a queued job's sender would be dropped unanswered and a
    /// blocked `rx.recv()` in the submitter would see a dead channel
    /// instead of a typed shutdown. Jobs the workers or the writer
    /// already popped still run to completion. Idempotent; also invoked
    /// by `Drop`.
    pub fn stop(&self) {
        for job in self.jobs.close_and_drain() {
            job.reject(QueryError::Stopped);
        }
        for job in self.updates.close_and_drain() {
            match job {
                UpdateJob::Update { reply, .. } => {
                    let _ = reply.send(Err(UpdateError::Stopped));
                    self.shared.clock.settle(1);
                }
                UpdateJob::Compact { reply } => {
                    let _ = reply.send(None);
                }
                #[cfg(test)]
                UpdateJob::Stall(_) => {}
            }
        }
    }

    /// A coherent snapshot of every counter, merged latency histogram and
    /// gauge this engine records (queries, updates, cache, executor,
    /// matcher and traversal activity).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.obs.snapshot()
    }

    /// The most recent per-request traces, oldest first (up to
    /// [`ServeConfig::trace_capacity`]; empty under `obs-off`).
    pub fn traces(&self) -> Vec<Trace> {
        self.shared.traces.recent()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Fail queued jobs with a typed error (see `stop`), wake every
        // blocked worker and the writer to exit, then join them all.
        self.stop();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The single writer: owns every mutation of the published snapshot, so
/// generation builds never race each other. Pops one update, absorbs the
/// rest of the coalescing window, publishes the net generation, then
/// runs any maintenance job that closed the window. Exits when the
/// update injector is closed and drained.
fn writer_loop(shared: Arc<Shared>, jobs: Arc<Injector<UpdateJob>>) {
    while let Some(job) = jobs.pop() {
        let mut cur = Some(job);
        while let Some(job) = cur.take() {
            match job {
                UpdateJob::Update { update, scheduled, reply } => {
                    cur = shared.update_generation(&jobs, update, scheduled, reply);
                }
                UpdateJob::Compact { reply } => {
                    let _ = reply.send(shared.compact_generation());
                }
                #[cfg(test)]
                UpdateJob::Stall(d) => std::thread::sleep(d),
            }
        }
    }
}

/// Runs one evaluation with panics contained to the request: the worker
/// survives to serve the next job (with a one-worker pool an uncaught
/// panic would wedge every future query), and the requester gets
/// [`QueryError::Panicked`] instead of a dead channel. Shared state stays
/// sound across the unwind — the d-ball cache uses a non-poisoning mutex
/// and is consistent between operations, and queries never hold the view
/// write lock — which is exactly why `AssertUnwindSafe` is justified. The
/// per-worker caches are rebuilt on panic: their buffers may have been
/// mid-mutation when the unwind tore through them.
fn run_contained<T>(
    caches: &mut WorkerCaches,
    eval: impl FnOnce(&mut WorkerCaches) -> Result<T, QueryError>,
) -> Result<T, QueryError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| eval(caches))) {
        Ok(r) => r,
        Err(_) => {
            *caches = WorkerCaches::default();
            Err(QueryError::Panicked)
        }
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Arc<Injector<Job>>, shard: usize) {
    let mut caches = WorkerCaches { shard, ..Default::default() };
    // `pop` blocks while the injector is open; `None` = closed + drained.
    while let Some(job) = jobs.pop() {
        shared.obs.incr(shard, Counter::Queries);
        match job {
            Job::Identify(req, submitted, dl, reply) => {
                let mut tb = TraceBuilder::new(TraceKind::Identify);
                tb.add(Stage::QueueWait, submitted.elapsed());
                // Check the deadline both before starting (don't compute a
                // dead answer for a request that expired in the queue) and
                // after finishing (never deliver a success the caller has
                // already given up on).
                let res = Deadline::check(dl.as_ref())
                    .and_then(|()| {
                        run_contained(&mut caches, |c| {
                            gpar_chaos::failpoint("serve::worker::job");
                            shared.identify(&req, c, &mut tb, dl.as_ref())
                        })
                    })
                    .and_then(|resp| Deadline::check(dl.as_ref()).map(|()| resp));
                if matches!(res, Err(QueryError::DeadlineExceeded { .. })) {
                    shared.obs.incr(shard, Counter::DeadlineExceeded);
                }
                shared.drain_worker_counters(&mut caches);
                // Record before replying, so a snapshot taken after the
                // answer arrives is guaranteed to include this request.
                shared.finish_trace(shard, tb, submitted.elapsed(), HistKind::IdentifyLatency);
                let _ = reply.send(res);
            }
            Job::TopRules(pred, k, submitted, dl, reply) => {
                let mut tb = TraceBuilder::new(TraceKind::TopRules);
                tb.add(Stage::QueueWait, submitted.elapsed());
                let res = Deadline::check(dl.as_ref())
                    .and_then(|()| {
                        run_contained(&mut caches, |c| {
                            gpar_chaos::failpoint("serve::worker::job");
                            shared.top_rules(&pred, k, c.shard, &mut tb, dl.as_ref())
                        })
                    })
                    .and_then(|rules| Deadline::check(dl.as_ref()).map(|()| rules));
                if matches!(res, Err(QueryError::DeadlineExceeded { .. })) {
                    shared.obs.incr(shard, Counter::DeadlineExceeded);
                }
                shared.drain_worker_counters(&mut caches);
                shared.finish_trace(shard, tb, submitted.elapsed(), HistKind::TopRulesLatency);
                let _ = reply.send(res);
            }
            Job::Shard(req, submitted, dl, reply) => {
                let mut tb = TraceBuilder::new(TraceKind::Identify);
                tb.add(Stage::QueueWait, submitted.elapsed());
                let res = Deadline::check(dl.as_ref())
                    .and_then(|()| {
                        run_contained(&mut caches, |c| {
                            gpar_chaos::failpoint("serve::worker::job");
                            shared.shard_answer(&req, c, &mut tb, dl.as_ref())
                        })
                    })
                    .and_then(|ans| Deadline::check(dl.as_ref()).map(|()| ans));
                if matches!(res, Err(QueryError::DeadlineExceeded { .. })) {
                    shared.obs.incr(shard, Counter::DeadlineExceeded);
                }
                shared.drain_worker_counters(&mut caches);
                shared.finish_trace(shard, tb, submitted.elapsed(), HistKind::ShardQueryLatency);
                let _ = reply.send(res);
            }
            #[cfg(test)]
            Job::Crash(reply) => {
                let _ = reply
                    .send(run_contained(&mut caches, |_| -> Result<IdentifyResponse, _> {
                        panic!("test-injected query panic")
                    }));
            }
            #[cfg(test)]
            Job::Sleep(d, reply) => {
                // Occupies the worker for a fixed time — tests use it to
                // build a deterministic backlog.
                std::thread::sleep(d);
                let _ = reply.send(Ok(IdentifyResponse {
                    customers: vec![],
                    evaluated: 0,
                    pruned: 0,
                    warmed: false,
                    epoch: 0,
                    stale: false,
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_eip::{identify as eip_identify, EipConfig};
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    /// The EIP test scenario: 10 positives, 2 negatives, 3 unknowns.
    fn scenario() -> (Arc<Graph>, RuleCatalog, Predicate) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        for _ in 0..10 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
            b.add_edge(c, r, visit);
        }
        for _ in 0..2 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            let bb = b.add_node(bar);
            b.add_edge(c, r, like);
            b.add_edge(c, bb, visit);
        }
        for _ in 0..3 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
        }
        let g = Arc::new(b.build());
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let rule = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap());
        let pred = *rule.predicate();
        let mut cat = RuleCatalog::new(vocab);
        cat.insert(rule, ConfStats::default());
        (g, cat, pred)
    }

    fn sorted(set: &gpar_graph::FxHashSet<NodeId>) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = set.iter().copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn full_identify_equals_direct_eip() {
        let (g, cat, pred) = scenario();
        let sigma: Vec<Gpar> = cat.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
        for eta in [0.5, 1.5] {
            let eip = eip_identify(
                &*g,
                &sigma,
                &EipConfig { eta, ..EipConfig::new(EipAlgorithm::Match, 3) },
            )
            .unwrap();
            for workers in [1, 3] {
                let engine = ServeEngine::new(
                    g.clone(),
                    &cat,
                    ServeConfig { workers, eta, ..Default::default() },
                );
                let res = engine.identify(pred, None).unwrap();
                assert_eq!(res.customers, sorted(&eip.customers), "eta {eta} w {workers}");
            }
        }
    }

    #[test]
    fn subset_identify_is_the_intersection() {
        let (g, cat, pred) = scenario();
        let sigma: Vec<Gpar> = cat.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
        let eip = eip_identify(
            &*g,
            &sigma,
            &EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, 2) },
        )
        .unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        // Mixed subset: members, non-members, non-candidates, duplicates.
        let subset = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0), NodeId(9999)];
        let res = engine.identify(pred, Some(subset.clone())).unwrap();
        let mut expect: Vec<NodeId> =
            subset.iter().filter(|c| eip.customers.contains(c)).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(res.customers, expect);
    }

    #[test]
    fn warm_state_matches_eip_stats_and_top_rules_rank() {
        let (g, cat, pred) = scenario();
        let sigma: Vec<Gpar> = cat.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
        let eip = eip_identify(
            &*g,
            &sigma,
            &EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, 2) },
        )
        .unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let top = engine.top_rules(pred, 10).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].stats, eip.per_rule[0].stats, "serving stats must equal EIP's");
        assert_eq!(top[0].confidence, eip.per_rule[0].confidence);
        assert!(top[0].active);
        assert_eq!(engine.stats().warmups, 1);
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (g, cat, pred) = scenario();
        let engine = ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, cache_capacity: 64, workers: 1, ..Default::default() },
        );
        // Customers sit at even ids in the scenario graph (cust, rest pairs).
        let hot = vec![NodeId(0), NodeId(2), NodeId(6)];
        engine.identify(pred, Some(hot.clone())).unwrap(); // warms + fills
        let before = engine.stats().cache;
        for _ in 0..5 {
            engine.identify(pred, Some(hot.clone())).unwrap();
        }
        let after = engine.stats().cache;
        assert_eq!(after.hits - before.hits, 15, "3 hot centers × 5 queries");
        assert_eq!(after.misses, before.misses, "no re-extraction of hot centers");
    }

    #[test]
    fn batch_is_consistent_with_serial_and_unknown_predicate_errors() {
        let (g, cat, pred) = scenario();
        let engine = ServeEngine::new(
            g.clone(),
            &cat,
            ServeConfig { eta: 0.5, workers: 4, ..Default::default() },
        );
        let serial = engine.identify(pred, None).unwrap().customers;
        let reqs: Vec<IdentifyRequest> = (0..16)
            .map(|i| IdentifyRequest {
                predicate: pred,
                candidates: (i % 2 == 0).then(|| vec![NodeId(i as u32 % 12)]),
                opts: QueryOpts::default(),
            })
            .collect();
        let answers = engine.identify_batch(reqs.clone());
        for (req, ans) in reqs.iter().zip(answers) {
            let ans = ans.unwrap();
            match &req.candidates {
                None => assert_eq!(ans.customers, serial),
                Some(c) => {
                    let expect: Vec<NodeId> =
                        c.iter().filter(|x| serial.contains(x)).copied().collect();
                    assert_eq!(ans.customers, expect);
                }
            }
        }
        // A predicate nobody mined for.
        let vocab = engine.vocab();
        let ghost = Predicate::new(
            gpar_pattern::NodeCond::Label(vocab.intern("cust")),
            vocab.intern("never_mined"),
            gpar_pattern::NodeCond::Any,
        );
        assert_eq!(engine.identify(ghost, None).unwrap_err(), QueryError::UnknownPredicate);
    }

    #[test]
    fn engine_shuts_down_cleanly_under_load() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 3, ..Default::default() });
        for _ in 0..8 {
            engine.identify(pred, Some(vec![NodeId(0)])).unwrap();
        }
        drop(engine); // must join all workers without hanging
    }

    #[test]
    fn warm_answers_are_identical_across_worker_counts() {
        let (g, cat, pred) = scenario();
        let run = |workers: usize| {
            let engine = ServeEngine::new(
                g.clone(),
                &cat,
                ServeConfig { workers, eta: 0.5, ..Default::default() },
            );
            let cold = engine.identify(pred, None).unwrap();
            assert!(cold.warmed);
            let hot = engine.identify(pred, None).unwrap();
            assert!(!hot.warmed);
            assert_eq!(cold.customers, hot.customers, "warm answer equals post-warm answer");
            let top = engine.top_rules(pred, 10).unwrap();
            (cold.customers, top[0].stats, top[0].confidence)
        };
        let baseline = run(1);
        for workers in [2, 8] {
            assert_eq!(run(workers), baseline, "workers = {workers}");
        }
    }

    /// After an update, answers and stats must equal a fresh engine built
    /// on the materialized (compacted) graph. When node removals forced a
    /// dense re-numbering, the fresh engine's answers come back in new ids
    /// and are translated into the incremental engine's id space first.
    fn assert_matches_fresh_rebuild(engine: &ServeEngine, cat: &RuleCatalog, pred: Predicate) {
        let (compacted, remap) = {
            let view = engine.shared.view.load_full();
            let c = view.graph.compact();
            (Arc::new(c.graph), c.remap)
        };
        let back: Option<Vec<NodeId>> = remap.as_ref().map(NodeRemap::inverse);
        let to_old = |ids: Vec<NodeId>| -> Vec<NodeId> {
            match &back {
                None => ids,
                Some(b) => ids.into_iter().map(|v| b[v.index()]).collect(),
            }
        };
        let fresh = ServeEngine::new(
            compacted,
            cat,
            ServeConfig { eta: engine.shared.cfg.eta, ..Default::default() },
        );
        assert_eq!(
            engine.identify(pred, None).unwrap().customers,
            to_old(fresh.identify(pred, None).unwrap().customers),
            "incremental answers must equal a from-scratch rebuild"
        );
        let top_inc = engine.top_rules(pred, 16).unwrap();
        let top_fresh = fresh.top_rules(pred, 16).unwrap();
        assert_eq!(top_inc.len(), top_fresh.len());
        for (a, b) in top_inc.iter().zip(&top_fresh) {
            assert_eq!(a.stats, b.stats, "per-rule stats must be exact after update");
            assert_eq!(a.confidence, b.confidence);
            assert_eq!(a.active, b.active);
        }
    }

    #[test]
    fn edge_insert_updates_answers_like_a_rebuild() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let (like, visit) = (vocab.get("like").unwrap(), vocab.get("visit").unwrap());
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        engine.identify(pred, None).unwrap(); // warm

        // Node 28 is an "unknown" cust (likes rest 29, no visit edge).
        // Giving it a visit edge flips it to positive.
        let report = engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(28), NodeId(29), visit)],
                ..Default::default()
            })
            .unwrap();
        assert!(report.reevaluated > 0, "touched centers must be re-evaluated");
        assert_matches_fresh_rebuild(&engine, &cat, pred);

        // A brand-new customer pair arrives and likes a new restaurant.
        let cust = vocab.get("cust").unwrap();
        let rest = vocab.get("rest").unwrap();
        let n = engine.graph_size().0 as u32;
        let report = engine
            .apply_update(&GraphUpdate {
                new_nodes: vec![cust, rest],
                new_edges: vec![(NodeId(n), NodeId(n + 1), like)],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(report.assigned, vec![NodeId(n), NodeId(n + 1)]);
        assert_eq!(report.added_centers, 1, "the new cust joins L");
        assert_matches_fresh_rebuild(&engine, &cat, pred);
        assert_eq!(engine.stats().updates, 2);
    }

    #[test]
    fn relabels_move_centers_in_and_out() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let (cust, bar) = (vocab.get("cust").unwrap(), vocab.get("bar").unwrap());
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let before = engine.identify(pred, None).unwrap().customers;
        assert!(before.contains(&NodeId(0)));

        // cust 0 stops being a customer-typed node entirely.
        let report = engine
            .apply_update(&GraphUpdate { relabels: vec![(NodeId(0), bar)], ..Default::default() })
            .unwrap();
        assert_eq!(report.removed_centers, 1);
        assert!(!engine.identify(pred, None).unwrap().customers.contains(&NodeId(0)));
        assert_matches_fresh_rebuild(&engine, &cat, pred);

        // ...and comes back.
        let report = engine
            .apply_update(&GraphUpdate { relabels: vec![(NodeId(0), cust)], ..Default::default() })
            .unwrap();
        assert_eq!(report.added_centers, 1);
        assert_eq!(engine.identify(pred, None).unwrap().customers, before);
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn fresh_label_reactivates_dormant_rules() {
        let (g, cat0, pred) = scenario();
        let vocab = g.vocab().clone();
        let cust = vocab.get("cust").unwrap();
        let visit = vocab.get("visit").unwrap();
        let club = vocab.intern("club"); // not yet in the graph
        let goes = vocab.intern("goes_to"); // nor this edge label
        let mut cat = cat0.clone();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(vocab.get("rest").unwrap());
        let z = pb.node(club);
        pb.edge(x, y, vocab.get("like").unwrap());
        pb.edge(x, z, goes);
        let clubby = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap());
        cat.insert(clubby, ConfStats::default());

        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.0, ..Default::default() });
        {
            let view = engine.shared.view.load_full();
            let grp = view.index.group(&pred).unwrap();
            assert_eq!(grp.rules.len(), 1, "club rule starts signature-deactivated");
            assert_eq!(grp.inactive_rules, 1);
        }
        engine.identify(pred, None).unwrap(); // warm the 1-rule group

        // A club appears and cust 0 goes to it: the second rule activates.
        let n = engine.graph_size().0 as u32;
        let report = engine
            .apply_update(&GraphUpdate {
                new_nodes: vec![club],
                new_edges: vec![(NodeId(0), NodeId(n), goes)],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(report.rebuilt_groups, 1, "fresh labels must rebuild the group");
        {
            let view = engine.shared.view.load_full();
            let grp = view.index.group(&pred).unwrap();
            assert_eq!(grp.rules.len(), 2);
            assert_eq!(grp.inactive_rules, 0);
        }
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn compact_preserves_answers_and_clears_the_overlay() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        engine.identify(pred, None).unwrap();
        engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(28), NodeId(29), visit)],
                ..Default::default()
            })
            .unwrap();
        let before = engine.identify(pred, None).unwrap().customers;
        assert_ne!(engine.pending_deltas().1, 0);
        engine.compact();
        assert_eq!(engine.pending_deltas(), (0, 0));
        assert_eq!(engine.identify(pred, None).unwrap().customers, before);
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn noop_update_touches_nothing() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let like = vocab.get("like").unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        engine.identify(pred, None).unwrap();
        let filled = engine.stats().cache;
        // Edge already present: fully deduplicated away.
        let report = engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(0), NodeId(1), like)],
                ..Default::default()
            })
            .unwrap();
        assert!(report.touched.is_empty());
        assert!(report.evicted.is_empty());
        assert_eq!(report.reevaluated, 0);
        let stats = engine.stats();
        assert_eq!(stats.updates, 1, "accepted batches count even when deduplicated away");
        assert_eq!(stats.snapshot_publishes, 0, "nothing published");
        assert_eq!(stats.updates_coalesced, 1, "a no-publish batch is fully coalesced");
        assert_eq!(stats.cache.invalidations, filled.invalidations);
    }

    #[test]
    fn malformed_update_is_rejected_whole() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let like = vocab.get("like").unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let before = engine.identify(pred, None).unwrap().customers;
        // Valid new node, but an edge to a node that does not exist.
        let err = engine
            .apply_update(&GraphUpdate {
                new_nodes: vec![vocab.get("cust").unwrap()],
                new_edges: vec![(NodeId(0), NodeId(9999), like)],
                ..Default::default()
            })
            .unwrap_err();
        assert_eq!(err, UpdateError::NodeOutOfRange(NodeId(9999)));
        // Nothing was applied — not even the valid node — and the engine
        // keeps serving (the view lock is not poisoned).
        assert_eq!(engine.pending_deltas(), (0, 0));
        assert_eq!(engine.stats().updates, 0);
        assert_eq!(engine.identify(pred, None).unwrap().customers, before);
    }

    #[test]
    fn delete_then_reinsert_in_one_batch_is_answer_neutral() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let before = engine.identify(pred, None).unwrap().customers;
        // One batch deletes and re-inserts the same edge: the coalescer
        // cancels the pair, so the generation nets to nothing at all —
        // no tombstone churn, no epoch bump, answers unchanged.
        let report = engine
            .apply_update(&GraphUpdate {
                del_edges: vec![(NodeId(0), NodeId(1), visit)],
                new_edges: vec![(NodeId(0), NodeId(1), visit)],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(report.removed_edges, 0, "delete+reinsert cancels before applying");
        assert_eq!(report.added_edges, 0);
        assert!(report.touched.is_empty());
        let stats = engine.stats();
        assert_eq!(stats.epoch, 0, "a cancelled window publishes no snapshot");
        // Netted-to-nothing windows still count their accepted batches,
        // keeping `coalesced == updates - update publishes` exact (the
        // harness's `coalesce_ratio = 1 - publishes/submitted`).
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.snapshot_publishes, 0);
        assert_eq!(stats.updates_coalesced, 1, "the cancelled batch is fully coalesced");
        assert_eq!(engine.identify(pred, None).unwrap().customers, before);
        assert_eq!(engine.pending_removals(), (0, 0), "tombstone was cancelled");
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn edge_deletion_retires_customers_like_a_rebuild() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let like = vocab.get("like").unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let before = engine.identify(pred, None).unwrap().customers;
        assert!(before.contains(&NodeId(0)));
        // cust 0 un-likes its restaurant: the antecedent no longer holds.
        let report = engine
            .apply_update(&GraphUpdate {
                del_edges: vec![(NodeId(0), NodeId(1), like)],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(report.removed_edges, 1);
        assert!(report.reevaluated >= 1);
        assert!(!engine.identify(pred, None).unwrap().customers.contains(&NodeId(0)));
        assert_matches_fresh_rebuild(&engine, &cat, pred);
        // And back: the tombstone clears and the customer returns.
        engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(0), NodeId(1), like)],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(engine.identify(pred, None).unwrap().customers, before);
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn node_removal_retires_the_center_and_subtracts_its_ledger_entry() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let before = engine.top_rules(pred, 1).unwrap()[0].stats;
        // cust 0 (a positive supporting the rule) leaves the graph: its
        // ledger contribution must be subtracted, not re-evaluated.
        let report = engine
            .apply_update(&GraphUpdate { del_nodes: vec![NodeId(0)], ..Default::default() })
            .unwrap();
        assert_eq!(report.removed_nodes, 1);
        assert_eq!(report.removed_edges, 2, "like + visit edges cascade");
        assert_eq!(report.removed_centers, 1);
        let after = engine.top_rules(pred, 1).unwrap()[0].stats;
        assert_eq!(after.supp_q, before.supp_q - 1);
        assert_eq!(after.supp_r, before.supp_r - 1);
        assert!(!engine.identify(pred, None).unwrap().customers.contains(&NodeId(0)));
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    /// The non-monotone case the union ball exists for: deleting the only
    /// edge connecting a cached center to part of its d-ball *grows* the
    /// center's distance to the touched nodes, so the pre-update BFS — not
    /// the post-update one — is what reaches it at the old radius.
    #[test]
    fn deleting_the_unique_path_edge_invalidates_the_shrunk_ball() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let (friend, like, visit) =
            (vocab.intern("friend"), vocab.intern("like"), vocab.intern("visit"));
        // c0 -friend-> c1 -like-> r2 is c0's only path to {c1, r2};
        // c0 -visit-> r3 holds the consequent. A second friendship in a
        // far component keeps the `friend` label present after the
        // deletion, so the test exercises the incremental union-ball
        // repair and not the label-vanish rebuild path.
        let mut b = GraphBuilder::new(vocab.clone());
        let c0 = b.add_node(cust);
        let c1 = b.add_node(cust);
        let r2 = b.add_node(rest);
        let r3 = b.add_node(rest);
        b.add_edge(c0, c1, friend);
        b.add_edge(c1, r2, like);
        b.add_edge(c0, r3, visit);
        let c4 = b.add_node(cust);
        let c5 = b.add_node(cust);
        b.add_edge(c4, c5, friend);
        let g = Arc::new(b.build());
        // Rule: x -friend-> z, z -like-> y  ⇒  visit(x, y). Radius 2.
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let z = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, z, friend);
        pb.edge(z, y, like);
        let rule = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap());
        let pred = *rule.predicate();
        let mut cat = RuleCatalog::new(vocab);
        cat.insert(rule, ConfStats::default());

        let engine = ServeEngine::new(
            g.clone(),
            &cat,
            ServeConfig { eta: 0.0, cache_capacity: 64, ..Default::default() },
        );
        let before = engine.identify(pred, None).unwrap().customers;
        assert_eq!(before, vec![c0], "c0 matches the 2-hop antecedent and visits");

        let report = engine
            .apply_update(&GraphUpdate { del_edges: vec![(c0, c1, friend)], ..Default::default() })
            .unwrap();
        // c0's cached 2-ball contained {c1, r2} only through the deleted
        // edge; post-delete c0 is still adjacent to touched c0 itself, but
        // the key property is that (c0, 2) was evicted and re-evaluated.
        assert!(
            report.evicted.iter().any(|&(c, _)| c == c0),
            "the shrunk ball's cache entry must be evicted: {:?}",
            report.evicted
        );
        assert_eq!(report.rebuilt_groups, 0, "label survives: incremental path, not rebuild");
        assert!(report.reevaluated >= 1);
        // The far component's cache entries stay hot (tightness).
        assert!(report.evicted.iter().all(|&(c, _)| c != c4 && c != c5));
        assert!(engine.identify(pred, None).unwrap().customers.is_empty());
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn deleting_the_last_node_of_a_label_deactivates_rules() {
        let (g0, cat0, pred) = scenario();
        let vocab = g0.vocab().clone();
        let cust = vocab.get("cust").unwrap();
        let visit = vocab.get("visit").unwrap();
        let club = vocab.intern("club");
        let goes = vocab.intern("goes_to");
        // Start WITH the club in the graph, so the club rule is active.
        let mut b = GraphBuilder::new(vocab.clone());
        for v in g0.nodes() {
            b.add_node(g0.node_label(v));
        }
        for v in g0.nodes() {
            for e in g0.out_edges(v) {
                b.add_edge(v, e.node, e.label);
            }
        }
        let club_node = b.add_node(club);
        b.add_edge(NodeId(0), club_node, goes);
        let g = Arc::new(b.build());
        let mut cat = cat0.clone();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(vocab.get("rest").unwrap());
        let z = pb.node(club);
        pb.edge(x, y, vocab.get("like").unwrap());
        pb.edge(x, z, goes);
        let clubby = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap());
        cat.insert(clubby, ConfStats::default());

        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.0, ..Default::default() });
        {
            let view = engine.shared.view.load_full();
            let grp = view.index.group(&pred).unwrap();
            assert_eq!(grp.rules.len(), 2, "club rule starts active");
        }
        engine.identify(pred, None).unwrap(); // warm the 2-rule group

        // The only club closes: the label vanishes, the present↔absent
        // flip must take the group-rebuild path and deactivate the rule —
        // the mirror of insert-side re-activation.
        let report = engine
            .apply_update(&GraphUpdate { del_nodes: vec![club_node], ..Default::default() })
            .unwrap();
        assert_eq!(report.rebuilt_groups, 1, "vanished label must rebuild the group");
        {
            let view = engine.shared.view.load_full();
            let grp = view.index.group(&pred).unwrap();
            assert_eq!(grp.rules.len(), 1);
            assert_eq!(grp.inactive_rules, 1);
        }
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }

    #[test]
    fn compact_after_removals_remaps_ids_and_keeps_answers() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let before = engine.identify(pred, None).unwrap().customers;
        assert!(before.contains(&NodeId(2)));
        // Remove cust 0 and its restaurant; every other id survives.
        engine
            .apply_update(&GraphUpdate {
                del_nodes: vec![NodeId(0), NodeId(1)],
                ..Default::default()
            })
            .unwrap();
        let pre_compact = engine.identify(pred, None).unwrap().customers;
        assert_eq!(engine.pending_removals(), (2, 2), "base-edge cascade tombstones like + visit");
        let remap = engine.compact().expect("removals force a remap");
        assert_eq!(engine.pending_removals(), (0, 0));
        assert_eq!(engine.pending_deltas(), (0, 0));
        assert_eq!(remap.get(NodeId(0)), None);
        // Old answers translated through the remap are the new answers,
        // and the warm state answers them without re-warming.
        let expect: Vec<NodeId> =
            pre_compact.iter().map(|&c| remap.get(c).expect("customers survive")).collect();
        let after = engine.identify(pred, None).unwrap();
        assert!(!after.warmed, "warm state survives a remapped compaction");
        assert_eq!(after.customers, expect);
        assert_matches_fresh_rebuild(&engine, &cat, pred);
        assert_eq!(engine.stats().warmups, 1, "no re-warm despite the id shuffle");
    }

    #[test]
    fn poisoned_cache_lock_does_not_brick_the_engine() {
        let (g, cat, pred) = scenario();
        let engine = Arc::new(ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, workers: 2, ..Default::default() },
        ));
        let before = engine.identify(pred, None).unwrap().customers;
        // A thread panics while holding the snapshot's cache lock — with
        // a poisoning mutex every subsequent query would unwrap-panic
        // and the pool would die thread by thread.
        let shared = engine.shared.clone();
        let t = std::thread::spawn(move || {
            let view = shared.view.load_full();
            let _guard = view.cache.lock();
            panic!("worker panic while holding the cache lock");
        });
        assert!(t.join().is_err());
        // The engine keeps serving, cache included.
        assert_eq!(engine.identify(pred, None).unwrap().customers, before);
        assert_eq!(engine.identify(pred, Some(vec![NodeId(0)])).unwrap().customers.len(), 1);
    }

    #[test]
    fn panicking_query_does_not_wedge_the_pool() {
        let (g, cat, pred) = scenario();
        // One worker: if the panic killed it, every later query would hang.
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 1, ..Default::default() });
        let (tx, rx) = channel();
        engine.submit(Job::Crash(tx)).unwrap();
        assert_eq!(rx.recv().unwrap().unwrap_err(), QueryError::Panicked);
        // Same worker, next job: still alive, still correct.
        let res = engine.identify(pred, None).unwrap();
        assert!(!res.customers.is_empty());
    }

    #[test]
    fn invalidation_is_scoped_to_the_touched_ball() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine = ServeEngine::new(
            g.clone(),
            &cat,
            ServeConfig { eta: 0.5, cache_capacity: 1024, ..Default::default() },
        );
        engine.identify(pred, None).unwrap(); // warm: fills the cache with all evaluated sites
        let cached_before = {
            let view = engine.shared.view.load_full();
            let n = view.cache.lock().len();
            n
        };
        assert!(cached_before > 2);
        // Touch the isolated pair (28, 29): only that component's centers
        // can be invalidated.
        let report = engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(28), NodeId(29), visit)],
                ..Default::default()
            })
            .unwrap();
        assert_eq!(report.touched, vec![NodeId(28), NodeId(29)]);
        for &(c, _) in &report.evicted {
            assert!(
                c == NodeId(28) || c == NodeId(29),
                "evicted {c} is outside the touched component"
            );
        }
        assert!(report.reevaluated >= 1);
        assert!(report.reevaluated <= 2, "only the touched component re-evaluates");
    }

    /// `stats()` must be transactionally consistent under concurrent
    /// update traffic: every committed update in this scenario evicts
    /// exactly one cached d-ball (the isolated (28, 29) pair's center,
    /// re-cached by a query between updates), so any snapshot must show
    /// `invalidations == updates` — a snapshot that caught an update's
    /// counter bump without its eviction bump (or vice versa) breaks the
    /// equality. The pre-registry implementation read each counter
    /// independently and fails exactly that way.
    #[test]
    fn stats_snapshots_are_transactionally_consistent_under_updates() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine = Arc::new(ServeEngine::new(
            g.clone(),
            &cat,
            ServeConfig { eta: 0.5, cache_capacity: 1024, workers: 2, ..Default::default() },
        ));
        engine.identify(pred, None).unwrap(); // warm: caches every center's ball
        let writer = {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for i in 0..200 {
                    // Alternate insert / delete of one edge in the isolated
                    // component; each batch touches {28, 29} and evicts
                    // exactly the (28, d) entry the query below re-cached.
                    let edge = vec![(NodeId(28), NodeId(29), visit)];
                    let update = if i % 2 == 0 {
                        GraphUpdate { new_edges: edge, ..Default::default() }
                    } else {
                        GraphUpdate { del_edges: edge, ..Default::default() }
                    };
                    let report = engine.apply_update(&update).unwrap();
                    assert_eq!(report.evicted.len(), 1, "exactly the re-cached ball evicts");
                    assert_eq!(report.evicted[0].0, NodeId(28));
                    // Re-cache the evicted ball before the next update.
                    engine.identify(pred, Some(vec![NodeId(28)])).unwrap();
                }
            })
        };
        let mut last_updates = 0;
        while last_updates < 200 && !writer.is_finished() {
            let s = engine.stats();
            assert_eq!(
                s.cache.invalidations, s.updates,
                "snapshot split an update transaction: updates={} invalidations={}",
                s.updates, s.cache.invalidations
            );
            assert!(s.updates >= last_updates, "counters are monotone");
            last_updates = s.updates;
        }
        writer.join().unwrap();
        let s = engine.stats();
        assert_eq!((s.updates, s.cache.invalidations), (200, 200));
    }

    /// The acceptance criterion for per-query tracing: a cache-miss
    /// identify query's trace attributes time to all five pipeline stages
    /// (queue wait → cache lookup → candidate pruning → iso eval → ledger
    /// read), each with a non-zero duration, summing to at most the root.
    #[test]
    fn cache_miss_identify_trace_has_all_five_stages() {
        if cfg!(feature = "obs-off") {
            return; // timing compiles out; traces are dropped
        }
        let (g, cat, pred) = scenario();
        // Capacity 0 disables the cache: every site lookup is a miss, so
        // the second (post-warm) query exercises the full extract path.
        let engine = ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, cache_capacity: 0, workers: 1, ..Default::default() },
        );
        engine.identify(pred, None).unwrap(); // warm
        engine.identify(pred, None).unwrap(); // traced cache-miss query
        let traces = engine.traces();
        assert_eq!(traces.len(), 2);
        let warm_trace = &traces[0];
        assert!(!warm_trace.stage(Stage::Warmup).is_zero(), "first query carries the warm-up");
        let t = &traces[1];
        assert_eq!(t.kind, TraceKind::Identify);
        for stage in [
            Stage::QueueWait,
            Stage::CacheLookup,
            Stage::CandidatePrune,
            Stage::IsoEval,
            Stage::LedgerRead,
        ] {
            assert!(!t.stage(stage).is_zero(), "stage {} has no recorded time", stage.name());
        }
        assert!(t.stages_total() <= t.total, "stages are disjoint slices of the root");
    }

    /// The registry snapshot exposes engine activity end to end: query /
    /// warm-up counters, latency histograms (recorded before the reply is
    /// sent, so post-answer snapshots are complete), matcher + traversal
    /// tallies drained from worker scratch, and the injector depth gauge.
    #[test]
    fn metrics_snapshot_reflects_engine_activity() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 1, ..Default::default() });
        engine.identify(pred, None).unwrap();
        engine.identify(pred, None).unwrap();
        engine.top_rules(pred, 4).unwrap();
        let m = engine.metrics();
        assert_eq!(m.counter(Counter::Queries), 3);
        assert_eq!(m.counter(Counter::Warmups), 1);
        assert!(m.counter(Counter::CentersEvaluated) > 0);
        assert!(m.counter(Counter::BallsExtracted) > 0);
        assert!(m.counter(Counter::BallNodesVisited) >= m.counter(Counter::BallsExtracted));
        assert!(m.counter(Counter::IsoCandidatesGenerated) > 0);
        assert_eq!(
            m.gauges().iter().find(|(n, _)| *n == "injector_depth").map(|&(_, v)| v),
            Some(0),
            "queue is drained once answers are in"
        );
        if !cfg!(feature = "obs-off") {
            assert_eq!(m.hist(HistKind::IdentifyLatency).count(), 2);
            assert_eq!(m.hist(HistKind::TopRulesLatency).count(), 1);
            assert_eq!(m.hist(HistKind::Warmup).count(), 1);
            assert!(m.hist(HistKind::QueueWait).count() >= 3);
        }
        // The JSON surface carries the same rows (consumed by the CI
        // overhead gate and the load harness).
        let json = m.to_bench_json("engine-test");
        assert!(json.contains("obs/counter/queries"));
        assert!(json.contains("obs/counter/balls_extracted"));
    }

    /// Parks the single worker on a long job and waits until it has been
    /// popped, so everything submitted afterwards is queued behind it.
    fn occupy_worker(
        engine: &ServeEngine,
        d: Duration,
    ) -> Receiver<Result<IdentifyResponse, QueryError>> {
        let (tx, rx) = channel();
        engine.submit(Job::Sleep(d, tx)).unwrap();
        while !engine.jobs.is_empty() {
            std::thread::yield_now();
        }
        rx
    }

    /// The old shutdown race: jobs still queued when the engine stops had
    /// their reply senders dropped unanswered, so a submitter blocked in
    /// `rx.recv()` saw a dead channel instead of a typed error. `stop`
    /// must drain the injector and fail every pending job explicitly.
    #[test]
    fn stop_fails_queued_jobs_instead_of_hanging() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 1, ..Default::default() });
        let _busy = occupy_worker(&engine, Duration::from_millis(300));
        let pending: Vec<_> = (0..4)
            .map(|_| {
                engine
                    .submit_identify_from(
                        IdentifyRequest {
                            predicate: pred,
                            candidates: None,
                            opts: QueryOpts::default(),
                        },
                        Ts::now(),
                    )
                    .unwrap()
            })
            .collect();
        engine.stop();
        for rx in pending {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(5)).expect("reply must arrive"),
                Err(QueryError::Stopped),
                "queued jobs get a typed shutdown error, not a dead channel"
            );
        }
        assert_eq!(engine.identify(pred, None), Err(QueryError::Stopped), "post-stop submits too");
    }

    #[test]
    fn deadline_exceeded_when_queued_past_budget() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 1, ..Default::default() });
        engine.identify(pred, None).unwrap(); // warm
        let _busy = occupy_worker(&engine, Duration::from_millis(200));
        // 10ms budget, 200ms queue wait: the worker must reject on
        // dequeue instead of computing a dead answer.
        let err = engine
            .identify_opts(
                pred,
                None,
                QueryOpts { deadline: Some(Duration::from_millis(10)), ..Default::default() },
            )
            .unwrap_err();
        match err {
            QueryError::DeadlineExceeded { budget, elapsed } => {
                assert_eq!(budget, Duration::from_millis(10));
                assert!(elapsed >= budget, "elapsed {elapsed:?} must exceed the budget");
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(engine.stats().deadline_exceeded >= 1);
        // An un-deadlined query on the same engine still answers.
        assert!(!engine.identify(pred, None).unwrap().customers.is_empty());
    }

    #[test]
    fn shed_when_queue_is_full() {
        let (g, cat, pred) = scenario();
        let engine = ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, workers: 1, queue_capacity: 2, ..Default::default() },
        );
        engine.identify(pred, None).unwrap(); // warm: later identifies ride the normal lane
        let _busy = occupy_worker(&engine, Duration::from_millis(300));
        let req =
            || IdentifyRequest { predicate: pred, candidates: None, opts: QueryOpts::default() };
        let admitted: Vec<_> =
            (0..2).map(|_| engine.submit_identify_from(req(), Ts::now()).unwrap()).collect();
        assert_eq!(
            engine.submit_identify_from(req(), Ts::now()).unwrap_err(),
            QueryError::Shed { depth: 2 },
            "a full lane rejects with the observed backlog"
        );
        assert_eq!(engine.stats().shed, 1);
        for rx in admitted {
            assert!(
                rx.recv_timeout(Duration::from_secs(5)).expect("admitted job answers").is_ok(),
                "admitted work is never silently dropped"
            );
        }
    }

    /// Cold-predicate queries (their warm-up repairs the ledger) ride the
    /// high-priority lane, so a flood of hot-key traffic cannot starve
    /// them indefinitely.
    #[test]
    fn cold_queries_jump_the_queue() {
        let (g, cat0, hot) = scenario();
        let vocab = g.vocab().clone();
        let (cust, bar) = (vocab.get("cust").unwrap(), vocab.get("bar").unwrap());
        let (like, visit) = (vocab.get("like").unwrap(), vocab.get("visit").unwrap());
        // A second rule with a distinct predicate (bar-goers come to like
        // the bar) — note `P_R` must differ from the hot rule's, or the
        // catalog dedupes it away.
        let mut cat = cat0.clone();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(bar);
        pb.edge(x, y, visit);
        let cold_rule = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), like).unwrap());
        let cold = *cold_rule.predicate();
        cat.insert(cold_rule, ConfStats::default());

        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 1, ..Default::default() });
        engine.identify(hot, None).unwrap(); // warm the hot predicate only
        let _busy = occupy_worker(&engine, Duration::from_millis(100));
        // Normal-lane work queued first...
        let (tx, normal_rx) = channel();
        engine.submit(Job::Sleep(Duration::from_millis(300), tx)).unwrap();
        // ...then a cold-predicate query: it must be popped first anyway.
        let cold_resp = engine
            .submit_identify_from(
                IdentifyRequest { predicate: cold, candidates: None, opts: QueryOpts::default() },
                Ts::now(),
            )
            .unwrap()
            .recv_timeout(Duration::from_secs(5))
            .expect("cold query answers")
            .unwrap();
        assert!(cold_resp.warmed, "cold predicate warms on first touch");
        assert_eq!(
            normal_rx.try_recv(),
            Err(std::sync::mpsc::TryRecvError::Empty),
            "the normal-lane job queued earlier is still waiting"
        );
        assert!(normal_rx.recv_timeout(Duration::from_secs(5)).is_ok());
    }

    /// Staleness semantics over snapshots: while accepted updates are
    /// still unpublished, a request that opts into bounded staleness is
    /// answered from the current snapshot immediately (stamped `stale`,
    /// the epoch it reflects); a zero bound waits for the frontier to
    /// settle; and a request with no opt-in is served the published
    /// snapshot immediately, never stamped — a strict superset of the
    /// old blocking behavior (every answer the lock-based engine could
    /// return is still returned, only the mandatory wait is gone).
    #[test]
    fn stale_reads_during_repair_are_bounded_and_stamped() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 2, ..Default::default() });
        let fresh = engine.identify(pred, None).unwrap();
        assert_eq!((fresh.epoch, fresh.stale), (0, false));
        let live = fresh.customers;

        // Simulate an accepted-but-unpublished update: exactly the state
        // the pipeline is in between `submit_update_from` accepting a
        // batch and its generation's publish.
        engine.shared.clock.submit();

        let stale = engine
            .identify_opts(
                pred,
                None,
                QueryOpts { staleness: Some(Duration::from_secs(5)), ..Default::default() },
            )
            .expect("stale-tolerant read answers during the publish lag");
        assert!(stale.stale, "answer must be marked stale");
        assert_eq!(stale.epoch, 0, "stamped with the epoch it reflects");
        assert_eq!(stale.customers, live, "snapshot answer equals the pre-update truth");
        assert!(engine.stats().stale_served >= 1);

        // No staleness opt-in → served from the published snapshot
        // without waiting and without a stale stamp.
        let strict = engine.identify(pred, None).unwrap();
        assert_eq!((strict.epoch, strict.stale), (0, false));
        assert_eq!(strict.customers, live);

        // A zero bound insists on observing every accepted update →
        // blocks until the frontier settles.
        let zero = engine
            .submit_identify_from(
                IdentifyRequest {
                    predicate: pred,
                    candidates: None,
                    opts: QueryOpts { staleness: Some(Duration::ZERO), ..Default::default() },
                },
                Ts::now(),
            )
            .unwrap();
        assert!(zero.recv_timeout(Duration::from_millis(100)).is_err(), "zero-bound read waits");
        engine.shared.clock.settle(1);
        let zero = zero.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        assert!(!zero.stale, "frontier settled: the answer is current");

        // A real update bumps the epoch; post-update answers are live.
        engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(28), NodeId(29), visit)],
                ..Default::default()
            })
            .unwrap();
        let after = engine.identify(pred, None).unwrap();
        assert_eq!((after.epoch, after.stale), (1, false));
    }

    /// Workers panicking mid-query while an updater mutates the graph:
    /// the pool survives, every crash gets its typed error, and the final
    /// engine state (stats, cache, warm ledgers) is bit-equal to a fresh
    /// rebuild — a panic unwinding through a query must not leave shared
    /// state half-mutated.
    #[test]
    fn panic_containment_under_concurrent_updates() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine = Arc::new(ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, workers: 2, ..Default::default() },
        ));
        engine.identify(pred, None).unwrap(); // warm
        let updater = {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for i in 0..50 {
                    let edge = vec![(NodeId(28), NodeId(29), visit)];
                    let update = if i % 2 == 0 {
                        GraphUpdate { new_edges: edge, ..Default::default() }
                    } else {
                        GraphUpdate { del_edges: edge, ..Default::default() }
                    };
                    engine.apply_update(&update).unwrap();
                }
            })
        };
        let mut crashes = Vec::new();
        for _ in 0..50 {
            let (tx, rx) = channel();
            engine.submit(Job::Crash(tx)).unwrap();
            crashes.push(rx);
            assert!(engine.identify(pred, None).is_ok());
        }
        for rx in crashes {
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(10)).expect("crash reply"),
                Err(QueryError::Panicked)
            );
        }
        updater.join().expect("updater survives");
        assert_matches_fresh_rebuild(&engine, &cat, pred);
        assert_eq!(engine.stats().updates, 50);
    }

    fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
        for _ in 0..500 {
            if f() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }

    /// A burst of updates queued behind a wedged writer merges into ONE
    /// net generation: one snapshot publish, one epoch bump, every
    /// submitter individually acknowledged, and the answers bit-equal to
    /// applying the batches one by one.
    #[test]
    fn queued_burst_coalesces_into_one_generation() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        engine.identify(pred, None).unwrap();
        // Wedge the writer so the whole burst is already queued when the
        // coalescing window opens.
        assert!(engine
            .updates
            .push_with(UpdateJob::Stall(Duration::from_millis(200)), Priority::Normal)
            .is_ok());
        let edges = [(26u32, 27u32), (28, 29), (30, 31)];
        let rxs: Vec<_> = edges
            .iter()
            .map(|&(u, v)| {
                engine
                    .submit_update_from(
                        GraphUpdate {
                            new_edges: vec![(NodeId(u), NodeId(v), visit)],
                            ..Default::default()
                        },
                        Ts::now(),
                    )
                    .unwrap()
            })
            .collect();
        for rx in rxs {
            rx.recv_timeout(Duration::from_secs(10)).expect("reply").expect("applied");
        }
        let stats = engine.stats();
        assert_eq!(stats.epoch, 1, "the burst published as a single generation");
        assert_eq!(stats.snapshot_publishes, 1);
        assert_eq!(stats.updates, edges.len() as u64, "every submission counted");
        assert_eq!(stats.updates_coalesced, (edges.len() - 1) as u64);
        assert_matches_fresh_rebuild(&engine, &cat, pred);

        // Sequential application of the same batches answers identically.
        let seq = ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, ..Default::default() });
        for &(u, v) in &edges {
            seq.apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(u), NodeId(v), visit)],
                ..Default::default()
            })
            .unwrap();
        }
        assert_eq!(
            engine.identify(pred, None).unwrap().customers,
            seq.identify(pred, None).unwrap().customers
        );
    }

    /// `stop()` drains the coalescing queue: an update still waiting
    /// behind a wedged writer gets a typed [`UpdateError::Stopped`] (not
    /// a dead channel), the staleness frontier settles, and later
    /// submissions fail fast.
    #[test]
    fn stop_fails_queued_updates_with_typed_error() {
        let (g, cat, _pred) = scenario();
        let vocab = g.vocab().clone();
        let cust = vocab.get("cust").unwrap();
        let engine = ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, ..Default::default() });
        assert!(engine
            .updates
            .push_with(UpdateJob::Stall(Duration::from_millis(300)), Priority::Normal)
            .is_ok());
        let rx = engine
            .submit_update_from(
                GraphUpdate { new_nodes: vec![cust], ..Default::default() },
                Ts::now(),
            )
            .unwrap();
        engine.stop();
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)).expect("drained, not dropped"),
            Err(UpdateError::Stopped)
        ));
        assert!(!engine.shared.clock.has_pending(), "drained submissions settle the frontier");
        assert!(matches!(
            engine.submit_update_from(GraphUpdate::default(), Ts::now()),
            Err(UpdateError::Stopped)
        ));
        assert_eq!(engine.stats().updates, 0, "nothing of the queued update was applied");
    }

    /// The writer folds the overlay back into a fresh CSR base by itself
    /// once it crosses the configured pressure — in the id-stable form
    /// while no nodes were removed (no remap published), and in the
    /// remapping form once dead slots cross their own threshold, with
    /// the remap retrievable through [`ServeEngine::remaps_since`].
    #[test]
    fn overlay_pressure_triggers_self_compaction() {
        let (g, cat, pred) = scenario();
        let vocab = g.vocab().clone();
        let visit = vocab.get("visit").unwrap();

        // Id-stable arm: any growth trips the threshold.
        let engine = ServeEngine::new(
            g.clone(),
            &cat,
            ServeConfig { eta: 0.5, compact_pressure: 0.0, ..Default::default() },
        );
        let before = engine.identify(pred, None).unwrap().customers;
        engine
            .apply_update(&GraphUpdate {
                new_edges: vec![(NodeId(28), NodeId(29), visit)],
                ..Default::default()
            })
            .unwrap();
        wait_until("self-compaction to fold the overlay", || engine.pending_deltas() == (0, 0));
        assert!(engine.stats().compactions >= 1);
        assert!(engine.remaps_since(0).is_empty(), "id-stable fold publishes no remap");
        let after = engine.identify(pred, None).unwrap();
        assert!(after.customers.len() >= before.len());
        assert_matches_fresh_rebuild(&engine, &cat, pred);

        // Remapping arm: one dead slot trips the dead-fraction threshold.
        let engine = ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, compact_dead_fraction: 0.0, ..Default::default() },
        );
        engine.identify(pred, None).unwrap();
        engine
            .apply_update(&GraphUpdate { del_nodes: vec![NodeId(30)], ..Default::default() })
            .unwrap();
        wait_until("self-compaction to publish a remap", || !engine.remaps_since(0).is_empty());
        let remaps = engine.remaps_since(0);
        let (at_epoch, remap) = &remaps[0];
        assert!(*at_epoch >= 2, "the remap generation follows the deletion generation");
        assert_eq!(remap.get(NodeId(30)), None, "removed slot");
        assert_eq!(remap.get(NodeId(31)), Some(NodeId(30)), "tail id re-densified");
        assert_eq!(engine.pending_removals(), (0, 0));
        assert_matches_fresh_rebuild(&engine, &cat, pred);
    }
}
