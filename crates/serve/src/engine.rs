//! The batched query executor: a fixed worker pool serving `identify` and
//! `top_rules` requests concurrently over one graph + catalog.
//!
//! ## Execution model
//!
//! * [`ServeEngine::new`] builds the [`CandidateIndex`] and spawns
//!   `workers` OS threads that all drain one shared
//!   [`gpar_exec::Injector`] — the same runtime primitive family the
//!   mining and EIP layers execute on. Any idle worker, not just a lock
//!   holder, grabs the next query; dropping the engine closes the
//!   injector and joins the pool.
//! * The first query touching a predicate **warms** it: every candidate
//!   center is evaluated once, assembling the exact global
//!   [`ConfStats`]/confidence per rule — the same counts
//!   [`gpar_eip::identify`] produces, so the η-gating of rules is
//!   *identical* to a direct EIP run on this graph.
//! * Subsequent `identify(pred, candidates?)` requests re-evaluate only
//!   the requested candidates' antecedent memberships (serving semantics:
//!   membership is recomputed per query so a future incremental-graph PR
//!   can slot in without an API change), but d-ball extraction — the
//!   dominant per-candidate cost — is served from a shared LRU cache
//!   ([`crate::cache::LruCache`]), so hot centers are never re-extracted.
//! * Rule-group state built at index time is reused across the batch:
//!   the [`gpar_eip::SharingPlan`] is cloned (two small `Vec`s) into each
//!   request's [`CandidateEvaluator`] instead of re-deriving the `|Σ|²`
//!   subsumption tests.
//!
//! ## Consistency contract
//!
//! For any predicate `p` in the catalog and any candidate subset `C`:
//! `identify(p, C).customers = C ∩ identify_eip(G, Σ_p, η).customers`
//! (and with `C = None`, the full EIP answer). The serve tests and
//! `examples/serving.rs` pin this down.

use crate::cache::{CacheStats, LruCache};
use crate::catalog::RuleCatalog;
use crate::index::{CandidateIndex, PredicateGroup};
use gpar_core::{classify, ConfStats, Confidence, Gpar, LcwaClass, Predicate};
use gpar_eip::{CandidateEvaluator, EipAlgorithm, MatchOpts};
use gpar_exec::Injector;
use gpar_graph::{FxHashMap, Graph, NeighborhoodScratch, NodeId};
use gpar_partition::CenterSite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Capacity of the shared d-ball LRU cache (entries; 0 disables).
    pub cache_capacity: usize,
    /// Confidence bound η gating which rules admit customers.
    pub eta: f64,
    /// Evaluation radius override; `None` derives it per predicate from
    /// the rules (EIP's rule).
    pub d: Option<u32>,
    /// Per-candidate matching preset (the EIP algorithm variants).
    pub algorithm: EipAlgorithm,
    /// Depth of the index-time candidate sketches (0 disables candidate
    /// pruning; effective depth is capped at the group's radius `d`).
    pub sketch_k: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: gpar_exec::default_workers(4),
            cache_capacity: 4096,
            eta: 1.5,
            d: None,
            algorithm: EipAlgorithm::Match,
            sketch_k: 2,
        }
    }
}

/// Errors returned by queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// No cataloged rule pertains to the predicate (or none is
    /// satisfiable in this graph).
    UnknownPredicate,
    /// The worker pool has shut down.
    Stopped,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownPredicate => write!(f, "no cataloged rules for this predicate"),
            QueryError::Stopped => write!(f, "serving engine stopped"),
        }
    }
}

impl std::error::Error for QueryError {}

/// One identification request.
#[derive(Debug, Clone)]
pub struct IdentifyRequest {
    /// The event `q(x, y)` to identify potential customers for.
    pub predicate: Predicate,
    /// Candidate centers to test; `None` means all candidates `L`.
    pub candidates: Option<Vec<NodeId>>,
}

/// The answer to an [`IdentifyRequest`].
#[derive(Debug, Clone)]
pub struct IdentifyResponse {
    /// Identified potential customers, sorted by node id.
    pub customers: Vec<NodeId>,
    /// Candidates actually evaluated (after intersection with `L` and
    /// sketch pruning). On the request that performed the warm-up
    /// (`warmed == true`) this reports the warm pass's counts over *all*
    /// of `L`, since that pass answered the request.
    pub evaluated: usize,
    /// Candidates skipped by the index-time sketch prefilter (warm-pass
    /// counts when `warmed == true`, as above).
    pub pruned: usize,
    /// Whether this request performed the predicate warm-up.
    pub warmed: bool,
}

/// One rule with its serving-graph confidence, as returned by
/// [`ServeEngine::top_rules`].
#[derive(Debug, Clone)]
pub struct RuleInfo {
    /// The rule.
    pub rule: Arc<Gpar>,
    /// Exact confidence on the serving graph.
    pub confidence: Confidence,
    /// Exact counts on the serving graph.
    pub stats: ConfStats,
    /// Whether the rule clears η (i.e. contributes customers).
    pub active: bool,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Queries answered (identify + top_rules).
    pub queries: u64,
    /// Predicate warm-ups performed.
    pub warmups: u64,
    /// d-ball cache counters.
    pub cache: CacheStats,
}

/// Per-predicate state established by the warm-up pass.
struct PredicateState {
    /// Exact per-rule counts on the serving graph (aligned with the
    /// group's active rules).
    stats: Vec<ConfStats>,
    /// Per-rule confidence.
    conf: Vec<Confidence>,
    /// Per-rule: clears η.
    active: Vec<bool>,
    /// The full answer implied by the warm pass (sorted): the warming
    /// request returns this directly instead of evaluating its
    /// candidates a second time.
    warm_customers: Vec<NodeId>,
    /// Candidates the warm pass evaluated / sketch-pruned.
    warm_evaluated: usize,
    warm_pruned: usize,
}

/// Per-worker-thread reusable state. The pattern-sketch cache and search
/// arena are `Rc`-based (thread-local by construction), so each worker
/// keeps its own instances and hands clones to every evaluator it
/// builds — pattern-side sketches are derived once per worker, and
/// search/traversal buffers are grown once per worker, not once per
/// request.
#[derive(Default)]
struct WorkerCaches {
    psketch: FxHashMap<Predicate, gpar_iso::PatternSketchCache>,
    /// Matcher search-state arena shared by every evaluator this worker
    /// builds; its embedded neighborhood scratch also serves d-ball
    /// extraction on cache misses (`SharedScratch::with_neighborhood`).
    scratch: gpar_iso::SharedScratch,
}

impl WorkerCaches {
    fn pattern_cache(&mut self, pred: &Predicate) -> gpar_iso::PatternSketchCache {
        self.psketch.entry(*pred).or_default().clone()
    }
}

struct Shared {
    graph: Arc<Graph>,
    index: CandidateIndex,
    cfg: ServeConfig,
    cache: Mutex<LruCache<(NodeId, u32), Arc<CenterSite>>>,
    states: RwLock<FxHashMap<Predicate, Arc<PredicateState>>>,
    /// Serializes warm-up passes so concurrent cold queries for one
    /// predicate don't all run the full O(|L|) scan (warm-ups happen once
    /// per predicate, so cross-predicate contention here is negligible).
    warm_lock: Mutex<()>,
    queries: AtomicU64,
    warmups: AtomicU64,
}

impl Shared {
    fn site(&self, center: NodeId, d: u32, nbr: &mut NeighborhoodScratch) -> Arc<CenterSite> {
        let key = (center, d);
        if let Some(hit) = self.cache.lock().unwrap().get(&key) {
            return hit;
        }
        // Extract outside the lock: extraction is the expensive part and
        // must not serialize the pool. Rarely two workers race on the
        // same cold center and both extract; last insert wins, both use
        // their own (identical) site. The worker's traversal scratch is
        // reused across misses.
        let site = Arc::new(CenterSite::build_with(&self.graph, center, d, nbr));
        self.cache.lock().unwrap().insert(key, site.clone());
        site
    }

    fn opts(&self) -> MatchOpts {
        MatchOpts::for_algorithm(self.cfg.algorithm)
    }

    /// Builds the per-request evaluator: the group's pre-built sharing
    /// plan plus the worker's persistent pattern-sketch cache, so
    /// pattern-side sketches are derived once per worker rather than once
    /// per request.
    fn evaluator<'r>(
        &self,
        group: &'r PredicateGroup,
        caches: &mut WorkerCaches,
    ) -> CandidateEvaluator<'r> {
        CandidateEvaluator::with_plan_and_sketches(
            &group.rules,
            self.opts(),
            group.plan.clone(),
            group.eval_sketches.clone(),
        )
        .with_pattern_cache(caches.pattern_cache(&group.predicate))
        .with_scratch(caches.scratch.clone())
    }

    /// Returns the warmed state for `group`, performing the full-candidate
    /// evaluation pass if this predicate has not been touched yet.
    fn state(
        &self,
        group: &PredicateGroup,
        caches: &mut WorkerCaches,
    ) -> (Arc<PredicateState>, bool) {
        if let Some(s) = self.states.read().unwrap().get(&group.predicate) {
            return (s.clone(), false);
        }
        // Cold predicate: serialize warmers so losers wait for the winner
        // instead of redoing the full O(|L|) scan.
        let _warming = self.warm_lock.lock().unwrap();
        if let Some(s) = self.states.read().unwrap().get(&group.predicate) {
            return (s.clone(), false);
        }
        let state = Arc::new(self.warm(group, caches));
        self.warmups.fetch_add(1, Ordering::Relaxed);
        self.states.write().unwrap().insert(group.predicate, state.clone());
        (state, true)
    }

    /// The warm-up pass: evaluate every candidate once and assemble the
    /// exact global statistics, exactly as `gpar_eip::identify`'s step 3.
    fn warm(&self, group: &PredicateGroup, caches: &mut WorkerCaches) -> PredicateState {
        let n = group.rules.len();
        let ev = self.evaluator(group, caches);
        let mut supp_q = 0u64;
        let mut supp_qbar = 0u64;
        // Per rule: (supp_r, supp_q_qbar, supp_q_ante).
        let mut per_rule = vec![(0u64, 0u64, 0u64); n];
        // Antecedent memberships of centers that matched anything — kept
        // so the warming request can answer without a second pass (which
        // rules gate as customers depends on η, known only at the end).
        let mut memberships: Vec<(NodeId, Vec<bool>)> = Vec::new();
        let mut warm_evaluated = 0usize;
        let mut warm_pruned = 0usize;
        for (i, &c) in group.centers.iter().enumerate() {
            // LCWA class is rule-independent and must count *every*
            // candidate, including sketch-pruned ones.
            let class = classify(&self.graph, &group.predicate, c)
                .expect("centers satisfy x's condition by construction");
            match class {
                LcwaClass::Positive => supp_q += 1,
                LcwaClass::Negative => supp_qbar += 1,
                LcwaClass::Unknown => {}
            }
            if !group.center_may_match(i) {
                warm_pruned += 1;
                continue; // member of no antecedent: contributes nothing
            }
            warm_evaluated += 1;
            let site = caches.scratch.with_neighborhood(|nbr| self.site(c, group.d, nbr));
            let o = ev.evaluate(&site);
            debug_assert_eq!(o.class, class, "site and global LCWA must agree");
            for (r, slot) in per_rule.iter_mut().enumerate() {
                if o.q_member[r] {
                    slot.2 += 1;
                    if class == LcwaClass::Negative {
                        slot.1 += 1;
                    }
                }
                if o.pr_member[r] && class == LcwaClass::Positive {
                    slot.0 += 1;
                }
            }
            if o.q_member.iter().any(|&m| m) {
                memberships.push((c, o.q_member));
            }
        }
        let stats: Vec<ConfStats> = per_rule
            .into_iter()
            .map(|(supp_r, supp_q_qbar, supp_q_ante)| ConfStats {
                supp_r,
                supp_q_ante,
                supp_q,
                supp_qbar,
                supp_q_qbar,
            })
            .collect();
        let conf: Vec<Confidence> = stats.iter().map(ConfStats::conf).collect();
        let active: Vec<bool> = conf.iter().map(|c| c.at_least(self.cfg.eta)).collect();
        let mut warm_customers: Vec<NodeId> = memberships
            .into_iter()
            .filter(|(_, qm)| qm.iter().zip(&active).any(|(&m, &a)| m && a))
            .map(|(c, _)| c)
            .collect();
        warm_customers.sort_unstable();
        PredicateState { stats, conf, active, warm_customers, warm_evaluated, warm_pruned }
    }

    fn identify(
        &self,
        req: &IdentifyRequest,
        caches: &mut WorkerCaches,
    ) -> Result<IdentifyResponse, QueryError> {
        let group = self.index.group(&req.predicate).ok_or(QueryError::UnknownPredicate)?;
        let (state, warmed) = self.state(group, caches);
        if warmed {
            // This request performed the warm-up, which already evaluated
            // every candidate — answer from that pass instead of doubling
            // the cold-query latency.
            let customers = match &req.candidates {
                None => state.warm_customers.clone(),
                Some(cands) => {
                    let mut v: Vec<NodeId> = cands
                        .iter()
                        .filter(|c| state.warm_customers.binary_search(c).is_ok())
                        .copied()
                        .collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                }
            };
            return Ok(IdentifyResponse {
                customers,
                evaluated: state.warm_evaluated,
                pruned: state.warm_pruned,
                warmed: true,
            });
        }
        let ev = self.evaluator(group, caches);

        // Position of each center in `centers` (for sketch lookup).
        let positions: Vec<usize> = match &req.candidates {
            None => (0..group.centers.len()).collect(),
            Some(cands) => {
                // Intersect with L; ids outside L are not candidates (no
                // x-condition match) and are silently excluded, exactly as
                // EIP never considers them.
                // `centers` is in id order, so one binary search both
                // tests membership and yields the position.
                let mut pos: Vec<usize> =
                    cands.iter().filter_map(|c| group.centers.binary_search(c).ok()).collect();
                pos.sort_unstable();
                pos.dedup();
                pos
            }
        };

        let mut customers = Vec::new();
        let mut evaluated = 0usize;
        let mut pruned = 0usize;
        for i in positions {
            let c = group.centers[i];
            if !group.center_may_match(i) {
                pruned += 1;
                continue;
            }
            evaluated += 1;
            let site = caches.scratch.with_neighborhood(|nbr| self.site(c, group.d, nbr));
            let o = ev.evaluate(&site);
            if o.q_member.iter().zip(&state.active).any(|(&m, &a)| m && a) {
                customers.push(c);
            }
        }
        customers.sort_unstable();
        Ok(IdentifyResponse { customers, evaluated, pruned, warmed })
    }

    fn top_rules(
        &self,
        pred: &Predicate,
        k: usize,
        caches: &mut WorkerCaches,
    ) -> Result<Vec<RuleInfo>, QueryError> {
        let group = self.index.group(pred).ok_or(QueryError::UnknownPredicate)?;
        let (state, _) = self.state(group, caches);
        let mut out: Vec<RuleInfo> = group
            .rule_arcs
            .iter()
            .enumerate()
            .map(|(r, rule)| RuleInfo {
                rule: rule.clone(),
                confidence: state.conf[r],
                stats: state.stats[r],
                active: state.active[r],
            })
            .collect();
        out.sort_by(|a, b| {
            b.confidence
                .ranking_value()
                .total_cmp(&a.confidence.ranking_value())
                .then(b.stats.supp_r.cmp(&a.stats.supp_r))
        });
        out.truncate(k);
        Ok(out)
    }
}

enum Job {
    Identify(IdentifyRequest, Sender<Result<IdentifyResponse, QueryError>>),
    TopRules(Predicate, usize, Sender<Result<Vec<RuleInfo>, QueryError>>),
}

/// The serving engine: index + warm state + fixed worker pool.
///
/// Cloning is not supported; share the engine behind an `Arc` if multiple
/// frontends submit queries. Dropping the engine shuts the pool down and
/// joins every worker.
pub struct ServeEngine {
    shared: Arc<Shared>,
    jobs: Arc<Injector<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Builds the index for `(graph, catalog)` and spawns the pool.
    pub fn new(graph: Arc<Graph>, catalog: &RuleCatalog, cfg: ServeConfig) -> Self {
        let index = CandidateIndex::build(
            &graph,
            catalog,
            cfg.sketch_k,
            cfg.d,
            &MatchOpts::for_algorithm(cfg.algorithm),
        );
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            states: RwLock::new(FxHashMap::default()),
            warm_lock: Mutex::new(()),
            queries: AtomicU64::new(0),
            warmups: AtomicU64::new(0),
            graph,
            index,
            cfg,
        });
        let jobs: Arc<Injector<Job>> = Arc::new(Injector::new());
        let handles = (0..workers)
            .map(|_| {
                let shared = shared.clone();
                let jobs = jobs.clone();
                std::thread::spawn(move || worker_loop(shared, jobs))
            })
            .collect();
        Self { shared, jobs, handles }
    }

    fn submit(&self, job: Job) -> Result<(), QueryError> {
        self.jobs.push(job).map_err(|_| QueryError::Stopped)
    }

    /// `Σ_p(x, G, η)` over `candidates` (or all candidates): submits one
    /// job to the pool and blocks for the answer.
    pub fn identify(
        &self,
        predicate: Predicate,
        candidates: Option<Vec<NodeId>>,
    ) -> Result<IdentifyResponse, QueryError> {
        let (tx, rx) = channel();
        self.submit(Job::Identify(IdentifyRequest { predicate, candidates }, tx))?;
        rx.recv().map_err(|_| QueryError::Stopped)?
    }

    /// Submits a whole batch concurrently and collects the answers in
    /// request order. With `workers > 1`, requests overlap.
    pub fn identify_batch(
        &self,
        reqs: Vec<IdentifyRequest>,
    ) -> Vec<Result<IdentifyResponse, QueryError>> {
        let mut waits = Vec::with_capacity(reqs.len());
        for req in reqs {
            let (tx, rx) = channel();
            match self.submit(Job::Identify(req, tx)) {
                Ok(()) => waits.push(Ok(rx)),
                Err(e) => waits.push(Err(e)),
            }
        }
        waits
            .into_iter()
            .map(|w| match w {
                Ok(rx) => rx.recv().unwrap_or(Err(QueryError::Stopped)),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// The `k` highest-confidence rules for `pred`, with exact confidence
    /// on the serving graph (warms the predicate if needed).
    pub fn top_rules(&self, predicate: Predicate, k: usize) -> Result<Vec<RuleInfo>, QueryError> {
        let (tx, rx) = channel();
        self.submit(Job::TopRules(predicate, k, tx))?;
        rx.recv().map_err(|_| QueryError::Stopped)?
    }

    /// Predicates this engine can serve.
    pub fn predicates(&self) -> Vec<Predicate> {
        self.shared.index.groups().map(|g| g.predicate).collect()
    }

    /// A counters snapshot.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.shared.queries.load(Ordering::Relaxed),
            warmups: self.shared.warmups.load(Ordering::Relaxed),
            cache: self.shared.cache.lock().unwrap().stats(),
        }
    }

    /// The serving graph.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.shared.graph
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Closing the injector drains in-flight jobs and wakes every
        // blocked worker to exit.
        self.jobs.close();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, jobs: Arc<Injector<Job>>) {
    let mut caches = WorkerCaches::default();
    // `pop` blocks while the injector is open; `None` = closed + drained.
    while let Some(job) = jobs.pop() {
        shared.queries.fetch_add(1, Ordering::Relaxed);
        match job {
            Job::Identify(req, reply) => {
                let _ = reply.send(shared.identify(&req, &mut caches));
            }
            Job::TopRules(pred, k, reply) => {
                let _ = reply.send(shared.top_rules(&pred, k, &mut caches));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_eip::{identify as eip_identify, EipConfig};
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    /// The EIP test scenario: 10 positives, 2 negatives, 3 unknowns.
    fn scenario() -> (Arc<Graph>, RuleCatalog, Predicate) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        for _ in 0..10 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
            b.add_edge(c, r, visit);
        }
        for _ in 0..2 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            let bb = b.add_node(bar);
            b.add_edge(c, r, like);
            b.add_edge(c, bb, visit);
        }
        for _ in 0..3 {
            let c = b.add_node(cust);
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
        }
        let g = Arc::new(b.build());
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let rule = Arc::new(Gpar::new(pb.designate(x, y).build().unwrap(), visit).unwrap());
        let pred = *rule.predicate();
        let mut cat = RuleCatalog::new(vocab);
        cat.insert(rule, ConfStats::default());
        (g, cat, pred)
    }

    fn sorted(set: &gpar_graph::FxHashSet<NodeId>) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = set.iter().copied().collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn full_identify_equals_direct_eip() {
        let (g, cat, pred) = scenario();
        let sigma: Vec<Gpar> = cat.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
        for eta in [0.5, 1.5] {
            let eip = eip_identify(
                &g,
                &sigma,
                &EipConfig { eta, ..EipConfig::new(EipAlgorithm::Match, 3) },
            )
            .unwrap();
            for workers in [1, 3] {
                let engine = ServeEngine::new(
                    g.clone(),
                    &cat,
                    ServeConfig { workers, eta, ..Default::default() },
                );
                let res = engine.identify(pred, None).unwrap();
                assert_eq!(res.customers, sorted(&eip.customers), "eta {eta} w {workers}");
            }
        }
    }

    #[test]
    fn subset_identify_is_the_intersection() {
        let (g, cat, pred) = scenario();
        let sigma: Vec<Gpar> = cat.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
        let eip = eip_identify(
            &g,
            &sigma,
            &EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, 2) },
        )
        .unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        // Mixed subset: members, non-members, non-candidates, duplicates.
        let subset = vec![NodeId(0), NodeId(1), NodeId(2), NodeId(0), NodeId(9999)];
        let res = engine.identify(pred, Some(subset.clone())).unwrap();
        let mut expect: Vec<NodeId> =
            subset.iter().filter(|c| eip.customers.contains(c)).copied().collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(res.customers, expect);
    }

    #[test]
    fn warm_state_matches_eip_stats_and_top_rules_rank() {
        let (g, cat, pred) = scenario();
        let sigma: Vec<Gpar> = cat.rules_for(&pred).iter().map(|e| (*e.rule).clone()).collect();
        let eip = eip_identify(
            &g,
            &sigma,
            &EipConfig { eta: 0.5, ..EipConfig::new(EipAlgorithm::Match, 2) },
        )
        .unwrap();
        let engine =
            ServeEngine::new(g.clone(), &cat, ServeConfig { eta: 0.5, ..Default::default() });
        let top = engine.top_rules(pred, 10).unwrap();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].stats, eip.per_rule[0].stats, "serving stats must equal EIP's");
        assert_eq!(top[0].confidence, eip.per_rule[0].confidence);
        assert!(top[0].active);
        assert_eq!(engine.stats().warmups, 1);
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let (g, cat, pred) = scenario();
        let engine = ServeEngine::new(
            g,
            &cat,
            ServeConfig { eta: 0.5, cache_capacity: 64, ..Default::default() },
        );
        // Customers sit at even ids in the scenario graph (cust, rest pairs).
        let hot = vec![NodeId(0), NodeId(2), NodeId(6)];
        engine.identify(pred, Some(hot.clone())).unwrap(); // warms + fills
        let before = engine.stats().cache;
        for _ in 0..5 {
            engine.identify(pred, Some(hot.clone())).unwrap();
        }
        let after = engine.stats().cache;
        assert_eq!(after.hits - before.hits, 15, "3 hot centers × 5 queries");
        assert_eq!(after.misses, before.misses, "no re-extraction of hot centers");
    }

    #[test]
    fn batch_is_consistent_with_serial_and_unknown_predicate_errors() {
        let (g, cat, pred) = scenario();
        let engine = ServeEngine::new(
            g.clone(),
            &cat,
            ServeConfig { eta: 0.5, workers: 4, ..Default::default() },
        );
        let serial = engine.identify(pred, None).unwrap().customers;
        let reqs: Vec<IdentifyRequest> = (0..16)
            .map(|i| IdentifyRequest {
                predicate: pred,
                candidates: (i % 2 == 0).then(|| vec![NodeId(i as u32 % 12)]),
            })
            .collect();
        let answers = engine.identify_batch(reqs.clone());
        for (req, ans) in reqs.iter().zip(answers) {
            let ans = ans.unwrap();
            match &req.candidates {
                None => assert_eq!(ans.customers, serial),
                Some(c) => {
                    let expect: Vec<NodeId> =
                        c.iter().filter(|x| serial.contains(x)).copied().collect();
                    assert_eq!(ans.customers, expect);
                }
            }
        }
        // A predicate nobody mined for.
        let vocab = engine.graph().vocab().clone();
        let ghost = Predicate::new(
            gpar_pattern::NodeCond::Label(vocab.intern("cust")),
            vocab.intern("never_mined"),
            gpar_pattern::NodeCond::Any,
        );
        assert_eq!(engine.identify(ghost, None).unwrap_err(), QueryError::UnknownPredicate);
    }

    #[test]
    fn engine_shuts_down_cleanly_under_load() {
        let (g, cat, pred) = scenario();
        let engine =
            ServeEngine::new(g, &cat, ServeConfig { eta: 0.5, workers: 3, ..Default::default() });
        for _ in 0..8 {
            engine.identify(pred, Some(vec![NodeId(0)])).unwrap();
        }
        drop(engine); // must join all workers without hanging
    }
}
