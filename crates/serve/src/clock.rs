//! The update frontier clock: staleness accounting for accepted-but-
//! unpublished update batches.
//!
//! [`UpdateClock`] tracks updates accepted into the write pipeline but
//! not yet settled (published or rejected), with each batch's accept
//! instant. Staleness-bounded reads measure the published snapshot's lag
//! as the age of the oldest pending batch and block in
//! [`UpdateClock::wait_within`] until the writer catches up.
//!
//! The protocol is small but easy to get wrong — a settle that lands
//! between a waiter's predicate check and its park must not be lost.
//! It is public (rather than private to the engine) so the
//! `gpar-model-tests` suite can drive it on the model checker's
//! instrumented `Mutex`/`Condvar` and explore exactly that window.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Tracks updates accepted into the pipeline but not yet settled
/// (published or rejected), with each batch's accept instant. Staleness-
/// bounded reads measure the published snapshot's lag as the age of the
/// oldest pending batch, and wait on the condvar when it exceeds their
/// bound.
#[derive(Default)]
pub struct UpdateClock {
    pending: Mutex<VecDeque<Instant>>,
    settled_cv: Condvar,
}

impl UpdateClock {
    /// Records one accepted batch. Returns its accept instant.
    pub fn submit(&self) -> Instant {
        let now = gpar_obs::Ts::monotonic_now();
        self.pending.lock().push_back(now);
        now
    }

    /// Retires the `k` oldest pending batches (published or failed) and
    /// wakes staleness waiters.
    pub fn settle(&self, k: usize) {
        let mut q = self.pending.lock();
        let n = k.min(q.len());
        q.drain(..n);
        drop(q);
        self.settled_cv.notify_all();
    }

    /// Whether any accepted batch is still unpublished.
    pub fn has_pending(&self) -> bool {
        !self.pending.lock().is_empty()
    }

    /// Age of the oldest accepted-but-unpublished batch, if any.
    pub fn frontier_age(&self) -> Option<Duration> {
        self.pending.lock().front().map(Instant::elapsed)
    }

    /// Blocks until the publish lag is within `bound` (the oldest
    /// pending batch is younger than it, or nothing is pending). `check`
    /// runs before every park and aborts the wait by returning `Err`
    /// (the engine passes its request-deadline probe). The short timeout
    /// re-check guards against a missed wakeup and keeps the deadline
    /// responsive.
    pub fn wait_within<E>(
        &self,
        bound: Duration,
        mut check: impl FnMut() -> Result<(), E>,
    ) -> Result<(), E> {
        let mut q = self.pending.lock();
        loop {
            match q.front() {
                None => return Ok(()),
                Some(t) if t.elapsed() <= bound => return Ok(()),
                Some(_) => {}
            }
            check()?;
            let (guard, _) = self.settled_cv.wait_for(q, Duration::from_millis(20));
            q = guard;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_settle_roundtrip() {
        let clock = UpdateClock::default();
        assert!(!clock.has_pending());
        assert!(clock.frontier_age().is_none());
        clock.submit();
        clock.submit();
        assert!(clock.has_pending());
        assert!(clock.frontier_age().is_some());
        clock.settle(1);
        assert!(clock.has_pending(), "one of two batches still pending");
        clock.settle(10);
        assert!(!clock.has_pending(), "over-settling is a no-op");
    }

    #[test]
    fn wait_within_aborts_via_check() {
        let clock = UpdateClock::default();
        clock.submit();
        std::thread::sleep(Duration::from_millis(5));
        let mut polls = 0;
        let out: Result<(), &str> = clock.wait_within(Duration::ZERO, || {
            polls += 1;
            if polls >= 2 {
                Err("deadline")
            } else {
                Ok(())
            }
        });
        assert_eq!(out, Err("deadline"), "check error propagates out of the wait");
    }

    /// A panic while holding the clock's `pending` queue (e.g. a chaos
    /// failpoint firing inside the write pipeline) must not poison the
    /// clock: staleness-bounded reads keep working afterwards.
    #[test]
    fn update_clock_survives_panic_while_held() {
        let clock = std::sync::Arc::new(UpdateClock::default());
        let c2 = std::sync::Arc::clone(&clock);
        let t = std::thread::spawn(move || {
            let _held = c2.pending.lock();
            panic!("failpoint fired while holding the clock");
        });
        assert!(t.join().is_err());

        // Submit + settle + bounded wait all still function.
        clock.submit();
        assert!(clock.has_pending());
        assert!(clock.frontier_age().is_some());
        clock.settle(1);
        assert!(!clock.has_pending());
        clock
            .wait_within::<()>(Duration::from_millis(1), || Ok(()))
            .expect("empty clock is within any bound");
    }

    #[test]
    fn wait_within_returns_once_settled() {
        let clock = std::sync::Arc::new(UpdateClock::default());
        clock.submit();
        std::thread::sleep(Duration::from_millis(5));
        let settler = {
            let clock = clock.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                clock.settle(1);
            })
        };
        let out: Result<(), ()> = clock.wait_within(Duration::ZERO, || Ok(()));
        assert_eq!(out, Ok(()), "settle wakes the staleness waiter");
        settler.join().unwrap();
    }
}
