//! Deterministic, seed-driven fault injection.
//!
//! The serving stack is sprinkled with named *failpoints* — call sites
//! like `serve::update::plan` or `exec::task` that, when a fault plan is
//! armed, may panic, sleep, report a full queue, or poison a batch. Every
//! decision is a pure function of `(plan seed, site name, per-site hit
//! counter)`, so a failing fault sequence replays exactly from its seed:
//! no clocks, no thread ids, no global RNG.
//!
//! Without the `chaos` cargo feature (the default) every entry point
//! compiles to an inert no-op — zero branches, zero atomics, zero state —
//! so production builds pay nothing. With the feature enabled but no plan
//! armed, each failpoint is a single relaxed atomic load.
//!
//! Faults are only ever injected at sites the host code has proven safe
//! to fail at: panics fire exclusively inside `catch_unwind` containment
//! (the serve worker loop, the pre-commit planning half of
//! `apply_update`), while sites that must not unwind (executor tasks,
//! post-commit repair) use [`delaypoint`], which only ever sleeps.

use std::time::Duration;

/// A fault plan: probabilities (in parts per 1024) for each fault class,
/// all driven by one seed. Armed globally via [`arm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for every injection decision; same seed ⇒ same fault sequence.
    pub seed: u64,
    /// Chance (per 1024) that a [`failpoint`] hit panics.
    pub panic_ppk: u32,
    /// Chance (per 1024) that a [`failpoint`] / [`delaypoint`] hit sleeps.
    pub delay_ppk: u32,
    /// Sleep length for delay faults.
    pub delay: Duration,
    /// Chance (per 1024) that [`should_reject_queue`] reports a full queue.
    pub queue_full_ppk: u32,
    /// Chance (per 1024) that [`should_poison_batch`] rejects the batch.
    pub poison_batch_ppk: u32,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            panic_ppk: 0,
            delay_ppk: 0,
            delay: Duration::from_micros(200),
            queue_full_ppk: 0,
            poison_batch_ppk: 0,
        }
    }
}

/// Faults actually fired since the plan was armed; returned by [`disarm`]
/// so test suites can assert the run exercised what it meant to.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosTally {
    /// Panics raised by [`failpoint`].
    pub panics: u64,
    /// Sleeps performed by [`failpoint`] / [`delaypoint`].
    pub delays: u64,
    /// Queue-full rejections reported by [`should_reject_queue`].
    pub queue_fulls: u64,
    /// Batches poisoned by [`should_poison_batch`].
    pub poisoned_batches: u64,
}

impl ChaosTally {
    /// Total faults of any class.
    pub fn total(&self) -> u64 {
        self.panics + self.delays + self.queue_fulls + self.poisoned_batches
    }
}

#[cfg(feature = "chaos")]
mod armed {
    use super::{ChaosPlan, ChaosTally};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicBool;

    /// Fast-path flag: failpoints bail on one relaxed load when no plan
    /// is armed, so an enabled-but-idle build stays near-free.
    pub(super) static ARMED: AtomicBool = AtomicBool::new(false);
    pub(super) static STATE: Mutex<Option<PlanState>> = Mutex::new(None);

    pub(super) struct PlanState {
        pub plan: ChaosPlan,
        /// Per-site hit counters: decision `n` at a site is independent
        /// of every other site's traffic, so adding a failpoint elsewhere
        /// never perturbs an existing seed's sequence here.
        pub hits: HashMap<&'static str, u64>,
        pub tally: ChaosTally,
    }

    /// splitmix64: tiny, well-mixed, and exactly reproducible.
    pub(super) fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(super) fn site_hash(site: &str) -> u64 {
        // FNV-1a over the site name; stable across runs and platforms.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in site.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The decision word for hit `hit` at `site` under `seed`, salted per
    /// fault class so e.g. panic and delay rolls are independent.
    pub(super) fn roll(seed: u64, site: &str, hit: u64, salt: u64) -> u64 {
        splitmix64(seed ^ splitmix64(site_hash(site) ^ splitmix64(hit ^ salt)))
    }

    pub(super) fn hits_ppk(word: u64, ppk: u32) -> bool {
        ppk > 0 && (word & 1023) < u64::from(ppk)
    }
}

/// What a [`failpoint`] decided to do for one hit.
#[cfg(feature = "chaos")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Decision {
    None,
    Delay(Duration),
    Panic,
}

/// Arms `plan` globally, resetting hit counters and the fault tally.
/// No-op without the `chaos` feature.
pub fn arm(plan: ChaosPlan) {
    #[cfg(feature = "chaos")]
    {
        use std::sync::atomic::Ordering;
        let mut state = armed::STATE.lock();
        *state = Some(armed::PlanState {
            plan,
            hits: std::collections::HashMap::new(),
            tally: ChaosTally::default(),
        });
        // ordering: Release pairs with the Acquire in `is_armed` — a
        // thread that observes the flag set also observes the plan write
        // above. (Failpoint fast paths re-check under the state lock, so
        // their Relaxed loads never act on a stale plan.)
        armed::ARMED.store(true, Ordering::Release);
    }
    #[cfg(not(feature = "chaos"))]
    let _ = plan;
}

/// Disarms the active plan and returns the tally of faults it fired.
/// No-op (zero tally) without the `chaos` feature.
pub fn disarm() -> ChaosTally {
    #[cfg(feature = "chaos")]
    {
        use std::sync::atomic::Ordering;
        // ordering: Release mirrors `arm`'s store; failpoints that still
        // see the flag set race harmlessly into the lock below and find
        // the plan gone.
        armed::ARMED.store(false, Ordering::Release);
        let mut state = armed::STATE.lock();
        state.take().map(|s| s.tally).unwrap_or_default()
    }
    #[cfg(not(feature = "chaos"))]
    ChaosTally::default()
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    #[cfg(feature = "chaos")]
    {
        // ordering: Acquire pairs with `arm`'s Release store so a caller
        // that sees `true` also sees the armed plan.
        armed::ARMED.load(std::sync::atomic::Ordering::Acquire)
    }
    #[cfg(not(feature = "chaos"))]
    false
}

/// The tally so far under the active plan (zero when disarmed).
pub fn tally() -> ChaosTally {
    #[cfg(feature = "chaos")]
    {
        let state = armed::STATE.lock();
        state.as_ref().map(|s| s.tally).unwrap_or_default()
    }
    #[cfg(not(feature = "chaos"))]
    ChaosTally::default()
}

#[cfg(feature = "chaos")]
fn decide(site: &'static str, allow_panic: bool) -> Decision {
    use std::sync::atomic::Ordering;
    // ordering: Relaxed is the disarmed fast path — no plan data is read
    // on it, and an armed hit re-validates under the state lock below.
    if !armed::ARMED.load(Ordering::Relaxed) {
        return Decision::None;
    }
    let mut guard = armed::STATE.lock();
    let Some(state) = guard.as_mut() else {
        return Decision::None;
    };
    let hit = {
        let h = state.hits.entry(site).or_insert(0);
        let v = *h;
        *h += 1;
        v
    };
    let seed = state.plan.seed;
    if allow_panic && armed::hits_ppk(armed::roll(seed, site, hit, 0), state.plan.panic_ppk) {
        state.tally.panics += 1;
        return Decision::Panic;
    }
    if armed::hits_ppk(armed::roll(seed, site, hit, 1), state.plan.delay_ppk) {
        state.tally.delays += 1;
        return Decision::Delay(state.plan.delay);
    }
    Decision::None
}

#[cfg(feature = "chaos")]
fn class_roll(site: &'static str, salt: u64, pick_ppk: fn(&ChaosPlan) -> u32) -> bool {
    use std::sync::atomic::Ordering;
    // ordering: Relaxed fast path, same contract as `decide`.
    if !armed::ARMED.load(Ordering::Relaxed) {
        return false;
    }
    let mut guard = armed::STATE.lock();
    let Some(state) = guard.as_mut() else {
        return false;
    };
    let hit = {
        let h = state.hits.entry(site).or_insert(0);
        let v = *h;
        *h += 1;
        v
    };
    armed::hits_ppk(armed::roll(state.plan.seed, site, hit, salt), pick_ppk(&state.plan))
}

/// A full failpoint: may panic (with a `"chaos: injected panic at
/// <site>"` message) or sleep, per the armed plan. Place only where the
/// host code contains unwinding. Inert no-op without the `chaos` feature.
#[inline]
pub fn failpoint(site: &'static str) {
    #[cfg(feature = "chaos")]
    // The decision is computed (and tallied) under the state lock, then
    // acted on after it is released — a panic must not poison the lock.
    match decide(site, true) {
        Decision::None => {}
        Decision::Delay(d) => std::thread::sleep(d),
        Decision::Panic => panic!("chaos: injected panic at {site}"),
    }
    #[cfg(not(feature = "chaos"))]
    let _ = site;
}

/// A delay-only failpoint for sites that must never unwind (executor
/// tasks, post-commit repair). Inert no-op without the `chaos` feature.
#[inline]
pub fn delaypoint(site: &'static str) {
    #[cfg(feature = "chaos")]
    match decide(site, false) {
        Decision::None | Decision::Panic => {}
        Decision::Delay(d) => std::thread::sleep(d),
    }
    #[cfg(not(feature = "chaos"))]
    let _ = site;
}

/// Whether admission should pretend the queue is full at this hit.
/// Always `false` without the `chaos` feature.
#[inline]
pub fn should_reject_queue(site: &'static str) -> bool {
    #[cfg(feature = "chaos")]
    {
        let fired = class_roll(site, 2, |p| p.queue_full_ppk);
        if fired {
            if let Some(s) = armed::STATE.lock().as_mut() {
                s.tally.queue_fulls += 1;
            }
        }
        fired
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = site;
        false
    }
}

/// Whether this update batch should be rejected as poisoned before any
/// work happens. Always `false` without the `chaos` feature.
#[inline]
pub fn should_poison_batch(site: &'static str) -> bool {
    #[cfg(feature = "chaos")]
    {
        let fired = class_roll(site, 3, |p| p.poison_batch_ppk);
        if fired {
            if let Some(s) = armed::STATE.lock().as_mut() {
                s.tally.poisoned_batches += 1;
            }
        }
        fired
    }
    #[cfg(not(feature = "chaos"))]
    {
        let _ = site;
        false
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // Chaos state is process-global; serialize the tests that arm it.
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> MutexGuard<'static, ()> {
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record(seed: u64, hits: usize) -> Vec<(bool, bool)> {
        arm(ChaosPlan { seed, queue_full_ppk: 512, poison_batch_ppk: 512, ..ChaosPlan::default() });
        let out = (0..hits)
            .map(|_| (should_reject_queue("test::queue"), should_poison_batch("test::batch")))
            .collect();
        disarm();
        out
    }

    #[test]
    fn decisions_replay_exactly_from_the_seed() {
        let _g = gate();
        let a = record(42, 256);
        let b = record(42, 256);
        assert_eq!(a, b, "same seed must give the same fault sequence");
        let c = record(43, 256);
        assert_ne!(a, c, "different seeds should diverge at 512/1024 odds");
    }

    #[test]
    fn unarmed_failpoints_are_inert_even_with_the_feature_on() {
        let _g = gate();
        disarm();
        assert!(!is_armed());
        for _ in 0..64 {
            failpoint("test::inert");
            delaypoint("test::inert");
            assert!(!should_reject_queue("test::inert"));
            assert!(!should_poison_batch("test::inert"));
        }
        assert_eq!(tally(), ChaosTally::default());
    }

    #[test]
    fn tally_counts_fired_faults() {
        let _g = gate();
        arm(ChaosPlan {
            seed: 7,
            delay_ppk: 1024,
            delay: Duration::from_micros(1),
            queue_full_ppk: 1024,
            ..ChaosPlan::default()
        });
        delaypoint("test::tally");
        delaypoint("test::tally");
        assert!(should_reject_queue("test::tally"));
        let t = disarm();
        assert_eq!(t.delays, 2);
        assert_eq!(t.queue_fulls, 1);
        assert_eq!(t.panics, 0);
        assert_eq!(t.total(), 3);
    }

    #[test]
    fn injected_panics_carry_the_site_and_do_not_poison_state() {
        let _g = gate();
        arm(ChaosPlan { seed: 1, panic_ppk: 1024, ..ChaosPlan::default() });
        let err = std::panic::catch_unwind(|| failpoint("test::panic"))
            .expect_err("panic_ppk=1024 must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("test::panic"), "panic names its site: {msg}");
        // State survives: the next hit still decides (and the lock is fine).
        assert_eq!(tally().panics, 1);
        disarm();
    }
}
