//! Incremental diversification (`incDiv`, §4.2).
//!
//! The coordinator maintains a max priority queue of `⌈k/2⌉` *pairwise
//! disjoint* GPAR pairs scored by
//! `F'(R, R') = (1−λ)/(N(k−1))·(conf(R)+conf(R')) + 2λ/(k−1)·diff(R, R')`.
//! Maximizing the sum of `F'` over disjoint pairs is the max-sum
//! dispersion problem, whose greedy achieves approximation ratio 2
//! (Gollapudi & Sharma [19]) — this is the constant of Theorem 2.

use crate::messages::MinedRule;
use gpar_core::{pair_score, DiversifyParams};
use gpar_graph::FxHashSet;

/// One queued pair of rule indices with its `F'` score.
#[derive(Debug, Clone, Copy)]
pub struct QueuedPair {
    /// Index of the first rule in the coordinator's Σ store.
    pub a: usize,
    /// Index of the second rule.
    pub b: usize,
    /// `F'(a, b)`.
    pub score: f64,
}

/// The incremental top-k maintainer.
#[derive(Debug)]
pub struct IncDiv {
    params: DiversifyParams,
    capacity: usize,
    pairs: Vec<QueuedPair>,
    in_queue: FxHashSet<usize>,
}

impl IncDiv {
    /// Creates a maintainer for top-`k` (queue capacity `⌈k/2⌉`).
    pub fn new(params: DiversifyParams) -> Self {
        let capacity = params.k.div_ceil(2);
        Self { params, capacity, pairs: Vec::new(), in_queue: FxHashSet::default() }
    }

    /// The diversification parameters in force.
    pub fn params(&self) -> &DiversifyParams {
        &self.params
    }

    /// `F'_m` — the minimum pair score in the queue, used by the
    /// Lemma 3 reduction rules. Returns `None` while the queue is not yet
    /// full (the rules must not fire then: any candidate can still enter).
    pub fn fm(&self) -> Option<f64> {
        if self.pairs.len() < self.capacity {
            return None;
        }
        self.pairs.iter().map(|p| p.score).min_by(f64::total_cmp)
    }

    /// Whether rule `i` currently sits in the queue (hence in `L_k`).
    pub fn contains(&self, i: usize) -> bool {
        self.in_queue.contains(&i)
    }

    fn score(&self, rules: &[MinedRule], i: usize, j: usize) -> f64 {
        pair_score(
            &self.params,
            rules[i].conf_value,
            rules[j].conf_value,
            &rules[i].matches,
            &rules[j].matches,
        )
    }

    /// Incrementally folds the newly arrived rules (`fresh` indices into
    /// `rules`) into the queue; `alive` masks rules pruned from Σ.
    ///
    /// Phase 1 greedily fills the queue with the best disjoint pairs;
    /// phase 2 tries, for every fresh rule outside the queue, its best
    /// partner among all alive rules outside the queue, replacing the
    /// minimum pair when the new pair scores higher.
    pub fn update(&mut self, rules: &[MinedRule], fresh: &[usize], alive: &[bool]) {
        let available = |me: &Self, i: usize| alive[i] && !me.in_queue.contains(&i);

        // Phase 1: fill.
        while self.pairs.len() < self.capacity {
            let mut best: Option<QueuedPair> = None;
            let candidates: Vec<usize> = (0..rules.len()).filter(|&i| available(self, i)).collect();
            for (ci, &i) in candidates.iter().enumerate() {
                for &j in &candidates[ci + 1..] {
                    let s = self.score(rules, i, j);
                    if best.is_none_or(|b| s > b.score) {
                        best = Some(QueuedPair { a: i, b: j, score: s });
                    }
                }
            }
            match best {
                Some(p) => self.push(p),
                None => break,
            }
        }

        // Phase 2: replacement with fresh rules.
        if self.pairs.len() == self.capacity {
            for &i in fresh {
                if !available(self, i) {
                    continue;
                }
                let mut best: Option<QueuedPair> = None;
                for j in 0..rules.len() {
                    if j == i || !available(self, j) {
                        continue;
                    }
                    let s = self.score(rules, i, j);
                    if best.is_none_or(|b| s > b.score) {
                        best = Some(QueuedPair { a: i, b: j, score: s });
                    }
                }
                let Some(candidate) = best else { continue };
                let (mi, min_pair) = self
                    .pairs
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.score.total_cmp(&b.1.score))
                    .map(|(m, p)| (m, *p))
                    .expect("queue full");
                if candidate.score > min_pair.score {
                    self.in_queue.remove(&min_pair.a);
                    self.in_queue.remove(&min_pair.b);
                    self.pairs.swap_remove(mi);
                    self.push(candidate);
                }
            }
        }
    }

    fn push(&mut self, p: QueuedPair) {
        self.in_queue.insert(p.a);
        self.in_queue.insert(p.b);
        self.pairs.push(p);
    }

    /// Clears the queue (used by the non-incremental baseline, which
    /// re-diversifies from scratch every round).
    pub fn reset(&mut self) {
        self.pairs.clear();
        self.in_queue.clear();
    }

    /// Flattens the queue into `L_k`: the pair members ordered by pair
    /// score then confidence, trimmed to `k`.
    pub fn top_k(&self, rules: &[MinedRule]) -> Vec<usize> {
        let mut ordered = self.pairs.clone();
        ordered.sort_by(|a, b| b.score.total_cmp(&a.score));
        let mut out = Vec::with_capacity(self.params.k);
        for p in ordered {
            let (hi, lo) = if rules[p.a].conf_value >= rules[p.b].conf_value {
                (p.a, p.b)
            } else {
                (p.b, p.a)
            };
            out.push(hi);
            out.push(lo);
        }
        out.truncate(self.params.k);
        out
    }

    /// Objective value `F(L_k)` of the current selection.
    pub fn objective(&self, rules: &[MinedRule]) -> f64 {
        let idx = self.top_k(rules);
        let items: Vec<(f64, &FxHashSet<gpar_graph::NodeId>)> =
            idx.iter().map(|&i| (rules[i].conf_value, rules[i].matches.as_ref())).collect();
        gpar_core::objective_f(&self.params, &items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::{ConfStats, Confidence, Gpar, Predicate};
    use gpar_graph::{NodeId, Vocab};
    use gpar_pattern::NodeCond;
    use std::sync::Arc;

    fn mk_rule(conf: f64, matches: &[u32]) -> MinedRule {
        // The pattern itself is irrelevant to incDiv scoring; use a seed.
        let vocab = Vocab::new();
        let c = vocab.intern("c");
        let e = vocab.intern("e");
        let seed = Gpar::seed(&Predicate::new(NodeCond::Label(c), e, NodeCond::Label(c)), vocab);
        MinedRule {
            rule: Arc::new(seed),
            matches: Arc::new(matches.iter().map(|&i| NodeId(i)).collect()),
            stats: ConfStats::default(),
            confidence: Confidence::Value(conf),
            conf_value: conf,
            usupp: 0,
            extendable: false,
            round: 1,
        }
    }

    /// Example 9's dynamics: (R5, R6) fills the queue, then (R7, R8)
    /// replaces it because F'(R7,R8) = 1.08 > F'(R5,R6) = 0.92.
    #[test]
    fn example_9_replacement() {
        let params = DiversifyParams::new(0.5, 2, 5.0);
        let mut inc = IncDiv::new(params);
        let mut rules = vec![
            mk_rule(0.8, &[1, 2, 3, 4]), // R5
            mk_rule(0.4, &[4, 6]),       // R6
        ];
        inc.update(&rules, &[0, 1], &[true, true]);
        assert_eq!(inc.pairs.len(), 1);
        assert!((inc.fm().unwrap() - 0.92).abs() < 1e-9);
        // Round 2: R7, R8 arrive.
        rules.push(mk_rule(0.6, &[1, 2, 3])); // R7
        rules.push(mk_rule(0.2, &[6])); // R8
        inc.update(&rules, &[2, 3], &[true; 4]);
        assert_eq!(inc.pairs.len(), 1);
        assert!((inc.fm().unwrap() - 1.08).abs() < 1e-9);
        let top = inc.top_k(&rules);
        assert_eq!(top, vec![2, 3], "L_k should now be (R7, R8)");
    }

    #[test]
    fn fill_prefers_diverse_high_confidence_pairs() {
        let params = DiversifyParams::new(0.5, 4, 1.0);
        let mut inc = IncDiv::new(params);
        let rules = vec![
            mk_rule(0.9, &[1, 2]),
            mk_rule(0.9, &[1, 2]), // duplicate group of rule 0
            mk_rule(0.8, &[3, 4]),
            mk_rule(0.7, &[5, 6]),
        ];
        inc.update(&rules, &[0, 1, 2, 3], &[true; 4]);
        assert_eq!(inc.pairs.len(), 2);
        let top = inc.top_k(&rules);
        assert_eq!(top.len(), 4);
        // All four rules selected (two disjoint pairs); the redundant pair
        // (0,1) has diff 0 and must not be one of the chosen *pairs*.
        for p in &inc.pairs {
            let redundant = (p.a, p.b) == (0, 1) || (p.a, p.b) == (1, 0);
            assert!(!redundant, "redundant pair selected");
        }
    }

    #[test]
    fn fm_is_none_until_full() {
        let params = DiversifyParams::new(0.5, 4, 1.0);
        let mut inc = IncDiv::new(params);
        let rules = vec![mk_rule(0.9, &[1]), mk_rule(0.8, &[2])];
        inc.update(&rules, &[0, 1], &[true, true]);
        assert_eq!(inc.pairs.len(), 1);
        assert!(inc.fm().is_none(), "capacity 2 not yet reached");
    }

    #[test]
    fn odd_k_trims_to_k() {
        let params = DiversifyParams::new(0.5, 3, 1.0);
        let mut inc = IncDiv::new(params);
        let rules =
            vec![mk_rule(0.9, &[1]), mk_rule(0.8, &[2]), mk_rule(0.7, &[3]), mk_rule(0.6, &[4])];
        inc.update(&rules, &[0, 1, 2, 3], &[true; 4]);
        assert_eq!(inc.pairs.len(), 2); // ceil(3/2)
        assert_eq!(inc.top_k(&rules).len(), 3);
    }

    #[test]
    fn dead_rules_are_never_paired() {
        let params = DiversifyParams::new(0.5, 2, 1.0);
        let mut inc = IncDiv::new(params);
        let rules = vec![mk_rule(0.9, &[1]), mk_rule(0.95, &[2]), mk_rule(0.1, &[3])];
        // Rule 1 is dead (pruned from Σ).
        inc.update(&rules, &[0, 1, 2], &[true, false, true]);
        let top = inc.top_k(&rules);
        assert!(!top.contains(&1));
    }
}
