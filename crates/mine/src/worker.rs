//! The task side of DMine (`localMine`, §4.2) on the work-stealing
//! runtime.
//!
//! A mining round is *two-phase* (one refinement over the paper's
//! compressed description, required for exact global counts), and each
//! phase is a task queue over `(rule × site-chunk)` units executed by
//! [`gpar_exec::Executor`]:
//!
//! 1. **Generate** — a task enumerates extension templates for one
//!    frontier rule from the matches of `P_R` at one chunk's positive
//!    centers;
//! 2. **Evaluate** — a task computes one globally deduplicated candidate
//!    rule's local `supp(R, ·)` (over positive centers) and `supp(Qq̄, ·)`
//!    (over negative centers) on one chunk.
//!
//! Only positives can match `P_R` (it contains the consequent edge) and
//! only negatives contribute to `supp(Qq̄)`, so "unknown" centers are never
//! materialized as mining sites at all — the LCWA does the load shedding.
//! Chunks partition the site list, so summing task outputs (in task-index
//! order, the executor's determinism rule) yields exact global counts for
//! any worker count and any steal interleaving.

use crate::extension::{templates_at, ExtTemplate};
use crate::messages::LocalConf;
use gpar_core::{Gpar, LcwaClass};
use gpar_graph::FxHashSet;
use gpar_iso::{Matcher, MatcherConfig, PatternSketchCache, SharedScratch};
use gpar_partition::CenterSite;

/// A center site plus its LCWA class for the mining predicate.
#[derive(Debug, Clone)]
pub struct ClassifiedSite {
    /// The d-neighborhood site.
    pub site: CenterSite,
    /// LCWA class of the center (positives/negatives only are assigned).
    pub class: LcwaClass,
}

/// Per-worker-thread mining context: the engine configuration plus the
/// `!Send` search arena and pattern-sketch cache that every task this
/// worker executes — its own or stolen — reuses. Built on the worker
/// thread by the executor's context factory.
pub struct MineTaskCtx {
    /// Isomorphism engine configuration.
    pub engine: MatcherConfig,
    /// Cap on matches enumerated per center during template generation.
    pub match_cap: u64,
    /// Cap on templates kept per (rule, chunk) task (deterministic:
    /// templates are sorted before truncation; the coordinator re-applies
    /// the same cap globally, so the kept set is chunking-independent).
    pub ext_cap: usize,
    scratch: SharedScratch,
    psketch: PatternSketchCache,
}

/// Result of one Generate task: deterministic, sorted template list plus
/// the number dropped by the cap.
pub struct GeneratedTemplates {
    /// Sorted, deduplicated templates.
    pub templates: Vec<ExtTemplate>,
    /// Dropped by `ext_cap` (never silent).
    pub dropped: u64,
    /// Whether the per-center match enumeration cap was hit anywhere.
    pub match_capped: bool,
}

impl MineTaskCtx {
    /// A fresh context (empty arena + sketch cache; both fill lazily).
    pub fn new(engine: MatcherConfig, match_cap: u64, ext_cap: usize) -> Self {
        Self {
            engine,
            match_cap,
            ext_cap,
            scratch: SharedScratch::default(),
            psketch: PatternSketchCache::default(),
        }
    }

    fn matcher<'g>(&self, g: &'g gpar_graph::Graph) -> Matcher<'g> {
        Matcher::new(g, self.engine)
            .with_scratch(self.scratch.clone())
            .with_shared_pattern_cache(self.psketch.clone())
    }

    /// Phase-1 task: enumerate extension templates for `rule` over one
    /// site chunk.
    pub fn generate(&self, rule: &Gpar, sites: &[ClassifiedSite]) -> GeneratedTemplates {
        let mut set: FxHashSet<ExtTemplate> = FxHashSet::default();
        let mut match_capped = false;
        for cs in sites {
            if cs.class != LcwaClass::Positive {
                continue;
            }
            let g = cs.site.graph();
            let m = self.matcher(g);
            match_capped |= templates_at(rule, &m, g, cs.site.center, self.match_cap, &mut set);
        }
        // det: hash order is erased by the sort on the next line.
        let mut templates: Vec<ExtTemplate> = set.into_iter().collect();
        templates.sort_unstable();
        let dropped = templates.len().saturating_sub(self.ext_cap) as u64;
        templates.truncate(self.ext_cap);
        GeneratedTemplates { templates, dropped, match_capped }
    }

    /// Phase-2 task: local statistics for one candidate rule over one site
    /// chunk. Returns `(LocalConf, extendable)`.
    pub fn evaluate(&self, rule: &Gpar, sites: &[ClassifiedSite]) -> (LocalConf, bool) {
        let mut lc = LocalConf::default();
        for cs in sites {
            let m = self.matcher(cs.site.graph());
            match cs.class {
                LcwaClass::Positive => {
                    if m.exists_anchored(rule.pr(), rule.pr().x(), cs.site.center) {
                        lc.supp_r += 1;
                        lc.matches.push(cs.site.center_global);
                    }
                }
                LcwaClass::Negative => {
                    if m.exists_anchored(rule.antecedent(), rule.antecedent().x(), cs.site.center) {
                        lc.supp_q_qbar += 1;
                    }
                }
                LcwaClass::Unknown => {}
            }
        }
        // Usupp upper bound: any extension's support is at most the rule's
        // own (anti-monotonicity).
        lc.usupp = lc.supp_r;
        let extendable = lc.supp_r > 0;
        (lc, extendable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::{classify, Predicate};
    use gpar_graph::{GraphBuilder, NodeId, Vocab};
    use gpar_pattern::NodeCond;

    /// Two customers visiting a restaurant (one also has a friend who
    /// visits), one negative (visits a bar instead).
    fn setup() -> (MineTaskCtx, Vec<ClassifiedSite>, Predicate, gpar_graph::Graph) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let visit = vocab.intern("visit");
        let friend = vocab.intern("friend");
        let mut b = GraphBuilder::new(vocab.clone());
        let c1 = b.add_node(cust);
        let c2 = b.add_node(cust);
        let c3 = b.add_node(cust);
        let r = b.add_node(rest);
        let bb = b.add_node(bar);
        b.add_edge(c1, r, visit);
        b.add_edge(c1, c2, friend);
        b.add_edge(c2, r, visit);
        b.add_edge(c3, bb, visit);
        b.add_edge(c3, c1, friend);
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(rest));
        let centers: Vec<NodeId> = vec![c1, c2, c3];
        let sites = centers
            .iter()
            .filter_map(|&c| {
                let class = classify(&g, &pred, c)?;
                if class == LcwaClass::Unknown {
                    return None;
                }
                Some(ClassifiedSite { site: gpar_partition::CenterSite::build(&g, c, 2), class })
            })
            .collect();
        let ctx = MineTaskCtx::new(MatcherConfig::vf2(), 64, 64);
        (ctx, sites, pred, g)
    }

    #[test]
    fn generate_then_evaluate_round_trip() {
        let (ctx, sites, pred, g) = setup();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let gen = ctx.generate(&seed, &sites);
        assert!(!gen.templates.is_empty());
        assert_eq!(gen.dropped, 0);
        // Materialize and evaluate.
        let candidates: Vec<Gpar> =
            gen.templates.iter().filter_map(|t| t.apply(&seed, 2)).collect();
        // The friend(x, x') extension must have supp 1 (only c1's friend
        // c2 also visits... c1 has friend c2; c2 has no friend edge out).
        let friend = g.vocab().get("friend").unwrap();
        let friendly: Vec<&Gpar> = candidates
            .iter()
            .filter(|r| {
                r.antecedent()
                    .edges()
                    .iter()
                    .any(|e| e.cond == gpar_pattern::EdgeCond::Label(friend))
            })
            .collect();
        assert!(!friendly.is_empty());
        for rule in friendly {
            let (lc, ext) = ctx.evaluate(rule, &sites);
            assert!(lc.supp_r >= 1, "friend-extension should match c1: {rule}");
            assert_eq!(ext, lc.supp_r > 0);
            assert_eq!(lc.usupp, lc.supp_r);
        }
    }

    #[test]
    fn chunked_evaluation_sums_to_whole_list() {
        // Splitting the site list into chunks and merging the task outputs
        // must equal evaluating the whole list at once — the invariant the
        // executor's chunk tasks rely on.
        let (ctx, sites, pred, g) = setup();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let gen = ctx.generate(&seed, &sites);
        for rule in gen.templates.iter().filter_map(|t| t.apply(&seed, 2)) {
            let (whole, ext_whole) = ctx.evaluate(&rule, &sites);
            let mut merged = LocalConf::default();
            let mut ext_merged = false;
            for chunk in sites.chunks(1) {
                let (lc, ext) = ctx.evaluate(&rule, chunk);
                merged.merge(&lc);
                ext_merged |= ext;
            }
            assert_eq!(merged.supp_r, whole.supp_r);
            assert_eq!(merged.supp_q_qbar, whole.supp_q_qbar);
            assert_eq!(merged.usupp, whole.usupp);
            assert_eq!(merged.matches, whole.matches);
            assert_eq!(ext_merged, ext_whole);
        }
    }

    #[test]
    fn negative_centers_count_toward_qqbar_only() {
        let (ctx, sites, pred, g) = setup();
        let friend = g.vocab().get("friend").unwrap();
        let cust = g.vocab().get("cust").unwrap();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        // Rule: x -friend-> x2 ⇒ visit(x, y). c3 (negative) has a friend
        // edge, so it matches the antecedent.
        let t = ExtTemplate::NewNode {
            at: gpar_pattern::PNodeId(0),
            outgoing: true,
            elabel: friend,
            nlabel: cust,
        };
        let rule = t.apply(&seed, 2).unwrap();
        let (lc, _) = ctx.evaluate(&rule, &sites);
        assert_eq!(lc.supp_q_qbar, 1, "c3 is the negative antecedent match");
        assert_eq!(lc.supp_r, 1, "c1 matches the full rule");
        assert_eq!(lc.matches.len(), 1);
    }

    #[test]
    fn ext_cap_truncates_deterministically() {
        let (mut ctx, sites, pred, g) = setup();
        ctx.ext_cap = 2;
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let g1 = ctx.generate(&seed, &sites);
        let g2 = ctx.generate(&seed, &sites);
        assert_eq!(g1.templates, g2.templates);
        assert_eq!(g1.templates.len(), 2);
        assert!(g1.dropped > 0);
    }
}
