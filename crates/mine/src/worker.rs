//! The worker side of DMine (`localMine`, §4.2).
//!
//! Each worker owns a disjoint set of classified center sites. A mining
//! round is *two-phase* (one refinement over the paper's compressed
//! description, required for exact global counts):
//!
//! 1. **Generate** — for each frontier rule, enumerate extension templates
//!    from the matches of `P_R` at the worker's positive centers;
//! 2. **Evaluate** — for each globally deduplicated candidate rule,
//!    compute local `supp(R, F_i)` (over positive centers) and
//!    `supp(Qq̄, F_i)` (over negative centers).
//!
//! Only positives can match `P_R` (it contains the consequent edge) and
//! only negatives contribute to `supp(Qq̄)`, so "unknown" centers are never
//! assigned to mining workers at all — the LCWA does the load shedding.

use crate::extension::{templates_at, ExtTemplate};
use crate::messages::LocalConf;
use gpar_core::{Gpar, LcwaClass};
use gpar_graph::FxHashSet;
use gpar_iso::{Matcher, MatcherConfig};
use gpar_partition::CenterSite;

/// A center site plus its LCWA class for the mining predicate.
#[derive(Debug, Clone)]
pub struct ClassifiedSite {
    /// The d-neighborhood site.
    pub site: CenterSite,
    /// LCWA class of the center (positives/negatives only are assigned).
    pub class: LcwaClass,
}

/// Per-worker mining state.
pub struct MineWorker {
    /// Worker index.
    pub id: usize,
    /// Assigned classified sites.
    pub sites: Vec<ClassifiedSite>,
    /// Isomorphism engine configuration.
    pub engine: MatcherConfig,
    /// Cap on matches enumerated per center during template generation.
    pub match_cap: u64,
    /// Cap on templates kept per rule (deterministic: templates are
    /// sorted before truncation, and the drop count is reported).
    pub ext_cap: usize,
    /// The radius bound `d`.
    pub d: u32,
}

/// Result of the Generate phase for one frontier rule: deterministic,
/// sorted template list plus the number dropped by the cap.
pub struct GeneratedTemplates {
    /// Sorted, deduplicated templates.
    pub templates: Vec<ExtTemplate>,
    /// Dropped by `ext_cap` (never silent).
    pub dropped: u64,
    /// Whether the per-center match enumeration cap was hit anywhere.
    pub match_capped: bool,
}

impl MineWorker {
    /// Phase 1: enumerate extension templates for each frontier rule.
    pub fn generate(&self, frontier: &[Gpar]) -> Vec<GeneratedTemplates> {
        // One search arena + pattern-sketch cache for every (rule, site)
        // matcher this pass builds.
        let scratch = gpar_iso::SharedScratch::default();
        let psketch = gpar_iso::PatternSketchCache::default();
        frontier
            .iter()
            .map(|rule| {
                let mut set: FxHashSet<ExtTemplate> = FxHashSet::default();
                let mut match_capped = false;
                for cs in &self.sites {
                    if cs.class != LcwaClass::Positive {
                        continue;
                    }
                    let g = cs.site.graph();
                    let m = Matcher::new(g, self.engine)
                        .with_scratch(scratch.clone())
                        .with_shared_pattern_cache(psketch.clone());
                    match_capped |=
                        templates_at(rule, &m, g, cs.site.center, self.match_cap, &mut set);
                }
                let mut templates: Vec<ExtTemplate> = set.into_iter().collect();
                templates.sort_unstable();
                let dropped = templates.len().saturating_sub(self.ext_cap) as u64;
                templates.truncate(self.ext_cap);
                GeneratedTemplates { templates, dropped, match_capped }
            })
            .collect()
    }

    /// Phase 2: evaluate local statistics for each candidate rule.
    /// Returns `(LocalConf, extendable)` per rule.
    pub fn evaluate(&self, candidates: &[Gpar]) -> Vec<(LocalConf, bool)> {
        let scratch = gpar_iso::SharedScratch::default();
        let psketch = gpar_iso::PatternSketchCache::default();
        candidates
            .iter()
            .map(|rule| {
                let mut lc = LocalConf::default();
                for cs in &self.sites {
                    let g = cs.site.graph();
                    let m = Matcher::new(g, self.engine)
                        .with_scratch(scratch.clone())
                        .with_shared_pattern_cache(psketch.clone());
                    match cs.class {
                        LcwaClass::Positive => {
                            if m.exists_anchored(rule.pr(), rule.pr().x(), cs.site.center) {
                                lc.supp_r += 1;
                                lc.matches.push(cs.site.center_global);
                            }
                        }
                        LcwaClass::Negative => {
                            if m.exists_anchored(
                                rule.antecedent(),
                                rule.antecedent().x(),
                                cs.site.center,
                            ) {
                                lc.supp_q_qbar += 1;
                            }
                        }
                        LcwaClass::Unknown => {}
                    }
                }
                // Usupp upper bound: any extension's support is at most the
                // rule's own (anti-monotonicity).
                lc.usupp = lc.supp_r;
                let extendable = lc.supp_r > 0;
                (lc, extendable)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::{classify, Predicate};
    use gpar_graph::{GraphBuilder, NodeId, Vocab};
    use gpar_pattern::NodeCond;

    /// Two customers visiting a restaurant (one also has a friend who
    /// visits), one negative (visits a bar instead).
    fn setup() -> (MineWorker, Predicate, gpar_graph::Graph) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let visit = vocab.intern("visit");
        let friend = vocab.intern("friend");
        let mut b = GraphBuilder::new(vocab.clone());
        let c1 = b.add_node(cust);
        let c2 = b.add_node(cust);
        let c3 = b.add_node(cust);
        let r = b.add_node(rest);
        let bb = b.add_node(bar);
        b.add_edge(c1, r, visit);
        b.add_edge(c1, c2, friend);
        b.add_edge(c2, r, visit);
        b.add_edge(c3, bb, visit);
        b.add_edge(c3, c1, friend);
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(rest));
        let centers: Vec<NodeId> = vec![c1, c2, c3];
        let sites = centers
            .iter()
            .filter_map(|&c| {
                let class = classify(&g, &pred, c)?;
                if class == LcwaClass::Unknown {
                    return None;
                }
                Some(ClassifiedSite { site: gpar_partition::CenterSite::build(&g, c, 2), class })
            })
            .collect();
        let w = MineWorker {
            id: 0,
            sites,
            engine: MatcherConfig::vf2(),
            match_cap: 64,
            ext_cap: 64,
            d: 2,
        };
        (w, pred, g)
    }

    #[test]
    fn generate_then_evaluate_round_trip() {
        let (w, pred, g) = setup();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let gens = w.generate(std::slice::from_ref(&seed));
        assert_eq!(gens.len(), 1);
        assert!(!gens[0].templates.is_empty());
        assert_eq!(gens[0].dropped, 0);
        // Materialize and evaluate.
        let candidates: Vec<Gpar> =
            gens[0].templates.iter().filter_map(|t| t.apply(&seed, w.d)).collect();
        let evals = w.evaluate(&candidates);
        assert_eq!(evals.len(), candidates.len());
        // The friend(x, x') extension must have supp 1 (only c1's friend
        // c2 also visits... c1 has friend c2; c2 has no friend edge out).
        let friend = g.vocab().get("friend").unwrap();
        let friendly: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                r.antecedent()
                    .edges()
                    .iter()
                    .any(|e| e.cond == gpar_pattern::EdgeCond::Label(friend))
            })
            .map(|(i, _)| i)
            .collect();
        assert!(!friendly.is_empty());
        for i in friendly {
            let (lc, ext) = &evals[i];
            assert!(lc.supp_r >= 1, "friend-extension should match c1: {}", candidates[i]);
            assert_eq!(*ext, lc.supp_r > 0);
            assert_eq!(lc.usupp, lc.supp_r);
        }
    }

    #[test]
    fn negative_centers_count_toward_qqbar_only() {
        let (w, pred, g) = setup();
        let friend = g.vocab().get("friend").unwrap();
        let cust = g.vocab().get("cust").unwrap();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        // Rule: x -friend-> x2 ⇒ visit(x, y). c3 (negative) has a friend
        // edge, so it matches the antecedent.
        let t = ExtTemplate::NewNode {
            at: gpar_pattern::PNodeId(0),
            outgoing: true,
            elabel: friend,
            nlabel: cust,
        };
        let rule = t.apply(&seed, 2).unwrap();
        let evals = w.evaluate(std::slice::from_ref(&rule));
        let (lc, _) = &evals[0];
        assert_eq!(lc.supp_q_qbar, 1, "c3 is the negative antecedent match");
        assert_eq!(lc.supp_r, 1, "c1 matches the full rule");
        assert_eq!(lc.matches.len(), 1);
    }

    #[test]
    fn ext_cap_truncates_deterministically() {
        let (mut w, pred, g) = setup();
        w.ext_cap = 2;
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let g1 = w.generate(std::slice::from_ref(&seed));
        let g2 = w.generate(std::slice::from_ref(&seed));
        assert_eq!(g1[0].templates, g2[0].templates);
        assert_eq!(g1[0].templates.len(), 2);
        assert!(g1[0].dropped > 0);
    }
}
