//! A GRAMI-style frequent-subgraph miner (single graph, minimum-image
//! support), used for the *qualitative* comparison of Exp-2: frequency-only
//! mining tends to surface structurally frequent but association-free
//! patterns (the paper found "mostly cycles of users"), whereas DMine's
//! confidence/diversity objective surfaces rules about a designated
//! entity.
//!
//! This is intentionally a plain frequency miner: no designated-node
//! semantics, no consequent, no confidence — exactly what it is being
//! compared against.

use gpar_graph::{FxHashMap, FxHashSet, Graph, NodeId};
use gpar_iso::{Matcher, MatcherConfig};
use gpar_pattern::{CanonicalCode, EdgeCond, NodeCond, PEdge, PNodeId, Pattern};
use std::ops::ControlFlow;

/// FSG mining configuration.
#[derive(Debug, Clone)]
pub struct FsgConfig {
    /// Minimum-image support threshold.
    pub sigma: u64,
    /// Maximum pattern edges.
    pub max_edges: usize,
    /// Cap on patterns explored per level (drops reported via
    /// [`FsgResult::capped`]).
    pub level_cap: usize,
    /// Cap on matches enumerated per anchor image during growth.
    pub match_cap: u64,
}

impl Default for FsgConfig {
    fn default() -> Self {
        Self { sigma: 2, max_edges: 3, level_cap: 200, match_cap: 64 }
    }
}

/// Result of an FSG run.
#[derive(Debug)]
pub struct FsgResult {
    /// Frequent patterns with their MNI supports, descending support.
    pub patterns: Vec<(Pattern, u64)>,
    /// Whether the level cap truncated exploration.
    pub capped: bool,
}

/// The miner.
#[derive(Debug, Clone, Default)]
pub struct FsgMiner {
    /// Configuration.
    pub config: FsgConfig,
}

impl FsgMiner {
    /// Creates a miner.
    pub fn new(config: FsgConfig) -> Self {
        Self { config }
    }

    /// Minimum-image-based support of `p` in `g`.
    fn mni(&self, p: &Pattern, m: &Matcher<'_>) -> u64 {
        p.nodes().map(|u| m.images(p, u).len() as u64).min().unwrap_or(0)
    }

    /// Mines MNI-frequent patterns of up to `max_edges` edges.
    pub fn mine(&self, g: &Graph) -> FsgResult {
        let cfg = &self.config;
        let m = Matcher::new(g, MatcherConfig::vf2());
        let mut capped = false;

        // Level 1: frequent single-edge patterns.
        let mut level: Vec<Pattern> = Vec::new();
        let mut seen: FxHashSet<CanonicalCode> = FxHashSet::default();
        for ((sl, el, dl), _) in g.frequent_edge_patterns(usize::MAX) {
            let p = Pattern::from_parts(
                vec![NodeCond::Label(sl), NodeCond::Label(dl)],
                vec![PEdge { src: PNodeId(0), dst: PNodeId(1), cond: EdgeCond::Label(el) }],
                PNodeId(0),
                None,
                g.vocab().clone(),
            )
            .expect("single-edge pattern is valid");
            if seen.insert(p.canonical_code()) {
                level.push(p);
            }
        }

        let mut out: Vec<(Pattern, u64)> = Vec::new();
        while !level.is_empty() {
            // Score the level, keep the frequent ones.
            let mut next_seeds: Vec<Pattern> = Vec::new();
            if level.len() > cfg.level_cap {
                capped = true;
                level.truncate(cfg.level_cap);
            }
            for p in level.drain(..) {
                let support = self.mni(&p, &m);
                if support < cfg.sigma {
                    continue;
                }
                if p.edge_count() < cfg.max_edges {
                    next_seeds.push(p.clone());
                }
                out.push((p, support));
            }
            // Grow the frequent ones by one edge.
            let mut next: Vec<Pattern> = Vec::new();
            for p in &next_seeds {
                for ext in self.extensions(p, g, &m) {
                    if seen.insert(ext.canonical_code()) {
                        next.push(ext);
                    }
                }
            }
            level = next;
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.edge_count().cmp(&b.0.edge_count())));
        FsgResult { patterns: out, capped }
    }

    /// Single-edge growths of `p` discovered from its matches.
    fn extensions(&self, p: &Pattern, g: &Graph, m: &Matcher<'_>) -> Vec<Pattern> {
        #[derive(PartialEq, Eq, Hash, PartialOrd, Ord)]
        enum T {
            New(PNodeId, bool, gpar_graph::Label, gpar_graph::Label),
            Close(PNodeId, PNodeId, gpar_graph::Label),
        }
        let mut templates: FxHashSet<T> = FxHashSet::default();
        let anchors: Vec<NodeId> = m.images(p, p.x()).into_iter().collect();
        for v in anchors {
            let mut visited = 0u64;
            m.enumerate_anchored(p, p.x(), v, &mut |assignment| {
                visited += 1;
                let rev: FxHashMap<NodeId, PNodeId> =
                    assignment.iter().enumerate().map(|(i, &n)| (n, PNodeId(i as u32))).collect();
                for u in p.nodes() {
                    let vu = assignment[u.index()];
                    for e in g.out_edges(vu) {
                        match rev.get(&e.node) {
                            Some(&dst) => {
                                if !p.has_edge(u, dst, EdgeCond::Label(e.label)) {
                                    templates.insert(T::Close(u, dst, e.label));
                                }
                            }
                            None => {
                                templates.insert(T::New(u, true, e.label, g.node_label(e.node)));
                            }
                        }
                    }
                    for e in g.in_edges(vu) {
                        match rev.get(&e.node) {
                            Some(&src) => {
                                if !p.has_edge(src, u, EdgeCond::Label(e.label)) {
                                    templates.insert(T::Close(src, u, e.label));
                                }
                            }
                            None => {
                                templates.insert(T::New(u, false, e.label, g.node_label(e.node)));
                            }
                        }
                    }
                }
                if visited >= self.config.match_cap {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
        }
        // det: hash order is erased by the sort on the next line.
        let mut sorted: Vec<T> = templates.into_iter().collect();
        sorted.sort();
        sorted
            .into_iter()
            .filter_map(|t| match t {
                T::New(at, outgoing, el, nl) => p
                    .with_node_and_edge(at, NodeCond::Label(nl), EdgeCond::Label(el), outgoing)
                    .ok()
                    .map(|(p, _)| p),
                T::Close(s, d, el) => p.with_edge(s, d, EdgeCond::Label(el)).ok(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};

    /// A graph with a frequent triangle motif among users.
    fn triangles(n: usize) -> Graph {
        let vocab = Vocab::new();
        let user = vocab.intern("user");
        let f = vocab.intern("f");
        let mut b = GraphBuilder::new(vocab);
        for _ in 0..n {
            let a = b.add_node(user);
            let c = b.add_node(user);
            let d = b.add_node(user);
            b.add_edge(a, c, f);
            b.add_edge(c, d, f);
            b.add_edge(d, a, f);
        }
        b.build()
    }

    #[test]
    fn finds_frequent_edges_and_cycles() {
        let g = triangles(5);
        let miner = FsgMiner::new(FsgConfig { sigma: 3, max_edges: 3, ..Default::default() });
        let result = miner.mine(&g);
        assert!(!result.patterns.is_empty());
        // The single f-edge pattern has MNI 15 (each of 15 nodes is both a
        // source and a target image).
        let (p1, s1) = &result.patterns[0];
        assert_eq!(p1.edge_count(), 1);
        assert_eq!(*s1, 15);
        // The 3-cycle must be found — GRAMI's signature output shape.
        let cycle =
            result.patterns.iter().find(|(p, _)| p.edge_count() == 3 && p.node_count() == 3);
        assert!(cycle.is_some(), "triangle motif should be frequent");
        assert_eq!(cycle.unwrap().1, 15);
    }

    #[test]
    fn sigma_prunes_infrequent_patterns() {
        let g = triangles(2);
        let hi = FsgMiner::new(FsgConfig { sigma: 100, ..Default::default() }).mine(&g);
        assert!(hi.patterns.is_empty());
    }

    #[test]
    fn supports_are_anti_monotonic_along_growth() {
        let g = triangles(4);
        let result =
            FsgMiner::new(FsgConfig { sigma: 1, max_edges: 3, ..Default::default() }).mine(&g);
        // Every 2-edge pattern's support is ≤ the 1-edge pattern's support.
        let max1 = result
            .patterns
            .iter()
            .filter(|(p, _)| p.edge_count() == 1)
            .map(|&(_, s)| s)
            .max()
            .unwrap();
        for (p, s) in &result.patterns {
            if p.edge_count() > 1 {
                assert!(*s <= max1);
            }
        }
    }
}
