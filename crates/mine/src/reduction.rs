//! The message/candidate reduction rules of Lemma 3 (§4.2).
//!
//! With `F'_m` the minimum pair score in the top-k queue,
//! `Uconf⁺(R_j)` an upper bound on the confidence of any extension of a
//! frontier rule `R_j`, and `1` the maximum possible `diff`, Lemma 3
//! states:
//!
//! 1. a rule `R ∈ Σ` cannot contribute to `L_k` if
//!    `(1−λ)/(N(k−1))·(conf(R) + maxUconf⁺(∆E)) + 2λ/(k−1) ≤ F'_m`;
//! 2. a frontier rule `R_j ∈ ∆E` need not be extended if it is not
//!    extendable, or
//!    `(1−λ)/(N(k−1))·(Uconf⁺(R_j) + max conf(Σ)) + 2λ/(k−1) ≤ F'_m`.
//!
//! Both right-hand quantities shrink as rules are removed, so the rules
//! are applied to a fixpoint. Rules currently seated in the queue are
//! never pruned (they already contribute to `L_k`).

use crate::incdiv::IncDiv;
use crate::messages::MinedRule;

/// Counters reporting what the reduction pass removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Rules pruned from Σ (rule 1).
    pub sigma_pruned: usize,
    /// Frontier rules whose extension was cancelled (rule 2).
    pub frontier_pruned: usize,
}

/// `Uconf⁺(R)` — the confidence upper bound for any extension of `R`:
/// `Usupp(R)·supp(q̄,G) / (1·supp(q,G))` (the denominator's `supp(Qq̄)` is
/// lower-bounded by 1).
pub fn uconf_plus(rule: &MinedRule) -> f64 {
    if rule.stats.supp_q == 0 {
        return 0.0;
    }
    rule.usupp as f64 * rule.stats.supp_qbar as f64 / rule.stats.supp_q as f64
}

/// Applies both reduction rules to a fixpoint.
///
/// * `rules` — the Σ store; `alive[i]` is cleared when rule `i` is pruned.
/// * `frontier` — indices of ∆E rules still scheduled for extension;
///   pruned entries are removed in place.
pub fn apply_reduction(
    inc: &IncDiv,
    rules: &[MinedRule],
    alive: &mut [bool],
    frontier: &mut Vec<usize>,
) -> ReductionStats {
    let mut stats = ReductionStats::default();
    let Some(fm) = inc.fm() else {
        // Queue not full yet: every candidate can still make top-k.
        frontier.retain(|&i| rules[i].extendable);
        return stats;
    };
    let p = inc.params();
    let k = p.k.max(2) as f64;
    let conf_coeff = (1.0 - p.lambda) / (p.n * (k - 1.0));
    let div_max = 2.0 * p.lambda / (k - 1.0);

    loop {
        let max_uconf = frontier.iter().map(|&i| uconf_plus(&rules[i])).fold(0.0_f64, f64::max);
        let max_conf = rules
            .iter()
            .enumerate()
            .filter(|&(i, _)| alive[i])
            .map(|(_, r)| r.conf_value)
            .fold(0.0_f64, f64::max);

        let mut changed = false;
        // Rule 1: prune Σ.
        for (i, r) in rules.iter().enumerate() {
            if !alive[i] || inc.contains(i) {
                continue;
            }
            if conf_coeff * (r.conf_value + max_uconf) + div_max <= fm {
                alive[i] = false;
                stats.sigma_pruned += 1;
                changed = true;
            }
        }
        // Rule 2: prune the frontier.
        let before = frontier.len();
        frontier.retain(|&i| {
            let r = &rules[i];

            r.extendable && conf_coeff * (uconf_plus(r) + max_conf) + div_max > fm
        });
        if frontier.len() != before {
            stats.frontier_pruned += before - frontier.len();
            changed = true;
        }
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::{ConfStats, Confidence, DiversifyParams, Gpar, Predicate};
    use gpar_graph::{NodeId, Vocab};
    use gpar_pattern::NodeCond;
    use std::sync::Arc;

    fn mk_rule(conf: f64, usupp: u64, matches: &[u32], extendable: bool) -> MinedRule {
        let vocab = Vocab::new();
        let c = vocab.intern("c");
        let e = vocab.intern("e");
        let seed = Gpar::seed(&Predicate::new(NodeCond::Label(c), e, NodeCond::Label(c)), vocab);
        MinedRule {
            rule: Arc::new(seed),
            matches: Arc::new(matches.iter().map(|&i| NodeId(i)).collect()),
            stats: ConfStats {
                supp_r: matches.len() as u64,
                supp_q_ante: 0,
                supp_q: 10,
                supp_qbar: 2,
                supp_q_qbar: 1,
            },
            confidence: Confidence::Value(conf),
            conf_value: conf,
            usupp,
            extendable,
            round: 1,
        }
    }

    #[test]
    fn nothing_pruned_while_queue_not_full() {
        let params = DiversifyParams::new(0.5, 6, 1.0);
        let inc = IncDiv::new(params);
        let rules = vec![mk_rule(0.1, 1, &[1], true)];
        let mut alive = vec![true];
        let mut frontier = vec![0];
        let stats = apply_reduction(&inc, &rules, &mut alive, &mut frontier);
        assert_eq!(stats, ReductionStats::default());
        assert_eq!(frontier, vec![0]);
    }

    #[test]
    fn hopeless_rules_are_pruned_once_queue_is_full() {
        // λ = 0 isolates the confidence term, making the bound easy to hit.
        let params = DiversifyParams::new(0.0, 2, 1.0);
        let mut inc = IncDiv::new(params);
        let rules = vec![
            mk_rule(10.0, 0, &[1, 2], false),
            mk_rule(9.0, 0, &[3], false),
            mk_rule(0.001, 0, &[4], true), // hopeless straggler, usupp 0
        ];
        let mut alive = vec![true; 3];
        inc.update(&rules, &[0, 1, 2], &alive);
        assert!(inc.fm().is_some());
        let mut frontier = vec![2];
        let stats = apply_reduction(&inc, &rules, &mut alive, &mut frontier);
        // Rule 2 (index 2): conf bound (1)(0.001 + max_uconf 0) ≤ F'm ⇒ pruned
        // from Σ; its extension bound (uconf+ 0 + maxconf 10)·coef vs fm…
        assert!(stats.sigma_pruned >= 1);
        assert!(!alive[2]);
        // Queue members stay alive.
        assert!(alive[0] && alive[1]);
    }

    #[test]
    fn non_extendable_frontier_entries_always_drop() {
        let params = DiversifyParams::new(0.5, 2, 1.0);
        let inc = IncDiv::new(params);
        let rules = vec![mk_rule(5.0, 5, &[1], false)];
        let mut alive = vec![true];
        let mut frontier = vec![0];
        apply_reduction(&inc, &rules, &mut alive, &mut frontier);
        assert!(frontier.is_empty());
    }

    #[test]
    fn uconf_plus_formula() {
        let r = mk_rule(1.0, 4, &[1, 2, 3, 4], true);
        // usupp * supp_qbar / supp_q = 4 * 2 / 10
        assert!((uconf_plus(&r) - 0.8).abs() < 1e-12);
    }
}
