//! # gpar-mine
//!
//! `DMine` — the parallel algorithm for the **diversified GPAR mining
//! problem (DMP)** of §4: given a graph `G`, a predicate `q(x, y)`, a
//! support bound σ and integers `k`, `d`, find `k` nontrivial GPARs
//! pertaining to `q(x, y)` with `supp ≥ σ` and `r(P_R, x) ≤ d` maximizing
//! the bi-criteria objective `F` (confidence + diversity). DMP is NP-hard
//! (Prop. 1); DMine achieves approximation ratio 2 via the max-sum
//! dispersion greedy (Theorem 2).
//!
//! ## Architecture (semantics faithful to §4.2)
//!
//! One *coordinator* (the calling thread) drives bulk-synchronous rounds
//! over the shared work-stealing runtime ([`gpar_exec::Executor`]):
//!
//! 1. the graph is materialized into per-center d-neighborhood sites
//!    (`gpar-partition`), kept as one flat list and cut into a few
//!    load-balanced chunks per worker — the task granule;
//! 2. each round runs two task queues: **Generate** tasks, one per
//!    `(frontier rule × site chunk)`, grow the rule by one edge
//!    discovered in the chunk's local match images (`localMine`), and
//!    **Evaluate** tasks, one per `(candidate × site chunk)`, compute
//!    local supports. Workers steal chunks dynamically, so a straggler
//!    site never serializes a round behind one static split; task
//!    outputs merge in task-index order, making every count independent
//!    of the steal interleaving (the paper's `⟨R, conf, flag⟩` messages
//!    are exactly these task outputs);
//! 3. the coordinator groups automorphic rules (bisimulation prefilter of
//!    Lemma 4 + exact check), assembles global confidence, filters by σ,
//!    updates the top-k via **incremental diversification** (`incDiv`),
//!    applies the **reduction rules** of Lemma 3, and posts the surviving
//!    extendable rules for the next round.
//!
//! ### Interpretation note
//!
//! The paper grows rules "by including at least one new edge at hop r" per
//! round and bounds the rounds by `d`; how many edges a single round may
//! add is left open. We use standard single-edge levelwise growth
//! (one new antecedent edge per round, any hop, radius ≤ d enforced at
//! generation), with the round count bounded by
//! [`DmineConfig::max_rounds`] — this preserves every claim the paper
//! makes (anti-monotonic pruning, bounded rounds, per-round cost a
//! function of `|G|/n`, `k`, `|Σ|`) and matches how pattern-growth miners
//! are normally implemented.
//!
//! The baselines are [`DMineNo`](DmineConfig::no_optimizations) (same BSP
//! skeleton, no incremental diversification / reduction rules / bisim
//! prefilter), [`naive`] ("discover-then-diversify"), and
//! [`frequent::FsgMiner`], a GRAMI-style frequency-only miner used for the
//! qualitative comparison of Exp-2.

pub mod dmine;
pub mod extension;
pub mod frequent;
pub mod incdiv;
pub mod messages;
pub mod naive;
pub mod reduction;
pub mod worker;

pub use dmine::{DMine, DmineConfig, MineOpts, MineResult};
pub use messages::{LocalConf, MinedRule, RuleMsg};
pub use naive::discover_then_diversify;
