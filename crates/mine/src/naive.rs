//! The naive "discover-then-diversify" baseline (§4.2).
//!
//! First find *all* GPARs pertaining to `q(x, y)` with `supp ≥ σ` (plain
//! frequent-pattern growth), then run one greedy max-sum diversification
//! pass over the complete Σ. DMine dominates this strategy because (a) it
//! terminates non-promising expansions early via the Lemma 3 reductions
//! and (b) it maintains `L_k` incrementally instead of recomputing `F`
//! from scratch.

use crate::dmine::{DMine, DmineConfig, MineOpts, MineResult};
use gpar_core::Predicate;
use gpar_graph::Graph;

/// Runs the naive baseline with the same DMP instance parameters.
pub fn discover_then_diversify(g: &Graph, pred: &Predicate, config: &DmineConfig) -> MineResult {
    let cfg = DmineConfig { opts: MineOpts::naive(), ..config.clone() };
    DMine::new(cfg).run(g, pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::NodeCond;

    #[test]
    fn naive_reaches_comparable_objective() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let shop = vocab.intern("shop");
        let (like, visit, friend) =
            (vocab.intern("like"), vocab.intern("visit"), vocab.intern("friend"));
        let mut b = GraphBuilder::new(vocab.clone());
        for i in 0..10 {
            let c1 = b.add_node(cust);
            let c2 = b.add_node(cust);
            let s = b.add_node(shop);
            b.add_edge(c1, c2, friend);
            b.add_edge(c1, s, like);
            b.add_edge(c2, s, like);
            if i < 7 {
                b.add_edge(c1, s, visit);
            } else {
                let other = b.add_node(vocab.intern("bar"));
                b.add_edge(c1, other, visit);
            }
            b.add_edge(c2, s, visit);
        }
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(shop));
        let cfg = DmineConfig { k: 4, sigma: 2, workers: 2, max_rounds: 2, ..Default::default() };
        let dmine = DMine::new(cfg.clone()).run(&g, &pred);
        let naive = discover_then_diversify(&g, &pred, &cfg);
        assert!(!naive.top_k.is_empty());
        // Both use the ratio-2 greedy, so their objectives are within a
        // factor of 4 of each other in the worst case; in practice they
        // should be close.
        let ratio = dmine.objective / naive.objective.max(1e-12);
        assert!(ratio > 0.25 && ratio < 4.0, "ratio {ratio}");
        // The naive run never prunes Σ.
        assert_eq!(naive.reduction.sigma_pruned, 0);
        assert!(naive.sigma_size >= dmine.sigma_size);
    }
}
