//! Message types exchanged between the coordinator and the workers
//! (§4.2 "Messages").

use gpar_core::{ConfStats, Confidence, Gpar};
use gpar_graph::{FxHashSet, NodeId};
use std::sync::Arc;

/// Local (per-worker) contribution to a rule's confidence — the `conf`
/// component of the paper's `⟨R, conf, flag⟩` triple. All counts range
/// over the worker's *assigned* centers only, so summing across workers
/// yields exact global values (center ownership is disjoint).
#[derive(Debug, Clone, Default)]
pub struct LocalConf {
    /// `supp(R, F_i)` — assigned positive centers matching `P_R`.
    pub supp_r: u64,
    /// `supp(Qq̄, F_i)` — assigned negative centers matching `Q`.
    pub supp_q_qbar: u64,
    /// `Usupp_i(R)` — upper bound on any extension's local support
    /// (PR-matching centers that produced at least one extension
    /// template).
    pub usupp: u64,
    /// The matching centers themselves (global ids) — needed by the
    /// coordinator to compute `diff(,)` between rules, exactly as the
    /// message tables of Example 9 carry `R(x, G1)` columns.
    pub matches: Vec<NodeId>,
}

impl LocalConf {
    /// Merges another worker's contribution into this one.
    pub fn merge(&mut self, other: &LocalConf) {
        self.supp_r += other.supp_r;
        self.supp_q_qbar += other.supp_q_qbar;
        self.usupp += other.usupp;
        self.matches.extend_from_slice(&other.matches);
    }
}

/// One worker→coordinator rule report: `⟨R, conf, flag⟩`.
#[derive(Debug, Clone)]
pub struct RuleMsg {
    /// The (locally generated) rule.
    pub rule: Gpar,
    /// Local confidence components.
    pub conf: LocalConf,
    /// Whether the rule can still be extended at this worker.
    pub extendable: bool,
}

/// A fully assembled rule at the coordinator, with global statistics.
#[derive(Debug, Clone)]
pub struct MinedRule {
    /// The rule.
    pub rule: Arc<Gpar>,
    /// Global `P_R(x, G)` (the "social group" the rule identifies).
    pub matches: Arc<FxHashSet<NodeId>>,
    /// Global support/confidence counts.
    pub stats: ConfStats,
    /// The BF-based confidence.
    pub confidence: Confidence,
    /// Confidence as a finite ranking value (trivial rules are filtered
    /// before ranking, so this is the plain numeric value).
    pub conf_value: f64,
    /// Global `Uconf⁺` numerator input (summed `Usupp_i`).
    pub usupp: u64,
    /// Whether any worker can still extend this rule.
    pub extendable: bool,
    /// Round in which the rule was produced (= antecedent edge count).
    pub round: usize,
}

impl MinedRule {
    /// `supp(R, G)`.
    pub fn support(&self) -> u64 {
        self.stats.supp_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_conf_merges_counts_and_matches() {
        let mut a =
            LocalConf { supp_r: 2, supp_q_qbar: 1, usupp: 2, matches: vec![NodeId(1), NodeId(2)] };
        let b = LocalConf { supp_r: 1, supp_q_qbar: 0, usupp: 1, matches: vec![NodeId(7)] };
        a.merge(&b);
        assert_eq!(a.supp_r, 3);
        assert_eq!(a.supp_q_qbar, 1);
        assert_eq!(a.usupp, 3);
        assert_eq!(a.matches, vec![NodeId(1), NodeId(2), NodeId(7)]);
    }
}
