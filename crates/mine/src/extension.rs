//! Data-driven pattern extension (the growth step of `localMine`).
//!
//! Given a rule `R` and a match of `P_R` inside a center's site, every
//! incident data edge around the match's image induces an *extension
//! template*: either attach a fresh pattern node through a new edge, or
//! close an edge between two existing pattern nodes. Templates are plain
//! value types, so workers can deduplicate them cheaply and the
//! coordinator can materialize and group them across workers.

use gpar_core::Gpar;
use gpar_graph::{FxHashSet, Graph, Label, NodeId};
use gpar_iso::Matcher;
use gpar_pattern::{EdgeCond, NodeCond, PNodeId, Pattern};
use std::ops::ControlFlow;

/// One single-edge extension of a rule's antecedent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtTemplate {
    /// Attach a fresh node labeled `nlabel` to pattern node `at` via an
    /// edge labeled `elabel` (`outgoing` = direction from `at`).
    NewNode { at: PNodeId, outgoing: bool, elabel: Label, nlabel: Label },
    /// Add the edge `src -elabel-> dst` between existing pattern nodes.
    Close { src: PNodeId, dst: PNodeId, elabel: Label },
}

impl ExtTemplate {
    /// Materializes the template into a new rule (antecedent + one edge).
    /// Returns `None` when the result is invalid (duplicate edge, the
    /// consequent edge itself, radius over `d`, …).
    pub fn apply(&self, rule: &Gpar, d: u32) -> Option<Gpar> {
        let q = rule.antecedent();
        let ext = match *self {
            ExtTemplate::Close { src, dst, elabel } => {
                if q.has_edge(src, dst, EdgeCond::Label(elabel)) {
                    return None;
                }
                q.with_edge(src, dst, EdgeCond::Label(elabel)).ok()?
            }
            ExtTemplate::NewNode { at, outgoing, elabel, nlabel } => {
                q.with_node_and_edge(at, NodeCond::Label(nlabel), EdgeCond::Label(elabel), outgoing)
                    .ok()?
                    .0
            }
        };
        let rule = Gpar::new(ext, rule.predicate().label).ok()?;
        if rule.radius()? > d {
            return None;
        }
        Some(rule)
    }
}

/// Enumerates extension templates visible from the matches of `P_R`
/// anchored at `center` in `site`, visiting at most `match_cap` matches.
/// Returns the distinct templates and whether the cap was hit (so callers
/// can report capped enumeration instead of silently under-counting).
pub fn templates_at(
    rule: &Gpar,
    matcher: &Matcher<'_>,
    site: &Graph,
    center: NodeId,
    match_cap: u64,
    out: &mut FxHashSet<ExtTemplate>,
) -> bool {
    let pr = rule.pr();
    let x = pr.x();
    let y = pr.y().expect("GPAR designates y");
    let qlabel = rule.predicate().label;
    let mut visited = 0u64;
    let mut capped = false;
    matcher.enumerate_anchored(pr, x, center, &mut |assignment| {
        visited += 1;
        collect_from_match(pr, site, assignment, x, y, qlabel, out);
        if visited >= match_cap {
            capped = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    capped
}

fn collect_from_match(
    pr: &Pattern,
    site: &Graph,
    assignment: &[NodeId],
    x: PNodeId,
    y: PNodeId,
    qlabel: Label,
    out: &mut FxHashSet<ExtTemplate>,
) {
    // Reverse map: data node -> pattern node (injective).
    for u in pr.nodes() {
        let vu = assignment[u.index()];
        for e in site.out_edges(vu) {
            // Never lift the consequent edge itself.
            let to_pat = assignment.iter().position(|&w| w == e.node).map(|i| PNodeId(i as u32));
            match to_pat {
                Some(dst) => {
                    if u == x && dst == y && e.label == qlabel {
                        continue;
                    }
                    if !pr.has_edge(u, dst, EdgeCond::Label(e.label)) {
                        out.insert(ExtTemplate::Close { src: u, dst, elabel: e.label });
                    }
                }
                None => {
                    out.insert(ExtTemplate::NewNode {
                        at: u,
                        outgoing: true,
                        elabel: e.label,
                        nlabel: site.node_label(e.node),
                    });
                }
            }
        }
        for e in site.in_edges(vu) {
            let from_pat = assignment.iter().position(|&w| w == e.node).map(|i| PNodeId(i as u32));
            match from_pat {
                Some(src) => {
                    if src == x && u == y && e.label == qlabel {
                        continue;
                    }
                    if !pr.has_edge(src, u, EdgeCond::Label(e.label)) {
                        out.insert(ExtTemplate::Close { src, dst: u, elabel: e.label });
                    }
                }
                None => {
                    out.insert(ExtTemplate::NewNode {
                        at: u,
                        outgoing: false,
                        elabel: e.label,
                        nlabel: site.node_label(e.node),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::Predicate;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_iso::MatcherConfig;
    use gpar_pattern::NodeCond;

    /// Data: c -visit-> r, c -friend-> f, f -visit-> r.
    fn tiny() -> (Graph, NodeId, Predicate) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let visit = vocab.intern("visit");
        let friend = vocab.intern("friend");
        let mut b = GraphBuilder::new(vocab.clone());
        let c = b.add_node(cust);
        let f = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c, r, visit);
        b.add_edge(c, f, friend);
        b.add_edge(f, r, visit);
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(rest));
        (g, c, pred)
    }

    #[test]
    fn seed_rule_extensions_exclude_the_consequent() {
        let (g, c, pred) = tiny();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        let mut out = FxHashSet::default();
        let capped = templates_at(&seed, &m, &g, c, 64, &mut out);
        assert!(!capped);
        // Expected: friend(x, new cust), visit(new cust, y)-ish templates,
        // but NOT the consequent visit(x, y) itself.
        let vocab = g.vocab();
        let visit = vocab.get("visit").unwrap();
        assert!(!out.contains(&ExtTemplate::Close {
            src: PNodeId(0),
            dst: PNodeId(1),
            elabel: visit
        }));
        assert!(!out.is_empty());
        // friend edge to a new cust node must be among the templates.
        let friend = vocab.get("friend").unwrap();
        let cust = vocab.get("cust").unwrap();
        assert!(out.contains(&ExtTemplate::NewNode {
            at: PNodeId(0),
            outgoing: true,
            elabel: friend,
            nlabel: cust
        }));
    }

    #[test]
    fn applying_templates_yields_valid_larger_rules() {
        let (g, c, pred) = tiny();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        let mut out = FxHashSet::default();
        templates_at(&seed, &m, &g, c, 64, &mut out);
        let mut applied = 0;
        for t in &out {
            if let Some(r2) = t.apply(&seed, 2) {
                applied += 1;
                assert!(r2.is_nontrivial());
                assert_eq!(r2.antecedent().edge_count(), 1);
                assert!(r2.radius().unwrap() <= 2);
            }
        }
        assert!(applied > 0);
    }

    #[test]
    fn radius_budget_rejects_deep_extensions() {
        let (g, c, pred) = tiny();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        let mut out = FxHashSet::default();
        templates_at(&seed, &m, &g, c, 64, &mut out);
        // With d = 0 every extension that adds a node is rejected.
        for t in &out {
            if let ExtTemplate::NewNode { .. } = t {
                assert!(t.apply(&seed, 0).is_none());
            }
        }
    }

    #[test]
    fn cap_is_reported() {
        let (g, c, pred) = tiny();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let m = Matcher::new(&g, MatcherConfig::vf2());
        let mut out = FxHashSet::default();
        let capped = templates_at(&seed, &m, &g, c, 1, &mut out);
        assert!(capped, "cap of 1 must be reported as hit");
    }

    #[test]
    fn duplicate_edges_are_not_proposed() {
        let (g, c, pred) = tiny();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let vocab = g.vocab();
        let friend = vocab.get("friend").unwrap();
        let cust = vocab.get("cust").unwrap();
        // Extend seed with friend(x, x2) first.
        let t =
            ExtTemplate::NewNode { at: PNodeId(0), outgoing: true, elabel: friend, nlabel: cust };
        let r1 = t.apply(&seed, 2).unwrap();
        // Re-proposing the same Close edge on r1 must fail to apply.
        let visit = vocab.get("visit").unwrap();
        let m = Matcher::new(&g, MatcherConfig::vf2());
        let mut out = FxHashSet::default();
        templates_at(&r1, &m, &g, c, 64, &mut out);
        for t in out {
            if let Some(r2) = t.apply(&r1, 2) {
                // No duplicate pattern edges can arise.
                let mut edges: Vec<_> = r2.pr().edges().to_vec();
                let before = edges.len();
                edges.dedup();
                assert_eq!(before, edges.len());
            }
        }
        let _ = visit;
    }
}
