//! The DMine coordinator (Fig. 4 of the paper).

use crate::incdiv::IncDiv;
use crate::messages::{LocalConf, MinedRule};
use crate::reduction::{apply_reduction, ReductionStats};
use crate::worker::{ClassifiedSite, MineTaskCtx};
use gpar_core::{q_stats, ConfStats, Confidence, DiversifyParams, Gpar, LcwaClass, Predicate};
use gpar_exec::{ExecStats, Executor};
use gpar_graph::{FxHashMap, Graph, NodeId};
use gpar_iso::MatcherConfig;
use gpar_partition::{build_sites, chunk_by_load, PartitionStrategy};
use gpar_pattern::{are_isomorphic, bisimilar, CanonicalCode};
use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

/// Finest site-chunk granularity, per worker, a phase may use. More
/// granules than workers is what lets stealing even out per-site cost
/// skew; a small multiple keeps per-task overhead negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Tasks per worker a phase *aims* for. A phase's task count is
/// `items × chunks`; when the item side (frontier rules, candidates) is
/// already large, one chunk per task suffices — multiplying further only
/// buys queue/clock overhead on tiny tasks.
const TASKS_PER_WORKER: usize = 16;

/// Chunk ranges for one phase over `items` work items: aim for
/// [`TASKS_PER_WORKER`] tasks per worker in total, capped at
/// [`CHUNKS_PER_WORKER`] granules. Deterministic in `(loads, items,
/// workers)` — and results never depend on the chunking at all (the
/// per-chunk reductions are exact), so this is purely a scheduling knob.
fn phase_chunks(loads: &[u64], items: usize, workers: usize) -> Vec<Range<usize>> {
    let workers = workers.max(1);
    let per_item = (workers * TASKS_PER_WORKER).div_ceil(items.max(1));
    chunk_by_load(loads, per_item.clamp(1, workers * CHUNKS_PER_WORKER))
}

/// Which of DMine's optimizations are enabled. The paper's `DMineno`
/// baseline disables the incremental diversification, the Lemma 3
/// reductions and the bisimulation prefilter; the naive
/// "discover-then-diversify" strategy additionally defers diversification
/// entirely to the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MineOpts {
    /// Maintain `L_k` incrementally across rounds (`incDiv`).
    pub incremental_div: bool,
    /// Apply the Lemma 3 reduction rules.
    pub reduction_rules: bool,
    /// Use canonical-code bucketing + bisimulation before exact
    /// automorphism tests when grouping candidate rules.
    pub bisim_prefilter: bool,
    /// Diversify during mining at all (false = naive baseline: one greedy
    /// pass after discovery completes).
    pub diversify_during: bool,
}

impl MineOpts {
    /// Full DMine.
    pub fn all() -> Self {
        Self {
            incremental_div: true,
            reduction_rules: true,
            bisim_prefilter: true,
            diversify_during: true,
        }
    }

    /// The paper's `DMineno`: no optimizations, but still diversifying
    /// (from scratch) every round.
    pub fn none() -> Self {
        Self {
            incremental_div: false,
            reduction_rules: false,
            bisim_prefilter: false,
            diversify_during: true,
        }
    }

    /// The naive "discover-then-diversify" strategy of §4.2's discussion.
    pub fn naive() -> Self {
        Self {
            incremental_div: false,
            reduction_rules: false,
            bisim_prefilter: false,
            diversify_during: false,
        }
    }
}

/// DMine configuration (the DMP instance plus execution knobs).
#[derive(Debug, Clone)]
pub struct DmineConfig {
    /// Result size `k`.
    pub k: usize,
    /// Support threshold σ (on `supp(R, G) = ‖P_R(x, G)‖`).
    pub sigma: u64,
    /// Radius bound `d` on `r(P_R, x)`.
    pub d: u32,
    /// Diversification balance λ ∈ [0, 1].
    pub lambda: f64,
    /// Number of executor worker threads `n − 1` (the coordinator is the
    /// caller; with `workers = 1` tasks run inline on it).
    pub workers: usize,
    /// Levelwise growth rounds (= maximum antecedent edges; see the crate
    /// docs for the interpretation of the paper's "d rounds").
    pub max_rounds: usize,
    /// Cap on matches enumerated per center during template generation.
    pub match_cap: u64,
    /// Cap on extension templates kept per rule per worker.
    pub ext_cap: usize,
    /// Cap on frontier rules extended per round (the paper reports ≤ 300
    /// candidate patterns; drops are counted, never silent).
    pub max_frontier: usize,
    /// Isomorphism engine configuration for the workers.
    pub engine: MatcherConfig,
    /// Optimization toggles.
    pub opts: MineOpts,
    /// Center-to-worker assignment strategy.
    pub strategy: PartitionStrategy,
}

impl Default for DmineConfig {
    fn default() -> Self {
        Self {
            k: 10,
            sigma: 1,
            d: 2,
            lambda: 0.5,
            workers: gpar_exec::default_workers(4),
            max_rounds: 3,
            match_cap: 128,
            ext_cap: 64,
            max_frontier: 300,
            engine: MatcherConfig::vf2(),
            opts: MineOpts::all(),
            strategy: PartitionStrategy::Balanced,
        }
    }
}

/// Outcome of a mining run.
#[derive(Debug)]
pub struct MineResult {
    /// The diversified top-k rules, best pair first.
    pub top_k: Vec<MinedRule>,
    /// The full Σ of retained rules (supp ≥ σ, nontrivial, unpruned), in
    /// discovery order — used e.g. to re-rank by alternative metrics in
    /// the Exp-2 precision study.
    pub sigma: Vec<MinedRule>,
    /// Objective value `F(L_k)`.
    pub objective: f64,
    /// Total rules retained in Σ across all rounds.
    pub sigma_size: usize,
    /// Rounds actually executed.
    pub rounds_run: usize,
    /// Candidate rules generated (before σ/trivial filtering).
    pub candidates_generated: usize,
    /// Logical rules dropped (`supp(Qq̄) = 0`, conf = ∞; §3 Remark).
    pub logical_rules: usize,
    /// Accumulated reduction-rule statistics.
    pub reduction: ReductionStats,
    /// Per-round, per-worker busy times (skew reporting): measured
    /// **per-task thread-CPU costs**, list-scheduled onto `workers`
    /// virtual processors per phase (phases are barriers), summed per
    /// round — i.e. what each worker of an idle `workers`-core host would
    /// be busy for, independent of how the OS actually interleaved the
    /// pool. Same clock as [`MineResult::partition_time`] and
    /// [`MineResult::coordinator_time`], so the three compose into a
    /// consistent simulated schedule; see
    /// [`MineResult::simulated_parallel_time`].
    pub round_worker_times: Vec<Vec<Duration>>,
    /// Successful work-steal operations across all rounds (0 means the
    /// static seed assignment was already balanced, or `workers = 1`).
    pub steals: u64,
    /// Thread-CPU time spent building candidate sites.
    pub partition_time: Duration,
    /// Thread-CPU time the coordinator thread spent (grouping, assembly,
    /// incDiv, reductions) — excludes any task work executed inline on
    /// the coordinator when `workers = 1`.
    pub coordinator_time: Duration,
    /// Total wall-clock time of the run (the one wall-clock field).
    pub elapsed: Duration,
    /// Whether any cap (frontier, templates, match enumeration) was hit.
    pub capped: bool,
}

impl MineResult {
    /// Simulated wall-clock on an `n`-processor shared-nothing cluster:
    /// partitioning divided by `n` (center-parallel), plus the per-round
    /// critical path (slowest worker per round, as BSP barriers dictate),
    /// plus the sequential coordinator remainder. Every component is
    /// measured on the **thread-CPU clock** (never wall-clock), so the sum
    /// is meaningful on oversubscribed or single-core hosts. See the
    /// substitutions section of DESIGN.md: on a single-core host this is
    /// the faithful reading of the paper's per-round cost
    /// `t(|G|/n, k, |Σ|)`.
    pub fn simulated_parallel_time(&self) -> Duration {
        let n = self.round_worker_times.iter().map(|r| r.len()).max().unwrap_or(1).max(1) as u32;
        let critical: Duration = self
            .round_worker_times
            .iter()
            .map(|r| r.iter().max().copied().unwrap_or_default())
            .sum();
        self.partition_time / n + critical + self.coordinator_time
    }

    /// The retained rule set Σ deduplicated by canonical code of `P_R`,
    /// in discovery order — the export surface a serving catalog ingests
    /// (`gpar-serve`'s `RuleCatalog::from_mine_result`). Σ is normally
    /// already duplicate-free (the coordinator groups automorphic rules),
    /// so this is a cheap safety net for merged results.
    pub fn unique_sigma(&self) -> Vec<&MinedRule> {
        let mut seen: gpar_graph::FxHashSet<CanonicalCode> = Default::default();
        self.sigma.iter().filter(|r| seen.insert(r.rule.pr().canonical_code())).collect()
    }
}

/// The parallel diversified GPAR miner.
#[derive(Debug, Clone)]
pub struct DMine {
    config: DmineConfig,
}

impl DMine {
    /// Creates a miner with the given configuration.
    pub fn new(config: DmineConfig) -> Self {
        Self { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DmineConfig {
        &self.config
    }

    /// Mines each predicate in turn (§4.2 Remarks (1): "when a set of
    /// predicates instead of a single q(x, y) is given, it groups the
    /// predicates and iteratively mines GPARs for each distinct one").
    pub fn run_multi(&self, g: &Graph, preds: &[Predicate]) -> Vec<(Predicate, MineResult)> {
        let mut seen = gpar_graph::FxHashSet::default();
        preds.iter().filter(|p| seen.insert(**p)).map(|p| (*p, self.run(g, p))).collect()
    }

    /// Mines without a user-given predicate (§4.2 Remarks (2)): collects
    /// the `top` most frequent edge patterns of `g` as predicates, then
    /// mines each as in [`DMine::run_multi`].
    pub fn run_auto(&self, g: &Graph, top: usize) -> Vec<(Predicate, MineResult)> {
        let preds: Vec<Predicate> = g
            .frequent_edge_patterns(top)
            .into_iter()
            .map(|((sl, el, dl), _)| {
                Predicate::new(
                    gpar_pattern::NodeCond::Label(sl),
                    el,
                    gpar_pattern::NodeCond::Label(dl),
                )
            })
            .collect();
        self.run_multi(g, &preds)
    }

    /// Mines diversified top-k GPARs for `pred` over `g`.
    pub fn run(&self, g: &Graph, pred: &Predicate) -> MineResult {
        let cfg = &self.config;
        let t_run = gpar_obs::Ts::monotonic_now();
        // Trivial case 1: q(x, y) names no one in G (§3 Remark).
        let qs = q_stats(g, pred);
        if qs.supp_q() == 0 {
            return empty_result();
        }
        // Mining centers: positives ∪ negatives. Unknown candidates never
        // affect supp(R) or supp(Qq̄), so they are skipped entirely.
        let mut centers: Vec<NodeId> = qs.positives.iter().copied().collect();
        centers.extend(qs.negatives.iter().copied());
        centers.sort_unstable();
        let class_of = |c: NodeId| {
            if qs.positives.contains(&c) {
                LcwaClass::Positive
            } else {
                LcwaClass::Negative
            }
        };
        // Sites are built once, flat and in center-id order; rounds chunk
        // them into task granules instead of pre-assigning them to
        // workers. `Balanced` forms near-equal-*load* granules, `Hash`
        // (the skew baseline) load-blind equal-*count* granules — either
        // way the executor's stealing handles whatever the static estimate
        // gets wrong.
        let cpu_pre_part = gpar_graph::thread_cpu_time();
        let sites: Vec<ClassifiedSite> = build_sites(g, &centers, cfg.d)
            .into_iter()
            .map(|site| ClassifiedSite { class: class_of(site.center_global), site })
            .collect();
        let partition_time = gpar_graph::thread_cpu_time().saturating_sub(cpu_pre_part);
        // Load estimates feeding the per-phase chunking: `Balanced` uses
        // site sizes, `Hash` (the skew baseline) is load-blind.
        let loads: Vec<u64> = match cfg.strategy {
            PartitionStrategy::Balanced => sites.iter().map(|cs| cs.site.load()).collect(),
            PartitionStrategy::Hash => vec![1u64; sites.len()],
        };

        let params =
            DiversifyParams::new(cfg.lambda, cfg.k, qs.supp_q() as f64 * qs.supp_qbar() as f64);
        let mut result = self.rounds(g, pred, params, qs.supp_q(), qs.supp_qbar(), &sites, &loads);
        result.objective = finalize_objective(&result, params);
        result.partition_time = partition_time;
        result.elapsed = t_run.elapsed();
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn rounds(
        &self,
        g: &Graph,
        pred: &Predicate,
        params: DiversifyParams,
        supp_q: u64,
        supp_qbar: u64,
        sites: &[ClassifiedSite],
        loads: &[u64],
    ) -> MineResult {
        let cfg = &self.config;
        let cpu0 = gpar_graph::thread_cpu_time();
        let exec = Executor::new(cfg.workers);
        let mut rules: Vec<MinedRule> = Vec::new();
        let mut alive: Vec<bool> = Vec::new();
        let mut codes: FxHashMap<CanonicalCode, usize> = FxHashMap::default();
        let mut inc = IncDiv::new(params);
        let mut reduction = ReductionStats::default();
        let mut round_worker_times = Vec::new();
        let mut candidates_generated = 0usize;
        let mut logical_rules = 0usize;
        let mut capped = false;
        let mut rounds_run = 0usize;
        let mut steals = 0u64;
        // Task work executed inline on this thread (workers = 1): counted
        // as worker time, so it must be excluded from coordinator_time.
        let mut inline_cpu = Duration::ZERO;
        let ctx = |_w: usize| MineTaskCtx::new(cfg.engine, cfg.match_cap, cfg.ext_cap);
        // Folds one phase's stats into the round report: virtual per-worker
        // profile summed elementwise (the phase boundary is a barrier),
        // steal count, and the inline-execution CPU correction.
        let fold_phase = |stats: &ExecStats,
                          round_virtual: &mut Vec<Duration>,
                          steals: &mut u64,
                          inline_cpu: &mut Duration| {
            if stats.inline {
                *inline_cpu += stats.worker_times.iter().sum::<Duration>();
            }
            *steals += stats.steals;
            for (acc, t) in round_virtual.iter_mut().zip(stats.virtual_worker_times(cfg.workers)) {
                *acc += t;
            }
        };

        let seed = Gpar::seed(pred, g.vocab().clone());
        let mut frontier: Vec<Gpar> = vec![seed];

        for round in 1..=cfg.max_rounds {
            if frontier.is_empty() {
                break;
            }
            rounds_run = round;
            let mut round_virtual = vec![Duration::ZERO; cfg.workers.max(1)];

            // ---- Phase 1: generate templates -------------------------
            // One task per (frontier rule × site chunk); results come
            // back in task-index order, and the per-rule union is a set,
            // so the merge is independent of chunking and stealing.
            let frontier_now = std::mem::take(&mut frontier);
            let chunks = phase_chunks(loads, frontier_now.len(), cfg.workers);
            let nchunks = chunks.len();
            let (gen_out, stats) =
                exec.map_indexed(frontier_now.len() * nchunks, ctx, |c: &mut MineTaskCtx, t| {
                    c.generate(&frontier_now[t / nchunks], &sites[chunks[t % nchunks].clone()])
                });
            fold_phase(&stats, &mut round_virtual, &mut steals, &mut inline_cpu);
            let mut per_rule: Vec<gpar_graph::FxHashSet<crate::extension::ExtTemplate>> =
                vec![Default::default(); frontier_now.len()];
            for (t, gt) in gen_out.into_iter().enumerate() {
                capped |= gt.dropped > 0 || gt.match_capped;
                per_rule[t / nchunks].extend(gt.templates);
            }

            // ---- Materialize + group candidates ----------------------
            // The per-task template cap is re-applied *globally* here (on
            // the same sorted order the tasks truncate by), so the
            // candidate set is identical for every worker count and every
            // chunking: each task's kept-`ext_cap` smallest templates
            // necessarily include its share of the globally smallest
            // `ext_cap`.
            let mut candidates: Vec<Gpar> = Vec::new();
            for (i, set) in per_rule.into_iter().enumerate() {
                let parent = &frontier_now[i];
                let mut templates: Vec<_> = set.into_iter().collect();
                templates.sort_unstable();
                if templates.len() > cfg.ext_cap {
                    capped = true;
                    templates.truncate(cfg.ext_cap);
                }
                for t in templates {
                    if let Some(rule) = t.apply(parent, cfg.d) {
                        candidates.push(rule);
                    }
                }
            }
            candidates_generated += candidates.len();
            let candidates = group_candidates(candidates, cfg.opts.bisim_prefilter);

            if candidates.is_empty() {
                round_worker_times.push(round_virtual);
                break;
            }

            // ---- Phase 2: evaluate ------------------------------------
            // One task per (candidate × site chunk); partial LocalConfs
            // merge in task-index order (chunk order within each rule).
            // With many candidates the phase re-chunks coarser — the
            // candidate axis already provides the granularity.
            let chunks = phase_chunks(loads, candidates.len(), cfg.workers);
            let nchunks = chunks.len();
            let (eval_out, stats) =
                exec.map_indexed(candidates.len() * nchunks, ctx, |c: &mut MineTaskCtx, t| {
                    c.evaluate(&candidates[t / nchunks], &sites[chunks[t % nchunks].clone()])
                });
            fold_phase(&stats, &mut round_virtual, &mut steals, &mut inline_cpu);
            let mut merged: Vec<(LocalConf, bool)> =
                (0..candidates.len()).map(|_| (LocalConf::default(), false)).collect();
            for (t, (lc, ext)) in eval_out.into_iter().enumerate() {
                let slot = &mut merged[t / nchunks];
                slot.0.merge(&lc);
                slot.1 |= ext;
            }
            round_worker_times.push(round_virtual);

            // ---- Assemble ∆E (σ filter + trivial filter) --------------
            let mut fresh: Vec<usize> = Vec::new();
            for (rule, (lc, extendable)) in candidates.iter().zip(merged) {
                if lc.supp_r < cfg.sigma {
                    continue; // anti-monotone: extensions can't recover σ
                }
                let stats = ConfStats {
                    supp_r: lc.supp_r,
                    supp_q_ante: 0, // not needed by DMP; see RuleEvaluation
                    supp_q,
                    supp_qbar,
                    supp_q_qbar: lc.supp_q_qbar,
                };
                let confidence = stats.conf();
                if confidence == Confidence::LogicalRule {
                    // §4.2 "Trivial GPARs" (2): holds on the entire G.
                    logical_rules += 1;
                    continue;
                }
                let conf_value = confidence.numeric().unwrap_or(0.0);
                let code = rule.pr().canonical_code();
                if codes.contains_key(&code) {
                    continue; // already in Σ from an earlier round
                }
                let idx = rules.len();
                codes.insert(code, idx);
                rules.push(MinedRule {
                    rule: Arc::new(rule.clone()),
                    matches: Arc::new(lc.matches.iter().copied().collect()),
                    stats,
                    confidence,
                    conf_value,
                    usupp: lc.usupp,
                    extendable,
                    round,
                });
                alive.push(true);
                fresh.push(idx);
            }

            // ---- Diversify --------------------------------------------
            if cfg.opts.diversify_during {
                if cfg.opts.incremental_div {
                    inc.update(&rules, &fresh, &alive);
                } else {
                    // DMineno: re-diversify from scratch every round.
                    inc.reset();
                    let all: Vec<usize> = (0..rules.len()).filter(|&i| alive[i]).collect();
                    inc.update(&rules, &all, &alive);
                }
            }

            // ---- Select next frontier (+ Lemma 3 reductions) ----------
            let mut next: Vec<usize> = fresh.clone();
            if cfg.opts.reduction_rules {
                let stats = apply_reduction(&inc, &rules, &mut alive, &mut next);
                reduction.sigma_pruned += stats.sigma_pruned;
                reduction.frontier_pruned += stats.frontier_pruned;
            } else {
                next.retain(|&i| rules[i].extendable);
            }
            // Deterministic frontier cap: best confidence first.
            next.sort_by(|&a, &b| {
                rules[b].conf_value.total_cmp(&rules[a].conf_value).then(a.cmp(&b))
            });
            if next.len() > cfg.max_frontier {
                capped = true;
                next.truncate(cfg.max_frontier);
            }
            frontier = next.iter().map(|&i| (*rules[i].rule).clone()).collect();
        }

        // Naive baseline: single diversification pass at the very end.
        if !cfg.opts.diversify_during {
            let all: Vec<usize> = (0..rules.len()).filter(|&i| alive[i]).collect();
            inc.update(&rules, &all, &alive);
        }

        let top_idx = inc.top_k(&rules);
        let top_k: Vec<MinedRule> = top_idx.iter().map(|&i| rules[i].clone()).collect();
        let sigma_size = alive.iter().filter(|&&a| a).count();
        let sigma: Vec<MinedRule> =
            rules.iter().zip(&alive).filter(|&(_, &a)| a).map(|(r, _)| r.clone()).collect();
        let coordinator_time =
            gpar_graph::thread_cpu_time().saturating_sub(cpu0).saturating_sub(inline_cpu);
        MineResult {
            top_k,
            sigma,
            objective: 0.0, // filled by caller
            sigma_size,
            rounds_run,
            candidates_generated,
            logical_rules,
            reduction,
            round_worker_times,
            steals,
            partition_time: Duration::ZERO, // filled by run()
            coordinator_time,
            elapsed: Duration::ZERO, // filled by run()
            capped,
        }
    }
}

fn finalize_objective(result: &MineResult, params: DiversifyParams) -> f64 {
    let items: Vec<(f64, &gpar_graph::FxHashSet<NodeId>)> =
        result.top_k.iter().map(|r| (r.conf_value, r.matches.as_ref())).collect();
    gpar_core::objective_f(&params, &items)
}

fn empty_result() -> MineResult {
    MineResult {
        top_k: Vec::new(),
        sigma: Vec::new(),
        objective: 0.0,
        sigma_size: 0,
        rounds_run: 0,
        candidates_generated: 0,
        logical_rules: 0,
        reduction: ReductionStats::default(),
        round_worker_times: Vec::new(),
        steals: 0,
        partition_time: Duration::ZERO,
        coordinator_time: Duration::ZERO,
        elapsed: Duration::ZERO,
        capped: false,
    }
}

/// Deduplicates automorphic candidates.
///
/// * `fast` — bucket by canonical code, then confirm with the Lemma 4
///   bisimulation prefilter followed by the exact automorphism test;
/// * `!fast` (the `DMineno` path) — pairwise exact automorphism tests
///   against all kept representatives.
fn group_candidates(cands: Vec<Gpar>, fast: bool) -> Vec<Gpar> {
    if fast {
        let mut buckets: FxHashMap<CanonicalCode, Vec<usize>> = FxHashMap::default();
        let mut kept: Vec<Gpar> = Vec::new();
        for rule in cands {
            let code = rule.pr().canonical_code();
            let bucket = buckets.entry(code).or_default();
            let dup = bucket.iter().any(|&j| {
                bisimilar(kept[j].pr(), rule.pr()) && are_isomorphic(kept[j].pr(), rule.pr(), true)
            });
            if !dup {
                bucket.push(kept.len());
                kept.push(rule);
            }
        }
        kept
    } else {
        let mut kept: Vec<Gpar> = Vec::new();
        for rule in cands {
            if !kept.iter().any(|k| are_isomorphic(k.pr(), rule.pr(), true)) {
                kept.push(rule);
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::NodeCond;

    /// Build the paper's G1-style scenario: friends sharing restaurant
    /// tastes; some visit French restaurants, one visits only Asian.
    fn restaurant_graph() -> (Graph, Predicate) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let fr = vocab.intern("french_restaurant");
        let asian = vocab.intern("asian_restaurant");
        let (friend, like, visit) =
            (vocab.intern("friend"), vocab.intern("like"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        // 8 pairs of friends; in 6 pairs both visit a FR they both like;
        // in 2 pairs one visits an Asian restaurant instead (negatives).
        for i in 0..8 {
            let c1 = b.add_node(cust);
            let c2 = b.add_node(cust);
            b.add_edge(c1, c2, friend);
            b.add_edge(c2, c1, friend);
            let r = b.add_node(fr);
            b.add_edge(c1, r, like);
            b.add_edge(c2, r, like);
            if i < 6 {
                b.add_edge(c1, r, visit);
                b.add_edge(c2, r, visit);
            } else {
                let a = b.add_node(asian);
                b.add_edge(c1, a, visit);
                b.add_edge(c2, r, visit);
            }
        }
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(fr));
        (g, pred)
    }

    #[test]
    fn dmine_finds_high_confidence_rules() {
        let (g, pred) = restaurant_graph();
        let cfg = DmineConfig { k: 4, sigma: 2, workers: 3, max_rounds: 2, ..Default::default() };
        let result = DMine::new(cfg).run(&g, &pred);
        assert!(result.rounds_run >= 1);
        assert!(!result.top_k.is_empty(), "should find rules");
        for r in &result.top_k {
            assert!(r.rule.is_nontrivial());
            assert!(r.support() >= 2);
            assert!(r.rule.radius().unwrap() <= 2);
        }
        // The like(x, y) antecedent is the strongest signal planted.
        let like = g.vocab().get("like").unwrap();
        let found_like = result.top_k.iter().any(|r| {
            r.rule
                .antecedent()
                .edges()
                .iter()
                .any(|e| e.cond == gpar_pattern::EdgeCond::Label(like))
        });
        assert!(found_like, "expected a rule using the like edge");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (g, pred) = restaurant_graph();
        let run = |workers: usize| {
            let cfg = DmineConfig { k: 4, sigma: 2, workers, max_rounds: 2, ..Default::default() };
            let mut r = DMine::new(cfg).run(&g, &pred);
            let mut codes: Vec<_> =
                r.top_k.drain(..).map(|m| m.rule.pr().canonical_code()).collect();
            codes.sort();
            (codes, r.sigma_size)
        };
        let (c1, s1) = run(1);
        let (c2, s2) = run(3);
        let (c3, s3) = run(7);
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
    }

    #[test]
    fn optimized_and_unoptimized_agree_on_sigma() {
        let (g, pred) = restaurant_graph();
        let mk = |opts: MineOpts| DmineConfig {
            k: 4,
            sigma: 2,
            workers: 2,
            max_rounds: 2,
            opts,
            ..Default::default()
        };
        let full = DMine::new(mk(MineOpts::all())).run(&g, &pred);
        let no = DMine::new(mk(MineOpts::none())).run(&g, &pred);
        // Reduction rules may prune Σ in the optimized run, so Σ_full ≤
        // Σ_no; but both must achieve the same objective within the 2-approx
        // guarantee band, and DMineno's Σ must contain every full-Σ rule.
        assert!(full.sigma_size <= no.sigma_size);
        assert!(!full.top_k.is_empty() && !no.top_k.is_empty());
        let ratio = full.objective / no.objective;
        assert!(ratio > 0.5 && ratio < 2.0, "objectives diverge: {ratio}");
    }

    #[test]
    fn sigma_threshold_filters_rules() {
        let (g, pred) = restaurant_graph();
        let lo =
            DMine::new(DmineConfig { sigma: 1, workers: 2, max_rounds: 2, ..Default::default() })
                .run(&g, &pred);
        let hi =
            DMine::new(DmineConfig { sigma: 10, workers: 2, max_rounds: 2, ..Default::default() })
                .run(&g, &pred);
        assert!(hi.sigma_size <= lo.sigma_size);
        for r in &hi.top_k {
            assert!(r.support() >= 10);
        }
    }

    #[test]
    fn empty_predicate_returns_empty() {
        let (g, _) = restaurant_graph();
        let vocab = g.vocab();
        let ghost = vocab.intern("ghost_label");
        let e = vocab.intern("ghost_edge");
        let pred = Predicate::new(NodeCond::Label(ghost), e, NodeCond::Label(ghost));
        let result = DMine::new(DmineConfig::default()).run(&g, &pred);
        assert!(result.top_k.is_empty());
        assert_eq!(result.rounds_run, 0);
    }

    #[test]
    fn run_multi_dedups_predicates_and_mines_each() {
        let (g, pred) = restaurant_graph();
        let miner = DMine::new(DmineConfig {
            k: 2,
            sigma: 2,
            workers: 2,
            max_rounds: 1,
            ..Default::default()
        });
        let results = miner.run_multi(&g, &[pred, pred]);
        assert_eq!(results.len(), 1, "duplicate predicates are grouped");
        assert!(!results[0].1.top_k.is_empty());
    }

    #[test]
    fn run_auto_derives_predicates_from_frequent_edges() {
        let (g, _) = restaurant_graph();
        let miner = DMine::new(DmineConfig {
            k: 2,
            sigma: 2,
            workers: 2,
            max_rounds: 1,
            ..Default::default()
        });
        let results = miner.run_auto(&g, 3);
        assert_eq!(results.len(), 3);
        // The most frequent edge pattern (cust -like-> fr) must be among
        // the auto-derived predicates and mineable.
        let like = g.vocab().get("like").unwrap();
        assert!(results.iter().any(|(p, _)| p.label == like));
    }

    #[test]
    fn group_candidates_fast_and_slow_agree() {
        let (g, pred) = restaurant_graph();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let friend = g.vocab().get("friend").unwrap();
        let cust = g.vocab().get("cust").unwrap();
        let t = crate::extension::ExtTemplate::NewNode {
            at: gpar_pattern::PNodeId(0),
            outgoing: true,
            elabel: friend,
            nlabel: cust,
        };
        let r1 = t.apply(&seed, 2).unwrap();
        let cands = vec![r1.clone(), r1.clone(), seed.clone()];
        let fast = group_candidates(cands.clone(), true);
        let slow = group_candidates(cands, false);
        assert_eq!(fast.len(), 2);
        assert_eq!(slow.len(), 2);
    }
}
