//! The DMine coordinator (Fig. 4 of the paper).

use crate::incdiv::IncDiv;
use crate::messages::{LocalConf, MinedRule};
use crate::reduction::{apply_reduction, ReductionStats};
use crate::worker::{ClassifiedSite, GeneratedTemplates, MineWorker};
use gpar_core::{q_stats, ConfStats, Confidence, DiversifyParams, Gpar, LcwaClass, Predicate};
use gpar_graph::{FxHashMap, Graph, NodeId};
use gpar_iso::MatcherConfig;
use gpar_partition::{partition_sites, CenterSite, PartitionStrategy};
use gpar_pattern::{are_isomorphic, bisimilar, CanonicalCode};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which of DMine's optimizations are enabled. The paper's `DMineno`
/// baseline disables the incremental diversification, the Lemma 3
/// reductions and the bisimulation prefilter; the naive
/// "discover-then-diversify" strategy additionally defers diversification
/// entirely to the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MineOpts {
    /// Maintain `L_k` incrementally across rounds (`incDiv`).
    pub incremental_div: bool,
    /// Apply the Lemma 3 reduction rules.
    pub reduction_rules: bool,
    /// Use canonical-code bucketing + bisimulation before exact
    /// automorphism tests when grouping candidate rules.
    pub bisim_prefilter: bool,
    /// Diversify during mining at all (false = naive baseline: one greedy
    /// pass after discovery completes).
    pub diversify_during: bool,
}

impl MineOpts {
    /// Full DMine.
    pub fn all() -> Self {
        Self {
            incremental_div: true,
            reduction_rules: true,
            bisim_prefilter: true,
            diversify_during: true,
        }
    }

    /// The paper's `DMineno`: no optimizations, but still diversifying
    /// (from scratch) every round.
    pub fn none() -> Self {
        Self {
            incremental_div: false,
            reduction_rules: false,
            bisim_prefilter: false,
            diversify_during: true,
        }
    }

    /// The naive "discover-then-diversify" strategy of §4.2's discussion.
    pub fn naive() -> Self {
        Self {
            incremental_div: false,
            reduction_rules: false,
            bisim_prefilter: false,
            diversify_during: false,
        }
    }
}

/// DMine configuration (the DMP instance plus execution knobs).
#[derive(Debug, Clone)]
pub struct DmineConfig {
    /// Result size `k`.
    pub k: usize,
    /// Support threshold σ (on `supp(R, G) = ‖P_R(x, G)‖`).
    pub sigma: u64,
    /// Radius bound `d` on `r(P_R, x)`.
    pub d: u32,
    /// Diversification balance λ ∈ [0, 1].
    pub lambda: f64,
    /// Number of worker threads `n − 1` (the coordinator is the caller).
    pub workers: usize,
    /// Levelwise growth rounds (= maximum antecedent edges; see the crate
    /// docs for the interpretation of the paper's "d rounds").
    pub max_rounds: usize,
    /// Cap on matches enumerated per center during template generation.
    pub match_cap: u64,
    /// Cap on extension templates kept per rule per worker.
    pub ext_cap: usize,
    /// Cap on frontier rules extended per round (the paper reports ≤ 300
    /// candidate patterns; drops are counted, never silent).
    pub max_frontier: usize,
    /// Isomorphism engine configuration for the workers.
    pub engine: MatcherConfig,
    /// Optimization toggles.
    pub opts: MineOpts,
    /// Center-to-worker assignment strategy.
    pub strategy: PartitionStrategy,
}

impl Default for DmineConfig {
    fn default() -> Self {
        Self {
            k: 10,
            sigma: 1,
            d: 2,
            lambda: 0.5,
            workers: 4,
            max_rounds: 3,
            match_cap: 128,
            ext_cap: 64,
            max_frontier: 300,
            engine: MatcherConfig::vf2(),
            opts: MineOpts::all(),
            strategy: PartitionStrategy::Balanced,
        }
    }
}

/// Outcome of a mining run.
#[derive(Debug)]
pub struct MineResult {
    /// The diversified top-k rules, best pair first.
    pub top_k: Vec<MinedRule>,
    /// The full Σ of retained rules (supp ≥ σ, nontrivial, unpruned), in
    /// discovery order — used e.g. to re-rank by alternative metrics in
    /// the Exp-2 precision study.
    pub sigma: Vec<MinedRule>,
    /// Objective value `F(L_k)`.
    pub objective: f64,
    /// Total rules retained in Σ across all rounds.
    pub sigma_size: usize,
    /// Rounds actually executed.
    pub rounds_run: usize,
    /// Candidate rules generated (before σ/trivial filtering).
    pub candidates_generated: usize,
    /// Logical rules dropped (`supp(Qq̄) = 0`, conf = ∞; §3 Remark).
    pub logical_rules: usize,
    /// Accumulated reduction-rule statistics.
    pub reduction: ReductionStats,
    /// Per-round, per-worker wall-clock times (skew reporting).
    pub round_worker_times: Vec<Vec<Duration>>,
    /// Time spent building/partitioning candidate sites.
    pub partition_time: Duration,
    /// CPU time the coordinator thread spent (grouping, assembly, incDiv,
    /// reductions).
    pub coordinator_time: Duration,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
    /// Whether any cap (frontier, templates, match enumeration) was hit.
    pub capped: bool,
}

impl MineResult {
    /// Simulated wall-clock on an `n`-processor shared-nothing cluster:
    /// partitioning divided by `n` (center-parallel), plus the per-round
    /// critical path (slowest worker per round, as BSP barriers dictate),
    /// plus the sequential coordinator remainder. See the substitutions
    /// section of DESIGN.md: on a single-core host this is the faithful
    /// reading of the paper's per-round cost `t(|G|/n, k, |Σ|)`.
    pub fn simulated_parallel_time(&self) -> Duration {
        let n = self.round_worker_times.iter().map(|r| r.len()).max().unwrap_or(1).max(1) as u32;
        let critical: Duration = self
            .round_worker_times
            .iter()
            .map(|r| r.iter().max().copied().unwrap_or_default())
            .sum();
        self.partition_time / n + critical + self.coordinator_time
    }

    /// The retained rule set Σ deduplicated by canonical code of `P_R`,
    /// in discovery order — the export surface a serving catalog ingests
    /// (`gpar-serve`'s `RuleCatalog::from_mine_result`). Σ is normally
    /// already duplicate-free (the coordinator groups automorphic rules),
    /// so this is a cheap safety net for merged results.
    pub fn unique_sigma(&self) -> Vec<&MinedRule> {
        let mut seen: gpar_graph::FxHashSet<CanonicalCode> = Default::default();
        self.sigma.iter().filter(|r| seen.insert(r.rule.pr().canonical_code())).collect()
    }
}

enum CoordMsg {
    Generate(Arc<Vec<Gpar>>),
    Evaluate(Arc<Vec<Gpar>>),
    Done,
}

enum Reply {
    Generated { worker: usize, per_rule: Vec<GeneratedTemplates>, elapsed: Duration },
    Evaluated { worker: usize, evals: Vec<(LocalConf, bool)>, elapsed: Duration },
}

/// The parallel diversified GPAR miner.
#[derive(Debug, Clone)]
pub struct DMine {
    config: DmineConfig,
}

impl DMine {
    /// Creates a miner with the given configuration.
    pub fn new(config: DmineConfig) -> Self {
        Self { config }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DmineConfig {
        &self.config
    }

    /// Mines each predicate in turn (§4.2 Remarks (1): "when a set of
    /// predicates instead of a single q(x, y) is given, it groups the
    /// predicates and iteratively mines GPARs for each distinct one").
    pub fn run_multi(&self, g: &Graph, preds: &[Predicate]) -> Vec<(Predicate, MineResult)> {
        let mut seen = gpar_graph::FxHashSet::default();
        preds.iter().filter(|p| seen.insert(**p)).map(|p| (*p, self.run(g, p))).collect()
    }

    /// Mines without a user-given predicate (§4.2 Remarks (2)): collects
    /// the `top` most frequent edge patterns of `g` as predicates, then
    /// mines each as in [`DMine::run_multi`].
    pub fn run_auto(&self, g: &Graph, top: usize) -> Vec<(Predicate, MineResult)> {
        let preds: Vec<Predicate> = g
            .frequent_edge_patterns(top)
            .into_iter()
            .map(|((sl, el, dl), _)| {
                Predicate::new(
                    gpar_pattern::NodeCond::Label(sl),
                    el,
                    gpar_pattern::NodeCond::Label(dl),
                )
            })
            .collect();
        self.run_multi(g, &preds)
    }

    /// Mines diversified top-k GPARs for `pred` over `g`.
    pub fn run(&self, g: &Graph, pred: &Predicate) -> MineResult {
        let cfg = &self.config;
        let t_run = Instant::now();
        // Trivial case 1: q(x, y) names no one in G (§3 Remark).
        let qs = q_stats(g, pred);
        if qs.supp_q() == 0 {
            return empty_result();
        }
        // Mining centers: positives ∪ negatives. Unknown candidates never
        // affect supp(R) or supp(Qq̄), so they are skipped entirely.
        let mut centers: Vec<NodeId> = qs.positives.iter().copied().collect();
        centers.extend(qs.negatives.iter().copied());
        centers.sort_unstable();
        let class_of = |c: NodeId| {
            if qs.positives.contains(&c) {
                LcwaClass::Positive
            } else {
                LcwaClass::Negative
            }
        };
        let cpu_pre_part = gpar_graph::thread_cpu_time();
        let assignments = partition_sites(g, &centers, cfg.d, cfg.workers, cfg.strategy);
        let partition_time = gpar_graph::thread_cpu_time().saturating_sub(cpu_pre_part);
        let workers: Vec<MineWorker> = assignments
            .into_iter()
            .enumerate()
            .map(|(id, sites)| MineWorker {
                id,
                sites: sites
                    .into_iter()
                    .map(|site: CenterSite| ClassifiedSite {
                        class: class_of(site.center_global),
                        site,
                    })
                    .collect(),
                engine: cfg.engine,
                match_cap: cfg.match_cap,
                ext_cap: cfg.ext_cap,
                d: cfg.d,
            })
            .collect();

        let params =
            DiversifyParams::new(cfg.lambda, cfg.k, qs.supp_q() as f64 * qs.supp_qbar() as f64);
        let mut result = self.coordinate(g, pred, workers, params, qs.supp_q(), qs.supp_qbar());
        result.partition_time = partition_time;
        result.elapsed = t_run.elapsed();
        result
    }

    fn coordinate(
        &self,
        g: &Graph,
        pred: &Predicate,
        workers: Vec<MineWorker>,
        params: DiversifyParams,
        supp_q: u64,
        supp_qbar: u64,
    ) -> MineResult {
        let n = workers.len().max(1);
        let (reply_tx, reply_rx) = crossbeam::channel::unbounded::<Reply>();
        let mut cmd_txs = Vec::with_capacity(n);
        let mut cmd_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = crossbeam::channel::unbounded::<CoordMsg>();
            cmd_txs.push(tx);
            cmd_rxs.push(rx);
        }

        let cpu0 = gpar_graph::thread_cpu_time();
        let mut result = crossbeam::scope(|scope| {
            for w in workers {
                let rx = cmd_rxs.remove(0);
                let tx = reply_tx.clone();
                scope.spawn(move |_| worker_loop(w, rx, tx));
            }
            drop(reply_tx);
            self.rounds(g, pred, params, supp_q, supp_qbar, &cmd_txs, &reply_rx, n)
        })
        .expect("worker thread panicked");
        result.coordinator_time = gpar_graph::thread_cpu_time().saturating_sub(cpu0);

        result.objective = finalize_objective(&result, params);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn rounds(
        &self,
        g: &Graph,
        pred: &Predicate,
        params: DiversifyParams,
        supp_q: u64,
        supp_qbar: u64,
        cmd_txs: &[crossbeam::channel::Sender<CoordMsg>],
        reply_rx: &crossbeam::channel::Receiver<Reply>,
        n: usize,
    ) -> MineResult {
        let cfg = &self.config;
        let mut rules: Vec<MinedRule> = Vec::new();
        let mut alive: Vec<bool> = Vec::new();
        let mut codes: FxHashMap<CanonicalCode, usize> = FxHashMap::default();
        let mut inc = IncDiv::new(params);
        let mut reduction = ReductionStats::default();
        let mut round_worker_times = Vec::new();
        let mut candidates_generated = 0usize;
        let mut logical_rules = 0usize;
        let mut capped = false;
        let mut rounds_run = 0usize;

        let seed = Gpar::seed(pred, g.vocab().clone());
        let mut frontier: Vec<Gpar> = vec![seed];

        for round in 1..=cfg.max_rounds {
            if frontier.is_empty() {
                break;
            }
            rounds_run = round;
            let mut worker_times = vec![Duration::ZERO; n];

            // ---- Phase 1: generate templates -------------------------
            let frontier_arc = Arc::new(std::mem::take(&mut frontier));
            for tx in cmd_txs {
                tx.send(CoordMsg::Generate(frontier_arc.clone())).expect("worker alive");
            }
            // Union templates per frontier rule across workers.
            let mut per_rule: Vec<gpar_graph::FxHashSet<crate::extension::ExtTemplate>> =
                vec![Default::default(); frontier_arc.len()];
            for _ in 0..n {
                match reply_rx.recv().expect("worker reply") {
                    Reply::Generated { worker, per_rule: pr, elapsed } => {
                        worker_times[worker] += elapsed;
                        for (i, gt) in pr.into_iter().enumerate() {
                            capped |= gt.dropped > 0 || gt.match_capped;
                            per_rule[i].extend(gt.templates);
                        }
                    }
                    Reply::Evaluated { .. } => unreachable!("phase mismatch"),
                }
            }

            // ---- Materialize + group candidates ----------------------
            // The per-rule template cap is re-applied *globally* here (on
            // the same sorted order the workers truncate by), so the
            // candidate set is identical for every worker count n: each
            // worker's kept-`ext_cap` smallest templates necessarily
            // include its share of the globally smallest `ext_cap`.
            let mut candidates: Vec<Gpar> = Vec::new();
            for (i, set) in per_rule.into_iter().enumerate() {
                let parent = &frontier_arc[i];
                let mut templates: Vec<_> = set.into_iter().collect();
                templates.sort_unstable();
                if templates.len() > cfg.ext_cap {
                    capped = true;
                    templates.truncate(cfg.ext_cap);
                }
                for t in templates {
                    if let Some(rule) = t.apply(parent, cfg.d) {
                        candidates.push(rule);
                    }
                }
            }
            candidates_generated += candidates.len();
            let candidates = group_candidates(candidates, cfg.opts.bisim_prefilter);

            if candidates.is_empty() {
                round_worker_times.push(worker_times);
                break;
            }

            // ---- Phase 2: evaluate ------------------------------------
            let cand_arc = Arc::new(candidates);
            for tx in cmd_txs {
                tx.send(CoordMsg::Evaluate(cand_arc.clone())).expect("worker alive");
            }
            let mut merged: Vec<(LocalConf, bool)> =
                (0..cand_arc.len()).map(|_| (LocalConf::default(), false)).collect();
            for _ in 0..n {
                match reply_rx.recv().expect("worker reply") {
                    Reply::Evaluated { worker, evals, elapsed } => {
                        worker_times[worker] += elapsed;
                        for (slot, (lc, ext)) in merged.iter_mut().zip(evals) {
                            slot.0.merge(&lc);
                            slot.1 |= ext;
                        }
                    }
                    Reply::Generated { .. } => unreachable!("phase mismatch"),
                }
            }
            round_worker_times.push(worker_times);

            // ---- Assemble ∆E (σ filter + trivial filter) --------------
            let mut fresh: Vec<usize> = Vec::new();
            for (rule, (lc, extendable)) in cand_arc.iter().zip(merged) {
                if lc.supp_r < cfg.sigma {
                    continue; // anti-monotone: extensions can't recover σ
                }
                let stats = ConfStats {
                    supp_r: lc.supp_r,
                    supp_q_ante: 0, // not needed by DMP; see RuleEvaluation
                    supp_q,
                    supp_qbar,
                    supp_q_qbar: lc.supp_q_qbar,
                };
                let confidence = stats.conf();
                if confidence == Confidence::LogicalRule {
                    // §4.2 "Trivial GPARs" (2): holds on the entire G.
                    logical_rules += 1;
                    continue;
                }
                let conf_value = confidence.numeric().unwrap_or(0.0);
                let code = rule.pr().canonical_code();
                if codes.contains_key(&code) {
                    continue; // already in Σ from an earlier round
                }
                let idx = rules.len();
                codes.insert(code, idx);
                rules.push(MinedRule {
                    rule: Arc::new(rule.clone()),
                    matches: Arc::new(lc.matches.iter().copied().collect()),
                    stats,
                    confidence,
                    conf_value,
                    usupp: lc.usupp,
                    extendable,
                    round,
                });
                alive.push(true);
                fresh.push(idx);
            }

            // ---- Diversify --------------------------------------------
            if cfg.opts.diversify_during {
                if cfg.opts.incremental_div {
                    inc.update(&rules, &fresh, &alive);
                } else {
                    // DMineno: re-diversify from scratch every round.
                    inc.reset();
                    let all: Vec<usize> = (0..rules.len()).filter(|&i| alive[i]).collect();
                    inc.update(&rules, &all, &alive);
                }
            }

            // ---- Select next frontier (+ Lemma 3 reductions) ----------
            let mut next: Vec<usize> = fresh.clone();
            if cfg.opts.reduction_rules {
                let stats = apply_reduction(&inc, &rules, &mut alive, &mut next);
                reduction.sigma_pruned += stats.sigma_pruned;
                reduction.frontier_pruned += stats.frontier_pruned;
            } else {
                next.retain(|&i| rules[i].extendable);
            }
            // Deterministic frontier cap: best confidence first.
            next.sort_by(|&a, &b| {
                rules[b].conf_value.total_cmp(&rules[a].conf_value).then(a.cmp(&b))
            });
            if next.len() > cfg.max_frontier {
                capped = true;
                next.truncate(cfg.max_frontier);
            }
            frontier = next.iter().map(|&i| (*rules[i].rule).clone()).collect();
        }

        for tx in cmd_txs {
            let _ = tx.send(CoordMsg::Done);
        }

        // Naive baseline: single diversification pass at the very end.
        if !cfg.opts.diversify_during {
            let all: Vec<usize> = (0..rules.len()).filter(|&i| alive[i]).collect();
            inc.update(&rules, &all, &alive);
        }

        let top_idx = inc.top_k(&rules);
        let top_k: Vec<MinedRule> = top_idx.iter().map(|&i| rules[i].clone()).collect();
        let sigma_size = alive.iter().filter(|&&a| a).count();
        let sigma: Vec<MinedRule> =
            rules.iter().zip(&alive).filter(|&(_, &a)| a).map(|(r, _)| r.clone()).collect();
        MineResult {
            top_k,
            sigma,
            objective: 0.0, // filled by caller
            sigma_size,
            rounds_run,
            candidates_generated,
            logical_rules,
            reduction,
            round_worker_times,
            partition_time: Duration::ZERO,   // filled by run()
            coordinator_time: Duration::ZERO, // filled by coordinate()
            elapsed: Duration::ZERO,          // filled by run()
            capped,
        }
    }
}

fn finalize_objective(result: &MineResult, params: DiversifyParams) -> f64 {
    let items: Vec<(f64, &gpar_graph::FxHashSet<NodeId>)> =
        result.top_k.iter().map(|r| (r.conf_value, r.matches.as_ref())).collect();
    gpar_core::objective_f(&params, &items)
}

fn empty_result() -> MineResult {
    MineResult {
        top_k: Vec::new(),
        sigma: Vec::new(),
        objective: 0.0,
        sigma_size: 0,
        rounds_run: 0,
        candidates_generated: 0,
        logical_rules: 0,
        reduction: ReductionStats::default(),
        round_worker_times: Vec::new(),
        partition_time: Duration::ZERO,
        coordinator_time: Duration::ZERO,
        elapsed: Duration::ZERO,
        capped: false,
    }
}

/// Deduplicates automorphic candidates.
///
/// * `fast` — bucket by canonical code, then confirm with the Lemma 4
///   bisimulation prefilter followed by the exact automorphism test;
/// * `!fast` (the `DMineno` path) — pairwise exact automorphism tests
///   against all kept representatives.
fn group_candidates(cands: Vec<Gpar>, fast: bool) -> Vec<Gpar> {
    if fast {
        let mut buckets: FxHashMap<CanonicalCode, Vec<usize>> = FxHashMap::default();
        let mut kept: Vec<Gpar> = Vec::new();
        for rule in cands {
            let code = rule.pr().canonical_code();
            let bucket = buckets.entry(code).or_default();
            let dup = bucket.iter().any(|&j| {
                bisimilar(kept[j].pr(), rule.pr()) && are_isomorphic(kept[j].pr(), rule.pr(), true)
            });
            if !dup {
                bucket.push(kept.len());
                kept.push(rule);
            }
        }
        kept
    } else {
        let mut kept: Vec<Gpar> = Vec::new();
        for rule in cands {
            if !kept.iter().any(|k| are_isomorphic(k.pr(), rule.pr(), true)) {
                kept.push(rule);
            }
        }
        kept
    }
}

fn worker_loop(
    w: MineWorker,
    rx: crossbeam::channel::Receiver<CoordMsg>,
    tx: crossbeam::channel::Sender<Reply>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            CoordMsg::Generate(frontier) => {
                let start = gpar_graph::thread_cpu_time();
                let per_rule = w.generate(&frontier);
                let _ = tx.send(Reply::Generated {
                    worker: w.id,
                    per_rule,
                    elapsed: gpar_graph::thread_cpu_time().saturating_sub(start),
                });
            }
            CoordMsg::Evaluate(cands) => {
                let start = gpar_graph::thread_cpu_time();
                let evals = w.evaluate(&cands);
                let _ = tx.send(Reply::Evaluated {
                    worker: w.id,
                    evals,
                    elapsed: gpar_graph::thread_cpu_time().saturating_sub(start),
                });
            }
            CoordMsg::Done => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::NodeCond;

    /// Build the paper's G1-style scenario: friends sharing restaurant
    /// tastes; some visit French restaurants, one visits only Asian.
    fn restaurant_graph() -> (Graph, Predicate) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let fr = vocab.intern("french_restaurant");
        let asian = vocab.intern("asian_restaurant");
        let (friend, like, visit) =
            (vocab.intern("friend"), vocab.intern("like"), vocab.intern("visit"));
        let mut b = GraphBuilder::new(vocab.clone());
        // 8 pairs of friends; in 6 pairs both visit a FR they both like;
        // in 2 pairs one visits an Asian restaurant instead (negatives).
        for i in 0..8 {
            let c1 = b.add_node(cust);
            let c2 = b.add_node(cust);
            b.add_edge(c1, c2, friend);
            b.add_edge(c2, c1, friend);
            let r = b.add_node(fr);
            b.add_edge(c1, r, like);
            b.add_edge(c2, r, like);
            if i < 6 {
                b.add_edge(c1, r, visit);
                b.add_edge(c2, r, visit);
            } else {
                let a = b.add_node(asian);
                b.add_edge(c1, a, visit);
                b.add_edge(c2, r, visit);
            }
        }
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(fr));
        (g, pred)
    }

    #[test]
    fn dmine_finds_high_confidence_rules() {
        let (g, pred) = restaurant_graph();
        let cfg = DmineConfig { k: 4, sigma: 2, workers: 3, max_rounds: 2, ..Default::default() };
        let result = DMine::new(cfg).run(&g, &pred);
        assert!(result.rounds_run >= 1);
        assert!(!result.top_k.is_empty(), "should find rules");
        for r in &result.top_k {
            assert!(r.rule.is_nontrivial());
            assert!(r.support() >= 2);
            assert!(r.rule.radius().unwrap() <= 2);
        }
        // The like(x, y) antecedent is the strongest signal planted.
        let like = g.vocab().get("like").unwrap();
        let found_like = result.top_k.iter().any(|r| {
            r.rule
                .antecedent()
                .edges()
                .iter()
                .any(|e| e.cond == gpar_pattern::EdgeCond::Label(like))
        });
        assert!(found_like, "expected a rule using the like edge");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let (g, pred) = restaurant_graph();
        let run = |workers: usize| {
            let cfg = DmineConfig { k: 4, sigma: 2, workers, max_rounds: 2, ..Default::default() };
            let mut r = DMine::new(cfg).run(&g, &pred);
            let mut codes: Vec<_> =
                r.top_k.drain(..).map(|m| m.rule.pr().canonical_code()).collect();
            codes.sort();
            (codes, r.sigma_size)
        };
        let (c1, s1) = run(1);
        let (c2, s2) = run(3);
        let (c3, s3) = run(7);
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
        assert_eq!(c1, c2);
        assert_eq!(c2, c3);
    }

    #[test]
    fn optimized_and_unoptimized_agree_on_sigma() {
        let (g, pred) = restaurant_graph();
        let mk = |opts: MineOpts| DmineConfig {
            k: 4,
            sigma: 2,
            workers: 2,
            max_rounds: 2,
            opts,
            ..Default::default()
        };
        let full = DMine::new(mk(MineOpts::all())).run(&g, &pred);
        let no = DMine::new(mk(MineOpts::none())).run(&g, &pred);
        // Reduction rules may prune Σ in the optimized run, so Σ_full ≤
        // Σ_no; but both must achieve the same objective within the 2-approx
        // guarantee band, and DMineno's Σ must contain every full-Σ rule.
        assert!(full.sigma_size <= no.sigma_size);
        assert!(!full.top_k.is_empty() && !no.top_k.is_empty());
        let ratio = full.objective / no.objective;
        assert!(ratio > 0.5 && ratio < 2.0, "objectives diverge: {ratio}");
    }

    #[test]
    fn sigma_threshold_filters_rules() {
        let (g, pred) = restaurant_graph();
        let lo =
            DMine::new(DmineConfig { sigma: 1, workers: 2, max_rounds: 2, ..Default::default() })
                .run(&g, &pred);
        let hi =
            DMine::new(DmineConfig { sigma: 10, workers: 2, max_rounds: 2, ..Default::default() })
                .run(&g, &pred);
        assert!(hi.sigma_size <= lo.sigma_size);
        for r in &hi.top_k {
            assert!(r.support() >= 10);
        }
    }

    #[test]
    fn empty_predicate_returns_empty() {
        let (g, _) = restaurant_graph();
        let vocab = g.vocab();
        let ghost = vocab.intern("ghost_label");
        let e = vocab.intern("ghost_edge");
        let pred = Predicate::new(NodeCond::Label(ghost), e, NodeCond::Label(ghost));
        let result = DMine::new(DmineConfig::default()).run(&g, &pred);
        assert!(result.top_k.is_empty());
        assert_eq!(result.rounds_run, 0);
    }

    #[test]
    fn run_multi_dedups_predicates_and_mines_each() {
        let (g, pred) = restaurant_graph();
        let miner = DMine::new(DmineConfig {
            k: 2,
            sigma: 2,
            workers: 2,
            max_rounds: 1,
            ..Default::default()
        });
        let results = miner.run_multi(&g, &[pred, pred]);
        assert_eq!(results.len(), 1, "duplicate predicates are grouped");
        assert!(!results[0].1.top_k.is_empty());
    }

    #[test]
    fn run_auto_derives_predicates_from_frequent_edges() {
        let (g, _) = restaurant_graph();
        let miner = DMine::new(DmineConfig {
            k: 2,
            sigma: 2,
            workers: 2,
            max_rounds: 1,
            ..Default::default()
        });
        let results = miner.run_auto(&g, 3);
        assert_eq!(results.len(), 3);
        // The most frequent edge pattern (cust -like-> fr) must be among
        // the auto-derived predicates and mineable.
        let like = g.vocab().get("like").unwrap();
        assert!(results.iter().any(|(p, _)| p.label == like));
    }

    #[test]
    fn group_candidates_fast_and_slow_agree() {
        let (g, pred) = restaurant_graph();
        let seed = Gpar::seed(&pred, g.vocab().clone());
        let friend = g.vocab().get("friend").unwrap();
        let cust = g.vocab().get("cust").unwrap();
        let t = crate::extension::ExtTemplate::NewNode {
            at: gpar_pattern::PNodeId(0),
            outgoing: true,
            elabel: friend,
            nlabel: cust,
        };
        let r1 = t.apply(&seed, 2).unwrap();
        let cands = vec![r1.clone(), r1.clone(), seed.clone()];
        let fast = group_candidates(cands.clone(), true);
        let slow = group_candidates(cands, false);
        assert_eq!(fast.len(), 2);
        assert_eq!(slow.len(), 2);
    }
}
