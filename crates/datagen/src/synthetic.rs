//! The paper's synthetic graph generator (§6): `G = (V, E, L)` controlled
//! by `|V|` and `|E|`, with `L` drawn from an alphabet of 100 labels.

use gpar_graph::{Graph, GraphBuilder, NodeId, Vocab};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of directed edges `|E|`.
    pub edges: usize,
    /// Size of the node-label alphabet (the paper uses 100).
    pub node_labels: usize,
    /// Size of the edge-label alphabet.
    pub edge_labels: usize,
    /// Zipf skew of the label distributions (1.0 ≈ natural skew).
    pub label_skew: f64,
    /// Preferential-attachment strength in `[0, 1]`: probability that an
    /// edge endpoint is drawn from the degree-weighted pool rather than
    /// uniformly (yields the heavy-tailed degrees of social graphs).
    pub preferential: f64,
    /// RNG seed; identical configs produce identical graphs.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            nodes: 10_000,
            edges: 20_000,
            node_labels: 100,
            edge_labels: 10,
            label_skew: 1.0,
            preferential: 0.6,
            seed: 0xFA9,
        }
    }
}

impl SyntheticConfig {
    /// A config sized `(|V|, |E|)` with the paper's defaults otherwise.
    pub fn sized(nodes: usize, edges: usize, seed: u64) -> Self {
        Self { nodes, edges, seed, ..Default::default() }
    }
}

/// Generates a synthetic labeled directed graph.
pub fn synthetic(cfg: &SyntheticConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let vocab = Vocab::new();
    let node_labels: Vec<_> =
        (0..cfg.node_labels.max(1)).map(|i| vocab.intern(&format!("n{i:03}"))).collect();
    let edge_labels: Vec<_> =
        (0..cfg.edge_labels.max(1)).map(|i| vocab.intern(&format!("e{i:02}"))).collect();
    let nzipf = Zipf::new(node_labels.len() as u64, cfg.label_skew).expect("valid zipf");
    let ezipf = Zipf::new(edge_labels.len() as u64, cfg.label_skew).expect("valid zipf");

    let mut b = GraphBuilder::new(vocab);
    b.reserve(cfg.nodes, cfg.edges);
    for _ in 0..cfg.nodes {
        let li = nzipf.sample(&mut rng) as usize - 1;
        b.add_node(node_labels[li]);
    }
    if cfg.nodes == 0 {
        return b.build();
    }
    // Degree-weighted endpoint pool for preferential attachment.
    let mut pool: Vec<NodeId> = Vec::with_capacity(2 * cfg.edges);
    let pick = |rng: &mut StdRng, pool: &[NodeId]| -> NodeId {
        if !pool.is_empty() && rng.gen_bool(cfg.preferential) {
            pool[rng.gen_range(0..pool.len())]
        } else {
            NodeId(rng.gen_range(0..cfg.nodes as u32))
        }
    };
    for _ in 0..cfg.edges {
        let src = pick(&mut rng, &pool);
        let mut dst = pick(&mut rng, &pool);
        if dst == src {
            dst = NodeId(rng.gen_range(0..cfg.nodes as u32));
        }
        let li = ezipf.sample(&mut rng) as usize - 1;
        b.add_edge(src, dst, edge_labels[li]);
        pool.push(src);
        pool.push(dst);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = SyntheticConfig::sized(500, 1000, 42);
        let g1 = synthetic(&cfg);
        let g2 = synthetic(&cfg);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in g1.nodes() {
            assert_eq!(g1.vocab().resolve(g1.node_label(v)), g2.vocab().resolve(g2.node_label(v)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = synthetic(&SyntheticConfig::sized(500, 1000, 1));
        let g2 = synthetic(&SyntheticConfig::sized(500, 1000, 2));
        let labels = |g: &Graph| -> Vec<String> {
            g.nodes().map(|v| g.vocab().resolve(g.node_label(v)).to_string()).collect()
        };
        assert_ne!(labels(&g1), labels(&g2));
    }

    #[test]
    fn requested_sizes_are_respected() {
        let g = synthetic(&SyntheticConfig::sized(1000, 3000, 7));
        assert_eq!(g.node_count(), 1000);
        // Dedup can drop a handful of duplicate random edges.
        assert!(g.edge_count() > 2900 && g.edge_count() <= 3000);
        assert!(g.vocab().len() >= 100);
    }

    #[test]
    fn degrees_are_heavy_tailed_with_preferential_attachment() {
        let g = synthetic(&SyntheticConfig {
            preferential: 0.8,
            ..SyntheticConfig::sized(2000, 10_000, 11)
        });
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(max_deg as f64 > 5.0 * avg, "expected a hub: max {max_deg}, avg {avg}");
    }

    #[test]
    fn zipf_makes_low_indices_common() {
        let g = synthetic(&SyntheticConfig::sized(5000, 1, 3));
        let hist = g.node_label_histogram();
        let l0 = g.vocab().get("n000").unwrap();
        let l99 = g.vocab().get("n099").unwrap();
        assert!(hist.get(&l0).copied().unwrap_or(0) > hist.get(&l99).copied().unwrap_or(0));
    }
}
