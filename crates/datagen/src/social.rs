//! Pokec-like and Google+-like social graph generators.
//!
//! Both generators share one engine: users follow each other (community-
//! structured, heavy-tailed out-degree, partially reciprocated) and connect
//! to *attribute-value* nodes (`live_in → city_03`, `like_music →
//! music_00`, …). Attribute values are materialized as instance nodes with
//! bounded degree (a fresh instance every [`ATTR_INSTANCE_CAP`] users) so
//! that d-neighborhoods stay small — the locality property the paper's
//! partitioning argument relies on.
//!
//! **Homophily** makes mining meaningful: with probability
//! [`FamilySpec::homophily`], a user's attribute value is copied from a
//! followee instead of sampled, so rules like *"x follows x′ and x′ likes
//! music m ⇒ x likes m"* (cf. `R9`/`R10` in Fig. 5(g)) hold with measurably
//! higher confidence than the base rate.

use gpar_core::Predicate;
use gpar_graph::{Graph, GraphBuilder, Label, NodeId, Vocab};
use gpar_pattern::NodeCond;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};
use rustc_hash::FxHashMap;

/// Maximum users attached to one attribute-instance node before a new
/// instance with the same label is created.
pub const ATTR_INSTANCE_CAP: usize = 48;

/// One attribute family (e.g. *music*, reached by `like_music` edges, with
/// 40 value labels `music_00 … music_39`).
#[derive(Debug, Clone)]
pub struct FamilySpec {
    /// Family name; value labels are `{name}_{index:02}`.
    pub name: &'static str,
    /// Edge label connecting users to values.
    pub edge: &'static str,
    /// Number of distinct value labels.
    pub values: usize,
    /// Minimum attribute edges per user.
    pub min_per_user: u32,
    /// Maximum attribute edges per user.
    pub max_per_user: u32,
    /// Probability that a value is copied from a random followee
    /// (association signal) rather than sampled from the Zipf base rate.
    pub homophily: f64,
}

/// Everything the experiments need to know about a generated social graph.
#[derive(Debug, Clone)]
pub struct FamilyInfo {
    /// Family name.
    pub name: String,
    /// The connecting edge label.
    pub edge: Label,
    /// Value labels, most common first.
    pub values: Vec<Label>,
}

/// Schema handle of a generated social graph.
#[derive(Debug, Clone)]
pub struct SocialSchema {
    /// The `user` node label.
    pub user: Label,
    /// The `follow` edge label.
    pub follow: Label,
    /// Attribute families in generation order.
    pub families: Vec<FamilyInfo>,
}

impl SocialSchema {
    /// Builds the predicate `q(x, y)` = `edge(user, family_value)`.
    pub fn predicate(&self, family: &str, value_idx: usize) -> Option<Predicate> {
        let f = self.families.iter().find(|f| f.name == family)?;
        let v = *f.values.get(value_idx)?;
        Some(Predicate::new(NodeCond::Label(self.user), f.edge, NodeCond::Label(v)))
    }

    /// A default workload of `count` predicates over the most common values
    /// of the first families (Exp-2 selects 5 predicates this way).
    pub fn default_predicates(&self, count: usize) -> Vec<Predicate> {
        let mut out = Vec::with_capacity(count);
        let mut value_idx = 0;
        'outer: loop {
            for f in &self.families {
                if let Some(&v) = f.values.get(value_idx) {
                    out.push(Predicate::new(
                        NodeCond::Label(self.user),
                        f.edge,
                        NodeCond::Label(v),
                    ));
                    if out.len() == count {
                        break 'outer;
                    }
                }
            }
            value_idx += 1;
            if value_idx > 64 {
                break;
            }
        }
        out
    }

    /// The family info for a name.
    pub fn family(&self, name: &str) -> Option<&FamilyInfo> {
        self.families.iter().find(|f| f.name == name)
    }
}

/// A generated social graph plus its schema.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    /// The graph.
    pub graph: Graph,
    /// Schema handle (labels, families, predicate helpers).
    pub schema: SocialSchema,
    /// The user node ids (dense prefix of the node range).
    pub users: Vec<NodeId>,
}

struct SocialConfig {
    users: usize,
    seed: u64,
    families: Vec<FamilySpec>,
    avg_follow: f64,
    community: usize,
    reciprocate: f64,
}

fn generate(cfg: SocialConfig) -> SocialGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let vocab = Vocab::new();
    let user = vocab.intern("user");
    let follow = vocab.intern("follow");
    let mut b = GraphBuilder::new(vocab.clone());

    let users: Vec<NodeId> = (0..cfg.users).map(|_| b.add_node(user)).collect();

    // --- follow edges: community-local + global preferential tail -------
    let deg_dist = Zipf::new(40, 1.35).expect("valid zipf");
    let mut follows_of: Vec<Vec<usize>> = vec![Vec::new(); cfg.users];
    let mut pool: Vec<usize> = Vec::new();
    for u in 0..cfg.users {
        let deg = deg_dist.sample(&mut rng) as usize;
        let com = u / cfg.community.max(1);
        let com_lo = com * cfg.community;
        let com_hi = ((com + 1) * cfg.community).min(cfg.users);
        for _ in 0..deg {
            let v = if rng.gen_bool(0.8) || pool.is_empty() {
                rng.gen_range(com_lo..com_hi)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if v == u {
                continue;
            }
            b.add_edge(users[u], users[v], follow);
            follows_of[u].push(v);
            pool.push(v);
            if rng.gen_bool(cfg.reciprocate) {
                b.add_edge(users[v], users[u], follow);
                follows_of[v].push(u);
            }
        }
        // Thin the pool so it does not dominate memory at large scales.
        if pool.len() > 4 * cfg.users {
            pool.truncate(2 * cfg.users);
        }
    }
    let _ = cfg.avg_follow; // reserved for future degree shaping

    // --- attribute families --------------------------------------------
    let mut families = Vec::with_capacity(cfg.families.len());
    // Per (family, value): current instance node and its remaining slots.
    let mut instances: FxHashMap<(usize, usize), (NodeId, usize)> = FxHashMap::default();
    // Per user, per family: chosen value indices (for homophily copying).
    let mut chosen: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); cfg.families.len()]; cfg.users];

    let fam_labels: Vec<(Label, Vec<Label>)> = cfg
        .families
        .iter()
        .map(|f| {
            let e = vocab.intern(f.edge);
            let vals = (0..f.values).map(|i| vocab.intern(&format!("{}_{i:02}", f.name))).collect();
            (e, vals)
        })
        .collect();

    for u in 0..cfg.users {
        for (fi, fam) in cfg.families.iter().enumerate() {
            let n = rng.gen_range(fam.min_per_user..=fam.max_per_user) as usize;
            let zipf = Zipf::new(fam.values as u64, 1.15).expect("valid zipf");
            for _ in 0..n {
                // Homophily: copy a value from a random followee if it has
                // any; otherwise fall back to the base-rate sample.
                let copied = if rng.gen_bool(fam.homophily) && !follows_of[u].is_empty() {
                    let v = follows_of[u][rng.gen_range(0..follows_of[u].len())];
                    let vals = &chosen[v][fi];
                    if vals.is_empty() {
                        None
                    } else {
                        Some(vals[rng.gen_range(0..vals.len())])
                    }
                } else {
                    None
                };
                let value = copied.unwrap_or_else(|| zipf.sample(&mut rng) as usize - 1);
                if chosen[u][fi].contains(&value) {
                    continue;
                }
                chosen[u][fi].push(value);
                let (edge_label, vals) = &fam_labels[fi];
                let entry = instances.entry((fi, value)).or_insert_with(|| (NodeId(0), 0));
                if entry.1 == 0 {
                    *entry = (b.add_node(vals[value]), ATTR_INSTANCE_CAP);
                }
                b.add_edge(users[u], entry.0, *edge_label);
                entry.1 -= 1;
            }
        }
    }

    for (fam, (edge, vals)) in cfg.families.iter().zip(fam_labels) {
        families.push(FamilyInfo { name: fam.name.to_string(), edge, values: vals });
    }

    SocialGraph { graph: b.build(), schema: SocialSchema { user, follow, families }, users }
}

/// A Pokec-shaped social network: `user` + 268 attribute-value labels (269
/// node types), 9 attribute/relationship edge types, heavy-tailed follows.
pub fn pokec_like(users: usize, seed: u64) -> SocialGraph {
    generate(SocialConfig {
        users,
        seed,
        avg_follow: 8.0,
        community: 96,
        reciprocate: 0.3,
        families: vec![
            FamilySpec {
                name: "city",
                edge: "live_in",
                values: 45,
                min_per_user: 1,
                max_per_user: 1,
                homophily: 0.55,
            },
            FamilySpec {
                name: "music",
                edge: "like_music",
                values: 40,
                min_per_user: 0,
                max_per_user: 3,
                homophily: 0.55,
            },
            FamilySpec {
                name: "hobby",
                edge: "hobby",
                values: 45,
                min_per_user: 1,
                max_per_user: 3,
                homophily: 0.45,
            },
            FamilySpec {
                name: "book",
                edge: "like_book",
                values: 35,
                min_per_user: 0,
                max_per_user: 2,
                homophily: 0.55,
            },
            FamilySpec {
                name: "school",
                edge: "school",
                values: 25,
                min_per_user: 0,
                max_per_user: 1,
                homophily: 0.5,
            },
            FamilySpec {
                name: "employer",
                edge: "employer",
                values: 25,
                min_per_user: 0,
                max_per_user: 1,
                homophily: 0.45,
            },
            FamilySpec {
                name: "major",
                edge: "major",
                values: 23,
                min_per_user: 0,
                max_per_user: 1,
                homophily: 0.5,
            },
            FamilySpec {
                name: "restaurant",
                edge: "visit",
                values: 30,
                min_per_user: 0,
                max_per_user: 2,
                homophily: 0.55,
            },
        ],
    })
}

/// A Google+-shaped graph: 5 node types (`user`, `employer`, `school`,
/// `major`, `place`) and 5 edge types (`follow` + 4 attribute edges),
/// matching the social-attribute network of Gong et al. [20].
pub fn gplus_like(users: usize, seed: u64) -> SocialGraph {
    generate(SocialConfig {
        users,
        seed,
        avg_follow: 12.0,
        community: 128,
        reciprocate: 0.2,
        families: vec![
            FamilySpec {
                name: "employer",
                edge: "works_at",
                values: 40,
                min_per_user: 0,
                max_per_user: 2,
                homophily: 0.45,
            },
            FamilySpec {
                name: "school",
                edge: "attended",
                values: 40,
                min_per_user: 0,
                max_per_user: 2,
                homophily: 0.5,
            },
            FamilySpec {
                name: "major",
                edge: "majored_in",
                values: 30,
                min_per_user: 0,
                max_per_user: 1,
                homophily: 0.45,
            },
            FamilySpec {
                name: "place",
                edge: "lived_in",
                values: 50,
                min_per_user: 1,
                max_per_user: 2,
                homophily: 0.5,
            },
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pokec_shape_has_expected_type_counts() {
        let sg = pokec_like(1500, 7);
        // 1 user label + 268 attribute value labels = 269 node types, as in
        // the Pokec description, plus 9 edge labels.
        let node_types = 1 + sg.schema.families.iter().map(|f| f.values.len()).sum::<usize>();
        assert_eq!(node_types, 269);
        let edge_types = 1 + sg.schema.families.len();
        assert_eq!(edge_types, 9);
        assert_eq!(sg.users.len(), 1500);
        assert!(sg.graph.node_count() > 1500);
    }

    #[test]
    fn gplus_shape_has_5_and_5() {
        let sg = gplus_like(1000, 9);
        // 5 node *kinds* (user + 4 families); labels per family are values.
        assert_eq!(sg.schema.families.len(), 4);
        let edge_types = 1 + sg.schema.families.len();
        assert_eq!(edge_types, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = pokec_like(400, 5);
        let b = pokec_like(400, 5);
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        let c = pokec_like(400, 6);
        assert!(
            a.graph.edge_count() != c.graph.edge_count()
                || a.graph.node_count() != c.graph.node_count()
        );
    }

    #[test]
    fn attribute_instances_have_bounded_degree() {
        let sg = pokec_like(3000, 3);
        let g = &sg.graph;
        for v in g.nodes() {
            if g.node_label(v) != sg.schema.user {
                assert!(
                    g.in_degree(v) <= ATTR_INSTANCE_CAP,
                    "attribute instance over cap: {}",
                    g.in_degree(v)
                );
            }
        }
    }

    #[test]
    fn predicates_are_well_formed_and_populated() {
        let sg = pokec_like(1200, 21);
        let preds = sg.schema.default_predicates(5);
        assert_eq!(preds.len(), 5);
        for p in &preds {
            let stats = gpar_core::q_stats(&sg.graph, p);
            assert!(stats.candidates() > 0);
            assert!(stats.supp_q() > 0, "predicate should have positives");
        }
    }

    #[test]
    fn homophily_raises_conditional_probability() {
        // Aggregated over tail music values m:
        // P(u likes m | some followee of u likes m) > P(u likes m).
        // (Head values are near their saturated base rate, so we measure
        // the association on values 4..40 where the signal lives.)
        let sg = pokec_like(4000, 13);
        let g = &sg.graph;
        let music = sg.schema.family("music").unwrap();
        let like_music = music.edge;
        let follow = sg.schema.follow;
        let likes = |u: NodeId, m: gpar_graph::Label| {
            g.out_edges_labeled(u, like_music).iter().any(|e| g.node_label(e.node) == m)
        };
        let mut base = (0u64, 0u64);
        let mut cond = (0u64, 0u64);
        for &m in &music.values[4..] {
            for &u in &sg.users {
                let u_likes = likes(u, m);
                base.1 += 1;
                base.0 += u64::from(u_likes);
                let followee_likes =
                    g.out_edges_labeled(u, follow).iter().any(|e| likes(e.node, m));
                if followee_likes {
                    cond.1 += 1;
                    cond.0 += u64::from(u_likes);
                }
            }
        }
        let p_base = base.0 as f64 / base.1 as f64;
        let p_cond = cond.0 as f64 / cond.1.max(1) as f64;
        assert!(
            p_cond > 1.5 * p_base,
            "homophily signal too weak: base {p_base:.4}, cond {p_cond:.4}"
        );
    }
}
