//! # gpar-datagen
//!
//! Deterministic (seeded) graph and workload generators standing in for the
//! paper's datasets (§6 "Experimental setting"):
//!
//! * [`synthetic`] — the paper's synthetic generator: graphs controlled by
//!   `|V|` and `|E|` with labels drawn from an alphabet of 100 labels;
//! * [`pokec_like`] — a Pokec-shaped social network: one `user` type plus
//!   ~268 attribute-value types (≈ the paper's "1.63M nodes of 269
//!   different types"), 11 edge types (`follow`, `like_music`, `hobby`,
//!   `live_in`, …), follow edges with power-law out-degree and community
//!   structure, and *homophily correlations* so that association rules
//!   genuinely exist to be mined;
//! * [`gplus_like`] — a Google+-shaped graph: 5 node types and 5 edge
//!   types;
//! * [`plant`] — explicit GPAR planting with a controlled confidence rate,
//!   used by the precision experiment (Exp-2);
//! * [`generate_rules`] — the paper's "pattern generator": random GPARs of
//!   controlled size `(|V_p|, |E_p|)` with labels drawn from the data,
//!   guaranteed satisfiable (used to build the rule sets `Σ` for EIP).
//!
//! Substitution note (see DESIGN.md): the real Pokec/Google+ snapshots are
//! not redistributable here; these generators reproduce the structural
//! features the experiments depend on — label selectivity, degree skew,
//! bounded d-neighborhoods and correlated attributes — at configurable
//! scale. One deliberate divergence from raw social-network dumps: shared
//! attribute *values* are materialized as multiple instance nodes with
//! bounded degree (a fresh instance per ~48 users), keeping `G_d(v_x)`
//! small, which is the property the paper's locality argument relies on.

pub mod plant;
pub mod rulegen;
pub mod social;
pub mod synthetic;

pub use plant::{plant, PlantReport, PlantSpec};
pub use rulegen::{generate_rules, RuleGenConfig};
pub use social::{gplus_like, pokec_like, SocialGraph, SocialSchema};
pub use synthetic::{synthetic, SyntheticConfig};
