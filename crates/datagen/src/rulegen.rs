//! Random GPAR generation — the paper's "pattern generator" (§6):
//! GPARs controlled by the numbers `|V_p|` and `|E_p|` of nodes and edges
//! in `P_R`, with labels drawn from the data.
//!
//! Rules are *instantiated* around actual positive examples of the
//! predicate (a node with a `q`-edge to a `y`-matching node), growing the
//! antecedent by randomly walking the neighborhood and lifting data edges
//! into pattern edges. Construction therefore guarantees `supp(R, G) ≥ 1`,
//! the rule pertains to the requested predicate, and `r(P_R, x) ≤ d`.

use gpar_core::{q_stats, Gpar, Predicate};
use gpar_graph::{FxHashMap, FxHashSet, Graph, NodeId};
use gpar_pattern::{EdgeCond, NodeCond, PNodeId, Pattern};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Controls for [`generate_rules`].
#[derive(Debug, Clone)]
pub struct RuleGenConfig {
    /// Target `|V_p|` of the rule pattern `P_R` (the paper's benchmarks use
    /// `|R| = (5, 8)`).
    pub pattern_nodes: usize,
    /// Target `|E_p|` of `P_R` (including the consequent edge).
    pub pattern_edges: usize,
    /// How many distinct rules to produce.
    pub count: usize,
    /// Maximum radius `d` of `P_R` at `x`.
    pub max_radius: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RuleGenConfig {
    fn default() -> Self {
        Self { pattern_nodes: 5, pattern_edges: 8, count: 24, max_radius: 2, seed: 0x51CA }
    }
}

/// Generates up to `cfg.count` distinct satisfiable GPARs pertaining to
/// `pred`. Returns fewer if the graph cannot support the requested shape
/// (e.g. no positive examples).
pub fn generate_rules(g: &Graph, pred: &Predicate, cfg: &RuleGenConfig) -> Vec<Gpar> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let positives: Vec<NodeId> = {
        let mut v: Vec<NodeId> = q_stats(g, pred).positives.into_iter().collect();
        v.sort_unstable();
        v
    };
    let mut out: Vec<Gpar> = Vec::new();
    let mut seen = FxHashSet::default();
    let max_attempts = cfg.count * 60 + 100;
    for _ in 0..max_attempts {
        if out.len() >= cfg.count || positives.is_empty() {
            break;
        }
        let &vx = positives.choose(&mut rng).expect("nonempty");
        if let Some(rule) = grow_rule(g, pred, vx, cfg, &mut rng) {
            let code = rule.pr().canonical_code();
            if seen.insert(code) {
                out.push(rule);
            }
        }
    }
    out
}

fn grow_rule(
    g: &Graph,
    pred: &Predicate,
    vx: NodeId,
    cfg: &RuleGenConfig,
    rng: &mut StdRng,
) -> Option<Gpar> {
    // Choose the consequent witness y-target.
    let targets: Vec<NodeId> = g
        .out_edges_labeled(vx, pred.label)
        .iter()
        .filter(|e| pred.y_cond.matches(g.node_label(e.node)))
        .map(|e| e.node)
        .collect();
    let &vy = targets.choose(rng)?;

    // Antecedent: x and y, no edges yet; mapping pattern node -> data node.
    let mut pattern = Pattern::from_parts(
        vec![pred.x_cond, pred.y_cond],
        vec![],
        PNodeId(0),
        Some(PNodeId(1)),
        g.vocab().clone(),
    )
    .ok()?;
    let mut mapped: Vec<NodeId> = vec![vx, vy];
    let mut data_to_pat: FxHashMap<NodeId, PNodeId> = FxHashMap::default();
    data_to_pat.insert(vx, PNodeId(0));
    data_to_pat.insert(vy, PNodeId(1));

    let want_edges = cfg.pattern_edges.saturating_sub(1); // minus consequent
    let mut guard = 0;
    while pattern.edge_count() < want_edges && guard < 200 {
        guard += 1;
        // Pick a random mapped pattern node to grow from.
        let u = PNodeId(rng.gen_range(0..pattern.node_count()) as u32);
        let vu = mapped[u.index()];
        // Respect the radius budget: only grow from nodes whose new
        // neighbor would stay within d of x in P_R. Distances in P_R are
        // bounded above by distances in the (partial) antecedent + the
        // consequent edge; recompute on the PR shadow for correctness.
        let pr_shadow =
            pattern.with_edge(PNodeId(0), PNodeId(1), EdgeCond::Label(pred.label)).ok()?;
        let dists = pr_shadow.undirected_distances(PNodeId(0));
        let du = dists[u.index()].unwrap_or(u32::MAX);
        if du >= cfg.max_radius {
            continue;
        }
        // Random incident data edge, either direction.
        let out_deg = g.out_degree(vu);
        let in_deg = g.in_degree(vu);
        if out_deg + in_deg == 0 {
            continue;
        }
        let pick = rng.gen_range(0..out_deg + in_deg);
        let (other, elabel, outgoing) = if pick < out_deg {
            let e = g.out_edges(vu)[pick];
            (e.node, e.label, true)
        } else {
            let e = g.in_edges(vu)[pick - out_deg];
            (e.node, e.label, false)
        };
        // Never lift the exact consequent edge.
        if outgoing && u == PNodeId(0) && other == vy && elabel == pred.label {
            continue;
        }
        if let Some(&uw) = data_to_pat.get(&other) {
            // Closing edge between existing pattern nodes.
            let (s, d) = if outgoing { (u, uw) } else { (uw, u) };
            if s == PNodeId(0) && d == PNodeId(1) && elabel == pred.label {
                continue;
            }
            if !pattern.has_edge(s, d, EdgeCond::Label(elabel)) {
                pattern = pattern.with_edge(s, d, EdgeCond::Label(elabel)).ok()?;
            }
        } else if pattern.node_count() < cfg.pattern_nodes {
            let cond = NodeCond::Label(g.node_label(other));
            let (p2, new) =
                pattern.with_node_and_edge(u, cond, EdgeCond::Label(elabel), outgoing).ok()?;
            pattern = p2;
            mapped.push(other);
            data_to_pat.insert(other, new);
        }
    }
    if pattern.edge_count() == 0 {
        return None;
    }
    let rule = Gpar::new(pattern, pred.label).ok()?;
    if rule.radius().is_none_or(|r| r > cfg.max_radius) {
        return None;
    }
    Some(rule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::social::pokec_like;
    use gpar_core::{evaluate, EvalOptions};

    #[test]
    fn generated_rules_are_valid_and_satisfiable() {
        let sg = pokec_like(800, 17);
        let pred = sg.schema.default_predicates(1).pop().unwrap();
        let cfg = RuleGenConfig { count: 8, ..Default::default() };
        let rules = generate_rules(&sg.graph, &pred, &cfg);
        assert!(!rules.is_empty(), "should generate at least one rule");
        for r in &rules {
            assert!(r.is_nontrivial());
            assert!(r.radius().unwrap() <= cfg.max_radius);
            assert_eq!(r.predicate(), &pred);
            let eval = evaluate(r, &sg.graph, &EvalOptions::default()).unwrap();
            assert!(eval.supp_r >= 1, "rule instantiated around a positive: {r}");
        }
    }

    #[test]
    fn rules_are_distinct_and_respect_size_budget() {
        let sg = pokec_like(800, 23);
        let pred = sg.schema.default_predicates(1).pop().unwrap();
        let cfg =
            RuleGenConfig { count: 12, pattern_nodes: 4, pattern_edges: 5, ..Default::default() };
        let rules = generate_rules(&sg.graph, &pred, &cfg);
        let mut codes: Vec<_> = rules.iter().map(|r| r.pr().canonical_code()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), rules.len(), "rules must be pairwise non-automorphic");
        for r in &rules {
            let (nv, ne) = r.size();
            assert!(nv <= 4, "|Vp| budget exceeded: {nv}");
            assert!(ne <= 5, "|Ep| budget exceeded: {ne}");
        }
    }

    #[test]
    fn empty_graph_yields_no_rules() {
        let vocab = gpar_graph::Vocab::new();
        let g = gpar_graph::GraphBuilder::new(vocab.clone()).build();
        let user = vocab.intern("user");
        let like = vocab.intern("like");
        let m = vocab.intern("m");
        let pred = Predicate::new(NodeCond::Label(user), like, NodeCond::Label(m));
        assert!(generate_rules(&g, &pred, &RuleGenConfig::default()).is_empty());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let sg = pokec_like(600, 31);
        let pred = sg.schema.default_predicates(1).pop().unwrap();
        let cfg = RuleGenConfig { count: 6, ..Default::default() };
        let a = generate_rules(&sg.graph, &pred, &cfg);
        let b = generate_rules(&sg.graph, &pred, &cfg);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.pr().canonical_code(), rb.pr().canonical_code());
        }
    }
}
