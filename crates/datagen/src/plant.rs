//! Explicit GPAR planting with controlled confidence.
//!
//! The precision experiment (Exp-2) needs ground truth: rules that hold in
//! the data with a *known* rate. [`plant`] embeds fresh instances of a
//! rule's antecedent into a graph and adds the consequent edge on a
//! controlled fraction of them; the rest become LCWA negatives (a `q`-edge
//! to a decoy) or unknowns (no `q`-edge), so all three evidence classes are
//! exercised.

use gpar_core::Gpar;
use gpar_graph::{Graph, GraphBuilder, NodeId};
use gpar_pattern::{EdgeCond, NodeCond};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to plant and how often the consequent should hold.
#[derive(Debug, Clone)]
pub struct PlantSpec {
    /// Number of antecedent instances to embed.
    pub instances: usize,
    /// Fraction of instances that also get the consequent edge.
    pub conf_rate: f64,
    /// Of the instances *without* the consequent, the fraction that get a
    /// decoy `q`-edge (making them LCWA negatives); the rest get no
    /// `q`-edge (unknowns).
    pub negative_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantSpec {
    fn default() -> Self {
        Self { instances: 50, conf_rate: 0.7, negative_rate: 0.5, seed: 0xBEEF }
    }
}

/// Summary of a planting run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantReport {
    /// Instances whose center received the consequent edge.
    pub positives: usize,
    /// Instances turned into LCWA negatives via a decoy edge.
    pub negatives: usize,
    /// Instances left without any `q`-edge.
    pub unknowns: usize,
}

/// Embeds `spec.instances` fresh copies of `rule.antecedent()` into a copy
/// of `g`, returning the extended graph and the exact class counts.
///
/// Every pattern node becomes a fresh graph node labeled with its condition
/// (wildcards get a dedicated `planted_any` label), so planted instances
/// never interfere with existing matches except through shared labels.
pub fn plant(g: &Graph, rule: &Gpar, spec: &PlantSpec) -> (Graph, PlantReport) {
    let vocab = g.vocab().clone();
    let any_label = vocab.intern("planted_any");
    let decoy_label = vocab.intern("planted_decoy");
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Copy g into a new builder.
    let mut b = GraphBuilder::new(vocab.clone());
    b.reserve(g.node_count() + spec.instances * rule.antecedent().node_count(), g.edge_count());
    for v in g.nodes() {
        b.add_node(g.node_label(v));
    }
    for v in g.nodes() {
        for e in g.out_edges(v) {
            b.add_edge(v, e.node, e.label);
        }
    }

    let q = rule.antecedent();
    let pred = rule.predicate();
    let mut report = PlantReport { positives: 0, negatives: 0, unknowns: 0 };
    for _ in 0..spec.instances {
        // Fresh nodes for every pattern node.
        let mapped: Vec<NodeId> = q
            .nodes()
            .map(|u| match q.cond(u) {
                NodeCond::Label(l) => b.add_node(l),
                NodeCond::Any => b.add_node(any_label),
            })
            .collect();
        for e in q.edges() {
            let label = match e.cond {
                EdgeCond::Label(l) => l,
                EdgeCond::Any => pred.label,
            };
            b.add_edge(mapped[e.src.index()], mapped[e.dst.index()], label);
        }
        let vx = mapped[q.x().index()];
        let vy = mapped[q.y().expect("GPAR designates y").index()];
        if rng.gen_bool(spec.conf_rate) {
            b.add_edge(vx, vy, pred.label);
            report.positives += 1;
        } else if rng.gen_bool(spec.negative_rate) {
            let decoy = b.add_node(decoy_label);
            b.add_edge(vx, decoy, pred.label);
            report.negatives += 1;
        } else {
            report.unknowns += 1;
        }
    }
    (b.build(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_core::{evaluate, EvalOptions};
    use gpar_graph::Vocab;
    use gpar_pattern::PatternBuilder;

    fn simple_rule() -> (Graph, Gpar) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let visit = vocab.intern("visit");
        let g = GraphBuilder::new(vocab.clone()).build(); // empty base
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let q = pb.designate(x, y).build().unwrap();
        (g, Gpar::new(q, visit).unwrap())
    }

    #[test]
    fn planted_counts_match_evaluation() {
        let (g, rule) = simple_rule();
        let spec = PlantSpec { instances: 60, conf_rate: 0.5, negative_rate: 1.0, seed: 1 };
        let (g2, report) = plant(&g, &rule, &spec);
        assert_eq!(report.positives + report.negatives + report.unknowns, 60);
        assert_eq!(report.unknowns, 0, "negative_rate 1.0 leaves no unknowns");
        let eval = evaluate(&rule, &g2, &EvalOptions::default()).unwrap();
        assert_eq!(eval.supp_r, report.positives as u64);
        assert_eq!(eval.supp_q_ante, 60);
        assert_eq!(eval.supp_q_qbar, report.negatives as u64);
    }

    #[test]
    fn conf_rate_controls_measured_confidence() {
        let (g, rule) = simple_rule();
        let hi = plant(
            &g,
            &rule,
            &PlantSpec { instances: 200, conf_rate: 0.9, negative_rate: 1.0, seed: 2 },
        );
        let lo = plant(
            &g,
            &rule,
            &PlantSpec { instances: 200, conf_rate: 0.2, negative_rate: 1.0, seed: 2 },
        );
        let opts = EvalOptions::default();
        let ev_hi = evaluate(&rule, &hi.0, &opts).unwrap();
        let ev_lo = evaluate(&rule, &lo.0, &opts).unwrap();
        // Conventional confidence tracks the planted rate directly.
        assert!(ev_hi.stats().conventional() > 0.8);
        assert!(ev_lo.stats().conventional() < 0.35);
    }

    #[test]
    fn existing_graph_is_preserved() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let visit = vocab.intern("visit");
        let mut gb = GraphBuilder::new(vocab.clone());
        let c = gb.add_node(cust);
        let r = gb.add_node(rest);
        gb.add_edge(c, r, like);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let q = pb.designate(x, y).build().unwrap();
        let rule = Gpar::new(q, visit).unwrap();
        let (g2, _) = plant(&g, &rule, &PlantSpec { instances: 5, ..Default::default() });
        assert!(g2.has_edge(c, r, like));
        assert!(g2.node_count() >= g.node_count() + 10);
    }

    #[test]
    fn unknown_instances_have_no_q_edge() {
        let (g, rule) = simple_rule();
        let spec = PlantSpec { instances: 40, conf_rate: 0.0, negative_rate: 0.0, seed: 3 };
        let (g2, report) = plant(&g, &rule, &spec);
        assert_eq!(report.unknowns, 40);
        let stats = gpar_core::q_stats(&g2, rule.predicate());
        assert_eq!(stats.supp_q(), 0);
        assert_eq!(stats.supp_qbar(), 0);
        assert_eq!(stats.unknown, 40);
    }
}
