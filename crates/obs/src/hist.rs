//! Log-linear (HDR-style) latency histograms with lock-free recording.
//!
//! Values (nanoseconds) are bucketed with 5 mantissa bits per power of
//! two: buckets `0..32` hold the exact values `0..32`, and every higher
//! power-of-two range `[2^e, 2^(e+1))` is split into 32 equal sub-buckets.
//! The bucket holding a value `v ≥ 32` is therefore at most `v / 32` wide,
//! so any quantile reconstructed from bucket midpoints is within **3.125%
//! relative error** of the exact order statistic (and exact below 32 ns).
//! The whole `u64` range fits in [`NUM_BUCKETS`] = 1920 buckets (15 KiB of
//! counters), so per-shard histograms are cheap enough to allocate
//! eagerly.
//!
//! Recording is one relaxed `fetch_add` per sample (plus a `fetch_max`
//! for the max tracker); shards record concurrently without coordination
//! and are merged at snapshot time — bucket-wise addition, which is
//! associative and commutative, so the merged quantiles are independent
//! of shard count and merge order (pinned by the tests below).

use crate::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two (2^5): the resolution/size trade-off.
const MANTISSA_BITS: u32 = 5;
const SUBBUCKETS: u64 = 1 << MANTISSA_BITS;

/// Total buckets covering the full `u64` value range.
pub const NUM_BUCKETS: usize =
    ((64 - MANTISSA_BITS as usize) << MANTISSA_BITS) + SUBBUCKETS as usize;

/// Bucket index for value `v` (see the module docs for the layout).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBBUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let shift = e - MANTISSA_BITS;
        let mantissa = (v >> shift) & (SUBBUCKETS - 1);
        ((shift as usize) << MANTISSA_BITS) + SUBBUCKETS as usize + mantissa as usize
    }
}

/// Representative (midpoint) value of bucket `idx` — the value quantile
/// queries report. Exact for the unit-width buckets below 32.
#[inline]
fn bucket_value(idx: usize) -> u64 {
    if idx < SUBBUCKETS as usize {
        idx as u64
    } else {
        let b = (idx - SUBBUCKETS as usize) as u64;
        let e = (b >> MANTISSA_BITS) + MANTISSA_BITS as u64;
        let mantissa = b & (SUBBUCKETS - 1);
        let width = 1u64 << (e - MANTISSA_BITS as u64);
        let lower = (1u64 << e) + mantissa * width;
        lower + width / 2
    }
}

/// A concurrent log-linear histogram of `u64` values (latency in ns).
///
/// One instance lives per registry shard; workers record into their own
/// shard and [`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot)
/// merges the shards. With the `obs-off` feature the recording path
/// compiles to nothing.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (buckets allocated eagerly, zeroed).
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self { counts: counts.into_boxed_slice(), sum: AtomicU64::new(0), max: AtomicU64::new(0) }
    }

    /// Records one sample. Compiled out under `obs-off`.
    #[inline]
    pub fn record(&self, v: u64) {
        if cfg!(feature = "obs-off") {
            return;
        }
        // ordering: Relaxed — each cell is an independent statistical
        // accumulator; snapshots accept any interleaving of concurrent
        // samples (a sample is whole per cell, and cross-cell skew only
        // shifts which instant the snapshot represents).
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed — same contract as the bucket cell above.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // ordering: Relaxed — same contract as the bucket cell above.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets. Concurrent recorders may land
    /// between bucket reads; each sample is still either fully visible
    /// later or not counted — never split.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; NUM_BUCKETS];
        let mut count = 0u64;
        // ordering: Relaxed — see `record`: buckets are independent
        // accumulators, and the documented snapshot contract is "each
        // sample fully visible later or not counted", not a cut at one
        // global instant.
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            // ordering: Relaxed — see the accumulator contract above.
            *dst = src.load(Ordering::Relaxed);
            count += *dst;
        }
        HistogramSnapshot {
            counts,
            count,
            // ordering: Relaxed — see the accumulator contract above.
            sum: self.sum.load(Ordering::Relaxed),
            // ordering: Relaxed — see the accumulator contract above.
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable histogram snapshot — the quantile query surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        Self { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values (ns) — `sum / count` is the mean.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (exact, not bucketed). 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean value, `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The `q`-quantile (nearest-rank, `0 < q <= 1`) as a bucket-midpoint
    /// value — within 3.125% relative error of the exact order statistic.
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_value(i));
            }
        }
        Some(bucket_value(NUM_BUCKETS - 1))
    }

    /// Adds `other`'s samples into `self` (the shard-merge operation —
    /// bucket-wise addition, associative and commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier`, for interval quantiles
    /// (the load harness measures per-phase latency as the delta between
    /// two cumulative snapshots). `earlier` must be a prior snapshot of
    /// the same histogram; the max tracker cannot be un-merged, so the
    /// delta keeps `self`'s max (an upper bound for the interval).
    pub fn minus(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let counts: Vec<u64> =
            self.counts.iter().zip(&earlier.counts).map(|(a, b)| a.saturating_sub(*b)).collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bucket_layout_is_monotone_and_tight() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain([1 << 20, 1 << 40, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b >= prev || v < 4096, "bucket index must not decrease");
            prev = prev.max(b);
            let mid = bucket_value(b);
            if v < 32 {
                assert_eq!(mid, v, "unit buckets are exact");
            } else {
                let rel = (mid as f64 - v as f64).abs() / v as f64;
                assert!(rel <= 1.0 / 32.0 + 1e-9, "v={v} mid={mid} rel={rel}");
            }
        }
        assert!(bucket_of(u64::MAX) < NUM_BUCKETS);
    }

    /// Satellite: quantile error bound vs an exact sorted oracle across
    /// 3 orders of magnitude of latency.
    #[cfg_attr(feature = "obs-off", ignore = "recording is compiled out")]
    #[test]
    fn quantiles_track_exact_oracle_within_bucket_error() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let h = LatencyHistogram::new();
        let mut oracle: Vec<u64> = Vec::new();
        // Latencies spanning 1 µs .. 1 ms (plus a heavy tail past 10 ms).
        for _ in 0..50_000 {
            let v = match rng.gen_range(0u32..100) {
                0..=79 => rng.gen_range(1_000u64..10_000),
                80..=97 => rng.gen_range(10_000u64..1_000_000),
                _ => rng.gen_range(1_000_000u64..20_000_000),
            };
            h.record(v);
            oracle.push(v);
        }
        oracle.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 50_000);
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * oracle.len() as f64).ceil() as usize).clamp(1, oracle.len());
            let exact = oracle[rank - 1];
            let est = snap.quantile(q).unwrap();
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel <= 1.0 / 32.0 + 1e-9, "q={q} exact={exact} est={est} rel={rel}");
        }
        assert_eq!(snap.max(), *oracle.last().unwrap(), "max is tracked exactly");
    }

    /// Satellite: shard-merge associativity — merging per-shard snapshots
    /// in any grouping equals recording the whole stream into one
    /// histogram.
    #[cfg_attr(feature = "obs-off", ignore = "recording is compiled out")]
    #[test]
    fn shard_merge_is_associative_and_order_independent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let shards: Vec<LatencyHistogram> = (0..3).map(|_| LatencyHistogram::new()).collect();
        let reference = LatencyHistogram::new();
        for i in 0..9_000u64 {
            let v = rng.gen_range(1u64..5_000_000);
            shards[(i % 3) as usize].record(v);
            reference.record(v);
        }
        let [a, b, c] = [shards[0].snapshot(), shards[1].snapshot(), shards[2].snapshot()];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut right = b.clone();
        right.merge(&c);
        let mut right2 = a.clone();
        right2.merge(&right);
        assert_eq!(left, right2, "associativity");
        // c ⊕ b ⊕ a (commutativity)
        let mut rev = c;
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev, "order independence");
        assert_eq!(left, reference.snapshot(), "merge equals single-stream recording");
    }

    #[test]
    fn zero_and_one_count_edge_cases() {
        let h = LatencyHistogram::new();
        let empty = h.snapshot();
        assert!(empty.is_empty());
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.quantile(1.0), None);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.max(), 0);

        h.record(777);
        let one = h.snapshot();
        if cfg!(feature = "obs-off") {
            assert!(one.is_empty(), "obs-off compiles recording out");
            return;
        }
        assert_eq!(one.count(), 1);
        for q in [0.001, 0.5, 0.999, 1.0] {
            let est = one.quantile(q).unwrap();
            let rel = (est as f64 - 777.0).abs() / 777.0;
            assert!(rel <= 1.0 / 32.0, "every quantile of one sample is that sample (q={q})");
        }
        assert_eq!(one.max(), 777);
    }

    #[cfg_attr(feature = "obs-off", ignore = "recording is compiled out")]
    #[test]
    fn minus_yields_interval_quantiles() {
        let h = LatencyHistogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let before = h.snapshot();
        for _ in 0..100 {
            h.record(1_000_000);
        }
        let delta = h.snapshot().minus(&before);
        assert_eq!(delta.count(), 100);
        let p50 = delta.quantile(0.5).unwrap();
        let rel = (p50 as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(rel <= 1.0 / 32.0, "interval p50 ignores pre-interval samples: {p50}");
    }
}
