//! Per-request structured tracing: stage spans accumulated lock-free
//! into a [`TraceBuilder`], finished [`Trace`]s pushed into a bounded
//! ring buffer ([`TraceRecorder`]).
//!
//! A query worker owns its `TraceBuilder` for the duration of one
//! request — entering a [`Span`] and dropping it adds the elapsed time
//! to that stage's local accumulator, with no shared state touched until
//! the single ring-buffer push at completion. Stage durations therefore
//! sum to ≤ the root (end-to-end) duration by construction: stages are
//! disjoint slices of the same request's wall time.
//!
//! Under the `obs-off` feature, [`Ts`] is zero-sized, every elapsed
//! reading is zero, and the recorder drops pushes — the span plumbing
//! compiles to nothing.

use crate::metrics::HistKind;
use std::collections::VecDeque;
use std::time::Duration;

/// A monotonic timestamp; zero-sized (and always-zero elapsed) under
/// `obs-off`, so timestamping hot paths costs nothing when compiled out.
#[derive(Debug, Clone, Copy)]
pub struct Ts(#[cfg(not(feature = "obs-off"))] std::time::Instant);

impl Ts {
    /// The current instant.
    #[inline]
    pub fn now() -> Self {
        Ts(
            #[cfg(not(feature = "obs-off"))]
            std::time::Instant::now(),
        )
    }

    /// Time elapsed since this timestamp ([`Duration::ZERO`] under
    /// `obs-off`).
    #[inline]
    pub fn elapsed(&self) -> Duration {
        #[cfg(not(feature = "obs-off"))]
        {
            self.0.elapsed()
        }
        #[cfg(feature = "obs-off")]
        {
            Duration::ZERO
        }
    }

    /// The current monotonic instant, **live in every configuration**
    /// (including `obs-off`, where [`Ts::now`] readings compile out).
    /// This is the workspace's one blessed wall-clock entry point for
    /// *scheduling decisions* — deadlines, coalescing windows, frontier
    /// waits — which must keep working when measurement is compiled out.
    /// The `cargo xtask lint` coordinated-omission rule forbids raw
    /// `Instant::now()` outside this crate for exactly that reason.
    #[inline]
    #[must_use]
    pub fn monotonic_now() -> std::time::Instant {
        std::time::Instant::now()
    }

    /// The underlying monotonic instant, or `None` under `obs-off`
    /// (where `Ts` is zero-sized). Deadline enforcement anchors budgets
    /// here when timing is compiled in, and falls back to its own clock
    /// otherwise.
    #[inline]
    pub fn instant(&self) -> Option<std::time::Instant> {
        #[cfg(not(feature = "obs-off"))]
        {
            Some(self.0)
        }
        #[cfg(feature = "obs-off")]
        {
            None
        }
    }

    /// This timestamp shifted `d` into the future (identity under
    /// `obs-off`). An open-loop workload generator stamps each request
    /// with its *intended* arrival time — one phase epoch plus the
    /// schedule offset — so dispatcher lag is charged to the request
    /// instead of silently shrinking its measured latency.
    #[inline]
    #[must_use]
    pub fn plus(self, d: Duration) -> Ts {
        #[cfg(not(feature = "obs-off"))]
        {
            Ts(self.0 + d)
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = d;
            self
        }
    }
}

impl Default for Ts {
    fn default() -> Self {
        Ts::now()
    }
}

macro_rules! metric_stage_enum {
    ($(#[$meta:meta])* $vis:vis enum $name:ident { $($variant:ident => ($text:literal, $hist:expr),)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        $vis enum $name {
            $($variant,)+
        }

        impl $name {
            /// Every stage, in storage order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of stages.
            pub const COUNT: usize = $name::ALL.len();

            /// Stable snake_case name.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $text,)+
                }
            }

            /// The registry histogram this stage's durations feed.
            pub fn hist(self) -> HistKind {
                match self {
                    $($name::$variant => $hist,)+
                }
            }
        }
    };
}

metric_stage_enum! {
    /// The stages a request's time is attributed to. Query stages map
    /// onto the serving pipeline (queue wait → cache lookup → candidate
    /// pruning → iso eval → ledger read); update stages onto the
    /// incremental-maintenance pipeline (diff → commit → BFS → group
    /// repair → ledger patch).
    pub enum Stage {
        QueueWait => ("queue_wait", HistKind::QueueWait),
        CacheLookup => ("cache_lookup", HistKind::CacheLookup),
        CandidatePrune => ("candidate_prune", HistKind::CandidatePrune),
        IsoEval => ("iso_eval", HistKind::IsoEval),
        LedgerRead => ("ledger_read", HistKind::LedgerRead),
        Warmup => ("warmup", HistKind::Warmup),
        UpdateDiff => ("update_diff", HistKind::UpdateDiff),
        UpdateCommit => ("update_commit", HistKind::UpdateCommit),
        UpdateBfs => ("update_bfs", HistKind::UpdateBfs),
        UpdateGroupRepair => ("update_group_repair", HistKind::UpdateGroupRepair),
        UpdateLedgerPatch => ("update_ledger_patch", HistKind::UpdateLedgerPatch),
        UpdateCoalesce => ("update_coalesce", HistKind::UpdateCoalesce),
        UpdatePublish => ("update_publish", HistKind::UpdatePublish),
    }
}

/// What kind of request a trace describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An identify (potential-customer) query.
    Identify,
    /// A top-rules ranking query.
    TopRules,
    /// An update batch.
    Update,
}

impl TraceKind {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Identify => "identify",
            TraceKind::TopRules => "top_rules",
            TraceKind::Update => "update",
        }
    }
}

/// A finished per-request trace: the root duration plus the stage
/// breakdown (only stages with non-zero time are kept).
#[derive(Debug, Clone)]
pub struct Trace {
    /// Request kind.
    pub kind: TraceKind,
    /// Monotonic sequence number assigned by the recorder at push time.
    pub seq: u64,
    /// Root span: end-to-end request duration.
    pub total: Duration,
    /// `(stage, duration)` pairs; disjoint slices of `total`, so their
    /// sum is ≤ `total`.
    pub stages: Vec<(Stage, Duration)>,
}

impl Trace {
    /// Duration attributed to `stage` (zero when absent).
    pub fn stage(&self, stage: Stage) -> Duration {
        self.stages.iter().find(|(s, _)| *s == stage).map(|(_, d)| *d).unwrap_or(Duration::ZERO)
    }

    /// Sum of all stage durations.
    pub fn stages_total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }
}

/// Per-request stage accumulator owned by one worker for one request.
/// No locks are taken while the request runs; the builder is turned
/// into a [`Trace`] at completion.
#[derive(Debug)]
pub struct TraceBuilder {
    kind: TraceKind,
    stages: [Duration; Stage::COUNT],
}

impl TraceBuilder {
    /// A fresh builder for one request.
    pub fn new(kind: TraceKind) -> Self {
        Self { kind, stages: [Duration::ZERO; Stage::COUNT] }
    }

    /// Adds `d` to `stage`'s accumulator (spans re-entering a stage
    /// accumulate, e.g. per-candidate iso-eval slices).
    #[inline]
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.stages[stage as usize] += d;
    }

    /// Enters `stage`: the returned [`Span`] adds its elapsed lifetime
    /// to the stage when dropped.
    #[inline]
    pub fn span(&mut self, stage: Stage) -> Span<'_> {
        Span::enter(self, stage)
    }

    /// Finishes the request into a [`Trace`] with root duration `total`.
    pub fn finish(self, total: Duration) -> Trace {
        let stages = Stage::ALL
            .iter()
            .filter(|s| !self.stages[**s as usize].is_zero())
            .map(|&s| (s, self.stages[s as usize]))
            .collect();
        Trace { kind: self.kind, seq: 0, total, stages }
    }
}

/// RAII stage timer: created by [`Span::enter`] (or
/// [`TraceBuilder::span`]), adds its elapsed lifetime to the stage on
/// drop.
#[derive(Debug)]
pub struct Span<'a> {
    builder: &'a mut TraceBuilder,
    stage: Stage,
    start: Ts,
}

impl<'a> Span<'a> {
    /// Starts timing `stage` against `builder`.
    #[inline]
    pub fn enter(builder: &'a mut TraceBuilder, stage: Stage) -> Self {
        Span { builder, stage, start: Ts::now() }
    }
}

impl Drop for Span<'_> {
    #[inline]
    fn drop(&mut self) {
        self.builder.add(self.stage, self.start.elapsed());
    }
}

/// A bounded ring buffer of recent [`Trace`]s shared by the worker pool.
/// One short lock per completed request; capacity 0 disables recording.
#[derive(Debug)]
pub struct TraceRecorder {
    inner: parking_lot::Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<Trace>,
    seq: u64,
}

impl TraceRecorder {
    /// A recorder retaining the most recent `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: parking_lot::Mutex::new(Ring {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                seq: 0,
            }),
            capacity,
        }
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes a finished trace, assigning its sequence number and
    /// evicting the oldest retained trace when full. Dropped under
    /// `obs-off` or capacity 0.
    pub fn push(&self, mut trace: Trace) {
        if cfg!(feature = "obs-off") || self.capacity == 0 {
            return;
        }
        let mut ring = self.inner.lock();
        trace.seq = ring.seq;
        ring.seq += 1;
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
        }
        ring.buf.push_back(trace);
    }

    /// Total traces ever pushed (including evicted ones).
    pub fn pushed(&self) -> u64 {
        self.inner.lock().seq
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<Trace> {
        self.inner.lock().buf.iter().cloned().collect()
    }

    /// Drops all retained traces (the sequence counter keeps running).
    pub fn clear(&self) {
        self.inner.lock().buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_shifts_the_epoch_forward() {
        let epoch = Ts::now();
        let shifted = epoch.plus(Duration::from_secs(3600));
        #[cfg(not(feature = "obs-off"))]
        assert_eq!(shifted.elapsed(), Duration::ZERO, "an hour ahead has no elapsed time yet");
        #[cfg(feature = "obs-off")]
        assert_eq!(shifted.elapsed(), Duration::ZERO);
        assert!(epoch.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn spans_accumulate_into_stages() {
        let mut tb = TraceBuilder::new(TraceKind::Identify);
        let t0 = Ts::now();
        {
            let _s = tb.span(Stage::CacheLookup);
            std::thread::sleep(Duration::from_millis(2));
        }
        for _ in 0..2 {
            let _s = Span::enter(&mut tb, Stage::IsoEval);
            std::thread::sleep(Duration::from_millis(1));
        }
        let trace = tb.finish(t0.elapsed());
        if cfg!(feature = "obs-off") {
            assert!(trace.stages.is_empty(), "obs-off: all stage durations are zero");
            assert_eq!(trace.total, Duration::ZERO);
            return;
        }
        assert!(trace.stage(Stage::CacheLookup) >= Duration::from_millis(2));
        assert!(trace.stage(Stage::IsoEval) >= Duration::from_millis(2), "re-entry accumulates");
        assert_eq!(trace.stage(Stage::QueueWait), Duration::ZERO);
        assert!(
            trace.stages_total() <= trace.total,
            "stages are disjoint slices of the root duration"
        );
    }

    #[test]
    fn recorder_is_a_bounded_ring() {
        let rec = TraceRecorder::new(3);
        for i in 0..5u64 {
            let mut tb = TraceBuilder::new(TraceKind::Identify);
            tb.add(Stage::IsoEval, Duration::from_nanos(i + 1));
            rec.push(tb.finish(Duration::from_nanos(i + 1)));
        }
        if cfg!(feature = "obs-off") {
            assert_eq!(rec.pushed(), 0, "obs-off: pushes are dropped");
            return;
        }
        assert_eq!(rec.pushed(), 5);
        let recent = rec.recent();
        assert_eq!(recent.len(), 3, "oldest traces evicted");
        assert_eq!(recent.iter().map(|t| t.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        rec.clear();
        assert!(rec.recent().is_empty());
        assert_eq!(rec.pushed(), 5, "sequence survives clear");
    }

    #[test]
    fn capacity_zero_disables_recording() {
        let rec = TraceRecorder::new(0);
        rec.push(TraceBuilder::new(TraceKind::Update).finish(Duration::from_nanos(1)));
        assert_eq!(rec.pushed(), 0);
        assert!(rec.recent().is_empty());
    }

    #[test]
    fn stage_names_and_hist_mapping_are_total() {
        for &s in Stage::ALL {
            assert!(!s.name().is_empty());
            // Mapping must be callable for every stage (exhaustiveness).
            let _ = s.hist();
        }
        assert_eq!(Stage::COUNT, Stage::ALL.len());
    }
}
