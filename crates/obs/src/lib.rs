//! # gpar-obs
//!
//! The observability runtime for the GPAR workspace: no global state,
//! no external dependencies — every instrument lives in a registry the
//! owner constructs and threads to its components.
//!
//! Three layers:
//!
//! * [`hist`] — log-linear (HDR-style) **latency histograms**: lock-free
//!   recording (one relaxed `fetch_add` per sample), ≤ 3.125% relative
//!   quantile error, and exact bucket-wise shard merge (associative, so
//!   p50/p99/p999 over merged shards equal the single-stream values up
//!   to bucket resolution).
//! * [`metrics`] — the **[`MetricsRegistry`]**: per-worker-sharded
//!   [`Counter`]s and histograms plus shared [`Gauge`]s, snapshotted
//!   into one coherent [`MetricsSnapshot`]. Counters that must move
//!   together are bumped inside a seqlock [`WriteTxn`], so snapshots
//!   never observe half of a multi-counter transaction (the
//!   `EngineStats`-consistency contract). `MetricsSnapshot::to_bench_json`
//!   serializes to the `BENCH_matcher.json` scenario shape.
//! * [`trace`] — **per-request spans**: a worker accumulates stage
//!   durations into a local [`TraceBuilder`] (enter a [`Span`], drop it),
//!   then pushes the finished [`Trace`] into a bounded [`TraceRecorder`]
//!   ring — one short lock per request, none while it runs.
//!
//! ## The `obs-off` feature
//!
//! Building with `--features obs-off` compiles the *timing* half out:
//! [`Ts`] becomes zero-sized with zero elapsed readings, histogram
//! `record` and trace pushes become no-ops. **Counters and gauges stay
//! live** — engine statistics (query/update/cache counts) are part of
//! the serving semantics, not optional telemetry. The CI `obs-overhead`
//! leg builds the benchmark suite both ways and gates the enabled
//! overhead.

pub mod hist;
pub mod metrics;
pub mod trace;

/// Internal atomics/spin switch: `std` by default; under the `model`
/// feature the registry's atomics and spin hints come from `gpar-model`,
/// so the seqlock protocol runs under the deterministic model checker
/// (and passes through to `std` outside model executions).
pub(crate) mod sync {
    #[cfg(feature = "model")]
    pub(crate) use gpar_model::hint::spin_loop;
    #[cfg(not(feature = "model"))]
    pub(crate) use std::hint::spin_loop;

    pub(crate) mod atomic {
        #[cfg(feature = "model")]
        pub(crate) use gpar_model::sync::atomic::{AtomicI64, AtomicU64, Ordering};
        #[cfg(not(feature = "model"))]
        pub(crate) use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    }
}

pub use hist::{HistogramSnapshot, LatencyHistogram, NUM_BUCKETS};
pub use metrics::{Counter, Gauge, HistKind, MetricsRegistry, MetricsSnapshot, WriteTxn};
pub use trace::{Span, Stage, Trace, TraceBuilder, TraceKind, TraceRecorder, Ts};
