//! The pattern data type.

use gpar_graph::{Label, Vocab};
use std::fmt;
use std::sync::Arc;

/// A pattern node identifier, dense in `0..pattern.node_count()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PNodeId(pub u32);

impl PNodeId {
    /// Dense index of this pattern node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Search condition on a pattern node: `f(u)` in the paper. A concrete
/// label matches data nodes with exactly that label (value bindings like
/// `"44"` are labels too); [`NodeCond::Any`] matches every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeCond {
    /// Match nodes labeled with this symbol.
    Label(Label),
    /// Wildcard: match any node.
    Any,
}

impl NodeCond {
    /// Whether a data label satisfies this condition.
    #[inline]
    pub fn matches(self, l: Label) -> bool {
        match self {
            NodeCond::Label(need) => need == l,
            NodeCond::Any => true,
        }
    }

    /// The concrete label, if any.
    #[inline]
    pub fn label(self) -> Option<Label> {
        match self {
            NodeCond::Label(l) => Some(l),
            NodeCond::Any => None,
        }
    }
}

/// Search condition on a pattern edge: `f(e)` in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeCond {
    /// Match edges labeled with this symbol.
    Label(Label),
    /// Wildcard: match any edge label.
    Any,
}

impl EdgeCond {
    /// Whether a data edge label satisfies this condition.
    #[inline]
    pub fn matches(self, l: Label) -> bool {
        match self {
            EdgeCond::Label(need) => need == l,
            EdgeCond::Any => true,
        }
    }
}

/// A directed pattern edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PEdge {
    /// Source pattern node.
    pub src: PNodeId,
    /// Destination pattern node.
    pub dst: PNodeId,
    /// Edge condition.
    pub cond: EdgeCond,
}

/// Errors raised while constructing or mutating patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// A pattern must contain at least one node.
    Empty,
    /// The designated node id is out of range.
    BadDesignated(PNodeId),
    /// An edge endpoint is out of range.
    BadEndpoint(PNodeId),
    /// The same directed labeled edge was added twice.
    DuplicateEdge(PEdge),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern has no nodes"),
            PatternError::BadDesignated(u) => write!(f, "designated node {u} out of range"),
            PatternError::BadEndpoint(u) => write!(f, "edge endpoint {u} out of range"),
            PatternError::DuplicateEdge(e) => {
                write!(f, "duplicate pattern edge {} -> {}", e.src, e.dst)
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A graph pattern with designated nodes `x` (always) and `y` (optional).
///
/// Patterns are small (the paper: 98% of real-life patterns have radius 1,
/// and GPAR patterns have a handful of nodes), so adjacency is stored as
/// per-node `Vec`s and clones are cheap — pattern *extension* during mining
/// is clone-plus-push (see [`Pattern::with_edge`] and
/// [`Pattern::with_node_and_edge`]).
#[derive(Debug, Clone)]
pub struct Pattern {
    conds: Vec<NodeCond>,
    edges: Vec<PEdge>,
    out: Vec<Vec<(PNodeId, EdgeCond)>>,
    inn: Vec<Vec<(PNodeId, EdgeCond)>>,
    x: PNodeId,
    y: Option<PNodeId>,
    vocab: Arc<Vocab>,
}

impl Pattern {
    /// Constructs a pattern from parts. Prefer [`crate::PatternBuilder`].
    pub fn from_parts(
        conds: Vec<NodeCond>,
        edges: Vec<PEdge>,
        x: PNodeId,
        y: Option<PNodeId>,
        vocab: Arc<Vocab>,
    ) -> Result<Self, PatternError> {
        if conds.is_empty() {
            return Err(PatternError::Empty);
        }
        let n = conds.len();
        if x.index() >= n {
            return Err(PatternError::BadDesignated(x));
        }
        if let Some(y) = y {
            if y.index() >= n {
                return Err(PatternError::BadDesignated(y));
            }
        }
        let mut seen = rustc_hash::FxHashSet::default();
        for e in &edges {
            if e.src.index() >= n {
                return Err(PatternError::BadEndpoint(e.src));
            }
            if e.dst.index() >= n {
                return Err(PatternError::BadEndpoint(e.dst));
            }
            if !seen.insert(*e) {
                return Err(PatternError::DuplicateEdge(*e));
            }
        }
        let mut out = vec![Vec::new(); n];
        let mut inn = vec![Vec::new(); n];
        for e in &edges {
            out[e.src.index()].push((e.dst, e.cond));
            inn[e.dst.index()].push((e.src, e.cond));
        }
        Ok(Self { conds, edges, out, inn, x, y, vocab })
    }

    /// Number of pattern nodes `|V_p|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.conds.len()
    }

    /// Number of pattern edges `|E_p|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The designated node `x`.
    #[inline]
    pub fn x(&self) -> PNodeId {
        self.x
    }

    /// The designated node `y`, if any.
    #[inline]
    pub fn y(&self) -> Option<PNodeId> {
        self.y
    }

    /// The shared vocabulary.
    #[inline]
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Condition of node `u`.
    #[inline]
    pub fn cond(&self, u: PNodeId) -> NodeCond {
        self.conds[u.index()]
    }

    /// All node conditions, indexed by node.
    #[inline]
    pub fn conds(&self) -> &[NodeCond] {
        &self.conds
    }

    /// All pattern edges.
    #[inline]
    pub fn edges(&self) -> &[PEdge] {
        &self.edges
    }

    /// Iterator over pattern node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = PNodeId> {
        (0..self.node_count() as u32).map(PNodeId)
    }

    /// Out-neighbors `(dst, cond)` of `u`.
    #[inline]
    pub fn out(&self, u: PNodeId) -> &[(PNodeId, EdgeCond)] {
        &self.out[u.index()]
    }

    /// In-neighbors `(src, cond)` of `u`.
    #[inline]
    pub fn inn(&self, u: PNodeId) -> &[(PNodeId, EdgeCond)] {
        &self.inn[u.index()]
    }

    /// Undirected degree of `u`.
    #[inline]
    pub fn degree(&self, u: PNodeId) -> usize {
        self.out[u.index()].len() + self.inn[u.index()].len()
    }

    /// Whether the directed edge `(src, dst)` with exactly `cond` exists.
    pub fn has_edge(&self, src: PNodeId, dst: PNodeId, cond: EdgeCond) -> bool {
        self.out[src.index()].iter().any(|&(d, c)| d == dst && c == cond)
    }

    /// Returns a new pattern extended with one edge between existing nodes.
    pub fn with_edge(
        &self,
        src: PNodeId,
        dst: PNodeId,
        cond: EdgeCond,
    ) -> Result<Self, PatternError> {
        let mut edges = self.edges.clone();
        edges.push(PEdge { src, dst, cond });
        Self::from_parts(self.conds.clone(), edges, self.x, self.y, self.vocab.clone())
    }

    /// Returns a new pattern with a fresh node attached by one edge.
    /// `outgoing` chooses the direction of the new edge relative to the
    /// existing node `at`.
    pub fn with_node_and_edge(
        &self,
        at: PNodeId,
        node_cond: NodeCond,
        edge_cond: EdgeCond,
        outgoing: bool,
    ) -> Result<(Self, PNodeId), PatternError> {
        let mut conds = self.conds.clone();
        let new = PNodeId(conds.len() as u32);
        conds.push(node_cond);
        let mut edges = self.edges.clone();
        let e = if outgoing {
            PEdge { src: at, dst: new, cond: edge_cond }
        } else {
            PEdge { src: new, dst: at, cond: edge_cond }
        };
        edges.push(e);
        let p = Self::from_parts(conds, edges, self.x, self.y, self.vocab.clone())?;
        Ok((p, new))
    }

    /// A compact structural signature of node `u`:
    /// `(cond, out-degree, in-degree)`. Used to seed refinement and to
    /// prune isomorphism search.
    pub(crate) fn node_signature(&self, u: PNodeId) -> (NodeCond, usize, usize) {
        (self.cond(u), self.out[u.index()].len(), self.inn[u.index()].len())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = |c: NodeCond| match c {
            NodeCond::Label(l) => self.vocab.resolve(l).to_string(),
            NodeCond::Any => "*".to_string(),
        };
        write!(f, "Q[x={}", self.x)?;
        if let Some(y) = self.y {
            write!(f, ", y={y}")?;
        }
        write!(f, "](")?;
        for (i, u) in self.nodes().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}:{}", name(self.cond(u)))?;
        }
        write!(f, "; ")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let el = match e.cond {
                EdgeCond::Label(l) => self.vocab.resolve(l).to_string(),
                EdgeCond::Any => "*".to_string(),
            };
            write!(f, "{}-[{}]->{}", e.src, el, e.dst)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_and_labels() -> (Arc<Vocab>, Label, Label, Label) {
        let v = Vocab::new();
        let cust = v.intern("cust");
        let shop = v.intern("shop");
        let visit = v.intern("visit");
        (v, cust, shop, visit)
    }

    #[test]
    fn from_parts_validates() {
        let (v, cust, _, visit) = vocab_and_labels();
        assert_eq!(
            Pattern::from_parts(vec![], vec![], PNodeId(0), None, v.clone()).unwrap_err(),
            PatternError::Empty
        );
        assert!(matches!(
            Pattern::from_parts(vec![NodeCond::Label(cust)], vec![], PNodeId(3), None, v.clone()),
            Err(PatternError::BadDesignated(_))
        ));
        let e = PEdge { src: PNodeId(0), dst: PNodeId(9), cond: EdgeCond::Label(visit) };
        assert!(matches!(
            Pattern::from_parts(vec![NodeCond::Label(cust)], vec![e], PNodeId(0), None, v.clone()),
            Err(PatternError::BadEndpoint(_))
        ));
        let e0 = PEdge { src: PNodeId(0), dst: PNodeId(0), cond: EdgeCond::Label(visit) };
        assert!(matches!(
            Pattern::from_parts(vec![NodeCond::Label(cust)], vec![e0, e0], PNodeId(0), None, v),
            Err(PatternError::DuplicateEdge(_))
        ));
    }

    #[test]
    fn adjacency_is_consistent() {
        let (v, cust, shop, visit) = vocab_and_labels();
        let p = Pattern::from_parts(
            vec![NodeCond::Label(cust), NodeCond::Label(shop)],
            vec![PEdge { src: PNodeId(0), dst: PNodeId(1), cond: EdgeCond::Label(visit) }],
            PNodeId(0),
            Some(PNodeId(1)),
            v,
        )
        .unwrap();
        assert_eq!(p.out(PNodeId(0)).len(), 1);
        assert_eq!(p.inn(PNodeId(1)).len(), 1);
        assert_eq!(p.degree(PNodeId(0)), 1);
        assert!(p.has_edge(PNodeId(0), PNodeId(1), EdgeCond::Label(visit)));
        assert!(!p.has_edge(PNodeId(1), PNodeId(0), EdgeCond::Label(visit)));
    }

    #[test]
    fn extension_constructors_do_not_mutate_original() {
        let (v, cust, shop, visit) = vocab_and_labels();
        let p = Pattern::from_parts(
            vec![NodeCond::Label(cust), NodeCond::Label(shop)],
            vec![],
            PNodeId(0),
            None,
            v,
        )
        .unwrap();
        let p2 = p.with_edge(PNodeId(0), PNodeId(1), EdgeCond::Label(visit)).unwrap();
        assert_eq!(p.edge_count(), 0);
        assert_eq!(p2.edge_count(), 1);
        let (p3, new) = p
            .with_node_and_edge(PNodeId(0), NodeCond::Label(shop), EdgeCond::Label(visit), true)
            .unwrap();
        assert_eq!(p3.node_count(), 3);
        assert_eq!(p3.out(PNodeId(0)), &[(new, EdgeCond::Label(visit))]);
        // incoming variant
        let (p4, new4) = p
            .with_node_and_edge(PNodeId(0), NodeCond::Label(shop), EdgeCond::Label(visit), false)
            .unwrap();
        assert_eq!(p4.inn(PNodeId(0)), &[(new4, EdgeCond::Label(visit))]);
    }

    #[test]
    fn wildcard_conditions_match_everything() {
        let (v, cust, _, visit) = vocab_and_labels();
        assert!(NodeCond::Any.matches(cust));
        assert!(NodeCond::Label(cust).matches(cust));
        assert!(!NodeCond::Label(cust).matches(v.intern("other")));
        assert!(EdgeCond::Any.matches(visit));
        assert!(!EdgeCond::Label(visit).matches(v.intern("other_e")));
    }

    #[test]
    fn display_is_readable() {
        let (v, cust, shop, visit) = vocab_and_labels();
        let p = Pattern::from_parts(
            vec![NodeCond::Label(cust), NodeCond::Label(shop)],
            vec![PEdge { src: PNodeId(0), dst: PNodeId(1), cond: EdgeCond::Label(visit) }],
            PNodeId(0),
            Some(PNodeId(1)),
            v,
        )
        .unwrap();
        let s = p.to_string();
        assert!(s.contains("cust"), "{s}");
        assert!(s.contains("visit"), "{s}");
    }
}
