//! Compact binary codec for patterns, sharing the varint primitives of
//! [`gpar_graph::io::bin`].
//!
//! Layout (all integers LEB128 varints):
//!
//! ```text
//! magic  "GPARP01\n"
//! label table   count, then (len, utf8-bytes) per referenced label
//! nodes         count, then per node: 0 = Any | 1 followed by label-index
//! designated    x, then 0 = no y | local-node-index + 1
//! edges         count, then per edge: src, dst, 0 = Any | 1 + label-index
//! ```
//!
//! Like the graph codec, the label table makes streams self-contained:
//! reading interns every referenced string into the destination `Vocab`.

use crate::pattern::{EdgeCond, NodeCond, PEdge, PNodeId, Pattern};
use gpar_graph::io::bin::{self, BinError};
use gpar_graph::{Label, Vocab};
use std::io::{Read, Write};
use std::sync::Arc;

/// Magic header of the binary pattern format.
pub const PATTERN_MAGIC: &[u8; 8] = b"GPARP01\n";

/// Writes `p` in the compact binary format.
pub fn write_pattern_binary(p: &Pattern, mut w: impl Write) -> Result<(), BinError> {
    let w = &mut w;
    bin::write_magic(w, PATTERN_MAGIC)?;
    let vocab = p.vocab();
    let mut table = bin::LabelTable::default();
    for u in p.nodes() {
        if let NodeCond::Label(l) = p.cond(u) {
            table.intern(l, vocab);
        }
    }
    for e in p.edges() {
        if let EdgeCond::Label(l) = e.cond {
            table.intern(l, vocab);
        }
    }
    bin::write_label_table(w, table.strings())?;
    bin::write_uvarint(w, p.node_count() as u64)?;
    for u in p.nodes() {
        match p.cond(u) {
            NodeCond::Any => bin::write_uvarint(w, 0)?,
            NodeCond::Label(l) => {
                bin::write_uvarint(w, 1)?;
                bin::write_uvarint(w, table.index_of(l))?;
            }
        }
    }
    bin::write_uvarint(w, p.x().0 as u64)?;
    bin::write_uvarint(w, p.y().map_or(0, |y| y.0 as u64 + 1))?;
    bin::write_uvarint(w, p.edge_count() as u64)?;
    for e in p.edges() {
        bin::write_uvarint(w, e.src.0 as u64)?;
        bin::write_uvarint(w, e.dst.0 as u64)?;
        match e.cond {
            EdgeCond::Any => bin::write_uvarint(w, 0)?,
            EdgeCond::Label(l) => {
                bin::write_uvarint(w, 1)?;
                bin::write_uvarint(w, table.index_of(l))?;
            }
        }
    }
    Ok(())
}

/// Reads a pattern in the compact binary format, interning labels into
/// `vocab`. Structural validation (designated nodes in range, no
/// duplicate edges, …) is delegated to [`Pattern::from_parts`].
pub fn read_pattern_binary(mut r: impl Read, vocab: Arc<Vocab>) -> Result<Pattern, BinError> {
    let r = &mut r;
    bin::read_magic(r, PATTERN_MAGIC)?;
    let table = bin::read_label_table(r, &vocab)?;
    let label_at = |i: u64| -> Result<Label, BinError> {
        table
            .get(i as usize)
            .copied()
            .ok_or_else(|| BinError::Malformed(format!("label index {i} out of range")))
    };
    let n_nodes = bin::read_count(r, 1 << 20, "pattern node")?;
    let mut conds = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        conds.push(match bin::read_uvarint(r)? {
            0 => NodeCond::Any,
            1 => NodeCond::Label(label_at(bin::read_uvarint(r)?)?),
            t => return Err(BinError::Malformed(format!("bad node-cond tag {t}"))),
        });
    }
    let x = PNodeId(bin::read_count(r, u32::MAX as u64, "node index")? as u32);
    let y = match bin::read_uvarint(r)? {
        0 => None,
        i if i <= u32::MAX as u64 => Some(PNodeId(i as u32 - 1)),
        i => return Err(BinError::Malformed(format!("y index {i} out of range"))),
    };
    let n_edges = bin::read_count(r, 1 << 20, "pattern edge")?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        let src = PNodeId(bin::read_count(r, u32::MAX as u64, "node index")? as u32);
        let dst = PNodeId(bin::read_count(r, u32::MAX as u64, "node index")? as u32);
        let cond = match bin::read_uvarint(r)? {
            0 => EdgeCond::Any,
            1 => EdgeCond::Label(label_at(bin::read_uvarint(r)?)?),
            t => return Err(BinError::Malformed(format!("bad edge-cond tag {t}"))),
        };
        edges.push(PEdge { src, dst, cond });
    }
    Pattern::from_parts(conds, edges, x, y, vocab)
        .map_err(|e| BinError::Malformed(format!("invalid pattern: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;

    fn sample() -> Pattern {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let (like, visit) = (vocab.intern("like"), vocab.intern("visit"));
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let x2 = b.node_any();
        let y = b.node(rest);
        b.edge(x, x2, like);
        b.edge(x2, y, visit);
        b.edge_any(x, y);
        b.designate(x, y).build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let mut buf = Vec::new();
        write_pattern_binary(&p, &mut buf).unwrap();
        let fresh = Vocab::new();
        let q = read_pattern_binary(buf.as_slice(), fresh.clone()).unwrap();
        assert_eq!(q.node_count(), p.node_count());
        assert_eq!(q.edge_count(), p.edge_count());
        assert_eq!(q.x(), p.x());
        assert_eq!(q.y(), p.y());
        // Conditions survive, with labels re-interned by name.
        assert_eq!(q.cond(q.x()), NodeCond::Label(fresh.get("cust").unwrap()));
        assert_eq!(q.cond(PNodeId(1)), NodeCond::Any);
        let like = fresh.get("like").unwrap();
        assert!(q.has_edge(PNodeId(0), PNodeId(1), EdgeCond::Label(like)));
        assert!(q.has_edge(PNodeId(0), PNodeId(2), EdgeCond::Any));
        // Structural identity under the exact isomorphism check.
        assert!(crate::automorphism::are_isomorphic(&p, &q, true));
    }

    #[test]
    fn rejects_malformed_streams() {
        let p = sample();
        let mut buf = Vec::new();
        write_pattern_binary(&p, &mut buf).unwrap();

        let mut bad = buf.clone();
        bad[1] = b'X';
        assert!(matches!(
            read_pattern_binary(bad.as_slice(), Vocab::new()).unwrap_err(),
            BinError::BadMagic { .. }
        ));

        for cut in 0..buf.len() {
            assert!(read_pattern_binary(&buf[..cut], Vocab::new()).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn structural_validation_applies_on_read() {
        // Hand-craft a stream whose designated x is out of range.
        let mut buf = Vec::new();
        bin::write_magic(&mut buf, PATTERN_MAGIC).unwrap();
        bin::write_uvarint(&mut buf, 0).unwrap(); // empty label table
        bin::write_uvarint(&mut buf, 1).unwrap(); // one node
        bin::write_uvarint(&mut buf, 0).unwrap(); // NodeCond::Any
        bin::write_uvarint(&mut buf, 9).unwrap(); // x = 9 (out of range)
        bin::write_uvarint(&mut buf, 0).unwrap(); // no y
        bin::write_uvarint(&mut buf, 0).unwrap(); // no edges
        let err = read_pattern_binary(buf.as_slice(), Vocab::new()).unwrap_err();
        assert!(err.to_string().contains("invalid pattern"), "{err}");
    }
}
