//! Exact pattern isomorphism / automorphism with pinned designated nodes.
//!
//! Two GPARs are *redundant duplicates* when their patterns are automorphic
//! with `x` mapped to `x` and `y` to `y` (§4.2 "Automorphism checking").
//! Patterns are tiny, so a signature-pruned backtracking search is exact and
//! fast; the [`crate::bisim`] prefilter (Lemma 4) avoids calling it for most
//! non-isomorphic pairs.

use crate::pattern::{PNodeId, Pattern};

/// Searches for an embedding of `p1` into `p2`.
///
/// * `exact`: require a full isomorphism (node bijection, equal edge count,
///   every `p1` edge present in `p2` — which together imply edge bijection
///   since patterns have no duplicate edges).
/// * `pin_designated`: force `x₁ ↦ x₂` (and `y₁ ↦ y₂` when both present;
///   one-sided `y` fails).
pub(crate) fn find_embedding(
    p1: &Pattern,
    p2: &Pattern,
    exact: bool,
    pin_designated: bool,
) -> Option<Vec<PNodeId>> {
    if exact && (p1.node_count() != p2.node_count() || p1.edge_count() != p2.edge_count()) {
        return None;
    }
    if p1.node_count() > p2.node_count() || p1.edge_count() > p2.edge_count() {
        return None;
    }
    let n1 = p1.node_count();
    let mut map: Vec<Option<PNodeId>> = vec![None; n1];
    let mut used = vec![false; p2.node_count()];

    if pin_designated {
        let (x1, x2) = (p1.x(), p2.x());
        if !compatible(p1, x1, p2, x2, exact) {
            return None;
        }
        map[x1.index()] = Some(x2);
        used[x2.index()] = true;
        match (p1.y(), p2.y()) {
            (Some(y1), Some(y2)) => {
                if y1 != p1.x() {
                    if !compatible(p1, y1, p2, y2, exact) || used[y2.index()] {
                        return None;
                    }
                    map[y1.index()] = Some(y2);
                    used[y2.index()] = true;
                } else if y2 != p2.x() {
                    return None;
                }
            }
            (None, None) => {}
            _ => return None,
        }
    }

    // Order unmapped p1 nodes: most-constrained (highest degree) first.
    let mut order: Vec<PNodeId> = p1.nodes().filter(|u| map[u.index()].is_none()).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(p1.degree(u)));

    fn rec(
        p1: &Pattern,
        p2: &Pattern,
        order: &[PNodeId],
        pos: usize,
        map: &mut Vec<Option<PNodeId>>,
        used: &mut Vec<bool>,
        exact: bool,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let u = order[pos];
        for v in p2.nodes() {
            if used[v.index()] || !compatible(p1, u, p2, v, exact) {
                continue;
            }
            if !edges_consistent(p1, p2, u, v, map, exact) {
                continue;
            }
            map[u.index()] = Some(v);
            used[v.index()] = true;
            if rec(p1, p2, order, pos + 1, map, used, exact) {
                return true;
            }
            map[u.index()] = None;
            used[v.index()] = false;
        }
        false
    }

    // Verify pinned pairs' mutual edges before recursing.
    for u in p1.nodes() {
        if map[u.index()].is_some() && !edges_consistent_pinned(p1, p2, u, &map, exact) {
            return None;
        }
    }

    if rec(p1, p2, &order, 0, &mut map, &mut used, exact) {
        Some(map.into_iter().map(|m| m.unwrap()).collect())
    } else {
        None
    }
}

fn compatible(p1: &Pattern, u: PNodeId, p2: &Pattern, v: PNodeId, exact: bool) -> bool {
    if p1.cond(u) != p2.cond(v) {
        return false;
    }
    let (_, o1, i1) = p1.node_signature(u);
    let (_, o2, i2) = p2.node_signature(v);
    if exact {
        o1 == o2 && i1 == i2
    } else {
        o1 <= o2 && i1 <= i2
    }
}

/// Checks all p1 edges between `u` and already-mapped nodes exist in p2
/// (and, for `exact`, that no extra p2 edges exist between the images).
fn edges_consistent(
    p1: &Pattern,
    p2: &Pattern,
    u: PNodeId,
    v: PNodeId,
    map: &[Option<PNodeId>],
    exact: bool,
) -> bool {
    // Self-loops (dst == u) must be checked against v directly: u is not
    // yet in the partial map when its own feasibility is evaluated.
    for &(dst, cond) in p1.out(u) {
        let target = if dst == u { Some(v) } else { map[dst.index()] };
        if let Some(dst2) = target {
            if !p2.has_edge(v, dst2, cond) {
                return false;
            }
        }
    }
    for &(src, cond) in p1.inn(u) {
        if src == u {
            continue; // self-loop already verified above
        }
        if let Some(src2) = map[src.index()] {
            if !p2.has_edge(src2, v, cond) {
                return false;
            }
        }
    }
    if exact {
        // Reverse direction: p2 edges between v and mapped images must be
        // matched by p1 edges (count argument per endpoint pair + cond).
        for &(dst2, cond) in p2.out(v) {
            let back = if dst2 == v { Some(u) } else { reverse_lookup(map, dst2) };
            if let Some(dst1) = back {
                if !p1.has_edge(u, dst1, cond) {
                    return false;
                }
            }
        }
        for &(src2, cond) in p2.inn(v) {
            if let Some(src1) = reverse_lookup(map, src2) {
                if !p1.has_edge(src1, u, cond) {
                    return false;
                }
            }
        }
    }
    true
}

fn edges_consistent_pinned(
    p1: &Pattern,
    p2: &Pattern,
    u: PNodeId,
    map: &[Option<PNodeId>],
    exact: bool,
) -> bool {
    let v = map[u.index()].unwrap();
    edges_consistent(p1, p2, u, v, map, exact)
}

fn reverse_lookup(map: &[Option<PNodeId>], target: PNodeId) -> Option<PNodeId> {
    map.iter().position(|&m| m == Some(target)).map(|i| PNodeId(i as u32))
}

/// Whether `p1` and `p2` are isomorphic, with designated nodes pinned when
/// `pin_designated` is set. This is the paper's automorphism test between
/// candidate GPARs.
pub fn are_isomorphic(p1: &Pattern, p2: &Pattern, pin_designated: bool) -> bool {
    find_embedding(p1, p2, true, pin_designated).is_some()
}

/// Counts the automorphisms of `p` that fix the designated nodes.
/// Exposed mainly for tests and diagnostics.
pub fn count_automorphisms(p: &Pattern) -> usize {
    let n = p.node_count();
    let mut map: Vec<Option<PNodeId>> = vec![None; n];
    let mut used = vec![false; n];
    map[p.x().index()] = Some(p.x());
    used[p.x().index()] = true;
    if let Some(y) = p.y() {
        if map[y.index()].is_none() {
            map[y.index()] = Some(y);
            used[y.index()] = true;
        }
    }
    let order: Vec<PNodeId> = p.nodes().filter(|u| map[u.index()].is_none()).collect();
    let mut count = 0usize;

    fn rec(
        p: &Pattern,
        order: &[PNodeId],
        pos: usize,
        map: &mut Vec<Option<PNodeId>>,
        used: &mut Vec<bool>,
        count: &mut usize,
    ) {
        if pos == order.len() {
            *count += 1;
            return;
        }
        let u = order[pos];
        for v in p.nodes() {
            if used[v.index()] || !compatible(p, u, p, v, true) {
                continue;
            }
            if !edges_consistent(p, p, u, v, map, true) {
                continue;
            }
            map[u.index()] = Some(v);
            used[v.index()] = true;
            rec(p, order, pos + 1, map, used, count);
            map[u.index()] = None;
            used[v.index()] = false;
        }
    }
    rec(p, &order, 0, &mut map, &mut used, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;
    use gpar_graph::Vocab;

    fn two_friend_patterns() -> (Pattern, Pattern) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let friend = vocab.intern("friend");
        // p1: x -friend-> a
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, friend);
        let p1 = b.designate_x(x).build().unwrap();
        // p2: same shape, nodes declared in the opposite order
        let mut b = PatternBuilder::new(vocab);
        let a2 = b.node(cust);
        let x2 = b.node(cust);
        b.edge(x2, a2, friend);
        let p2 = b.designate_x(x2).build().unwrap();
        (p1, p2)
    }

    #[test]
    fn isomorphic_up_to_node_order() {
        let (p1, p2) = two_friend_patterns();
        assert!(are_isomorphic(&p1, &p2, true));
        assert!(are_isomorphic(&p1, &p2, false));
    }

    #[test]
    fn direction_matters() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let friend = vocab.intern("friend");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, friend);
        let p1 = b.designate_x(x).build().unwrap();
        let mut b = PatternBuilder::new(vocab);
        let x2 = b.node(cust);
        let a2 = b.node(cust);
        b.edge(a2, x2, friend); // reversed
        let p2 = b.designate_x(x2).build().unwrap();
        // Unpinned they are isomorphic (swap roles); pinned at x they are not.
        assert!(are_isomorphic(&p1, &p2, false));
        assert!(!are_isomorphic(&p1, &p2, true));
    }

    #[test]
    fn labels_must_agree() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let shop = vocab.intern("shop");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, e);
        let p1 = b.designate_x(x).build().unwrap();
        let mut b = PatternBuilder::new(vocab);
        let x2 = b.node(cust);
        let a2 = b.node(shop);
        b.edge(x2, a2, e);
        let p2 = b.designate_x(x2).build().unwrap();
        assert!(!are_isomorphic(&p1, &p2, false));
    }

    #[test]
    fn extra_edges_break_isomorphism() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, e);
        let p1 = b.designate_x(x).build().unwrap();
        let p2 = p1.with_edge(a, x, crate::pattern::EdgeCond::Label(e)).unwrap();
        assert!(!are_isomorphic(&p1, &p2, true));
        assert!(!are_isomorphic(&p2, &p1, true));
    }

    #[test]
    fn automorphism_count_of_star_with_k_copies() {
        // x with 3 identical out-neighbors: 3! automorphisms fixing x.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let copies = b.node_copies(rest, 3);
        b.edge_to_copies(x, &copies, like);
        let p = b.designate_x(x).build().unwrap();
        assert_eq!(count_automorphisms(&p), 6);
    }

    #[test]
    fn rigid_pattern_has_one_automorphism() {
        let vocab = Vocab::new();
        let a = vocab.intern("a");
        let bb = vocab.intern("b");
        let c = vocab.intern("c");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let n1 = b.node(a);
        let n2 = b.node(bb);
        let n3 = b.node(c);
        b.edge(n1, n2, e);
        b.edge(n2, n3, e);
        let p = b.designate_x(n1).build().unwrap();
        assert_eq!(count_automorphisms(&p), 1);
    }
}
