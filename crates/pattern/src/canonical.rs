//! Canonical codes for grouping automorphic patterns.
//!
//! The DMine coordinator must group GPARs generated independently by many
//! workers and keep one representative per automorphism class (§4.2). We
//! canonicalize each pattern once and group by the resulting code:
//!
//! * designated nodes are pinned (`x` at position 0, `y` next), since two
//!   GPARs are interchangeable only if some isomorphism maps `x ↦ x`,
//!   `y ↦ y`;
//! * for patterns with at most [`MAX_EXACT_FREE`] free nodes the code is
//!   **exact** (minimum over all placements — small patterns make this
//!   cheap);
//! * larger patterns fall back to a Weisfeiler-Leman-style refinement hash
//!   which may (rarely) collide or split classes; grouping consumers always
//!   confirm with [`crate::are_isomorphic`], so the fallback affects only
//!   performance, never correctness.

use crate::pattern::{EdgeCond, NodeCond, PNodeId, Pattern};
use rustc_hash::FxHashMap;

/// Above this many non-designated nodes, fall back to the hash-based code.
pub const MAX_EXACT_FREE: usize = 9;

/// A canonical (or near-canonical) pattern code, usable as a hash key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanonicalCode {
    words: Vec<u64>,
    exact: bool,
}

impl CanonicalCode {
    /// Whether this code is an exact canonical form (equal codes ⇔
    /// automorphic patterns, designated nodes pinned).
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

fn cond_word(c: NodeCond) -> u64 {
    match c {
        NodeCond::Any => u64::MAX,
        NodeCond::Label(l) => l.0 as u64,
    }
}

fn econd_word(c: EdgeCond) -> u64 {
    match c {
        EdgeCond::Any => u64::MAX,
        EdgeCond::Label(l) => l.0 as u64,
    }
}

/// Builds the code for one concrete placement `pos[node] = position`.
fn code_for_placement(p: &Pattern, pos: &[usize]) -> Vec<u64> {
    let n = p.node_count();
    let mut words = Vec::with_capacity(2 + n + 3 * p.edge_count());
    words.push(n as u64);
    words.push(p.edge_count() as u64);
    // Node conditions in placement order.
    let mut by_pos = vec![0u64; n];
    for u in p.nodes() {
        by_pos[pos[u.index()]] = cond_word(p.cond(u));
    }
    words.extend_from_slice(&by_pos);
    // Edges as sorted (src_pos, dst_pos, cond) triples.
    let mut es: Vec<(usize, usize, u64)> = p
        .edges()
        .iter()
        .map(|e| (pos[e.src.index()], pos[e.dst.index()], econd_word(e.cond)))
        .collect();
    es.sort_unstable();
    for (s, d, c) in es {
        words.push(s as u64);
        words.push(d as u64);
        words.push(c);
    }
    words
}

fn pinned_prefix(p: &Pattern) -> (Vec<usize>, Vec<PNodeId>) {
    // pos[node] = position; designated first, then free nodes (placed later).
    let n = p.node_count();
    let mut pos = vec![usize::MAX; n];
    let mut next = 0usize;
    pos[p.x().index()] = next;
    next += 1;
    if let Some(y) = p.y() {
        if pos[y.index()] == usize::MAX {
            pos[y.index()] = next;
        }
    }
    let free: Vec<PNodeId> = p.nodes().filter(|u| pos[u.index()] == usize::MAX).collect();
    (pos, free)
}

fn exact_code(p: &Pattern, mut pos: Vec<usize>, free: &[PNodeId]) -> Vec<u64> {
    let base = p.node_count() - free.len();
    let mut best: Option<Vec<u64>> = None;
    let mut perm: Vec<usize> = (0..free.len()).collect();
    // Enumerate permutations via Heap's algorithm.
    fn heaps(
        k: usize,
        perm: &mut Vec<usize>,
        p: &Pattern,
        pos: &mut Vec<usize>,
        free: &[PNodeId],
        base: usize,
        best: &mut Option<Vec<u64>>,
    ) {
        if k <= 1 {
            for (slot, &fi) in perm.iter().enumerate() {
                pos[free[fi].index()] = base + slot;
            }
            let code = code_for_placement(p, pos);
            if best.as_ref().is_none_or(|b| code < *b) {
                *best = Some(code);
            }
            return;
        }
        for i in 0..k {
            heaps(k - 1, perm, p, pos, free, base, best);
            if k.is_multiple_of(2) {
                perm.swap(i, k - 1);
            } else {
                perm.swap(0, k - 1);
            }
        }
    }
    if free.is_empty() {
        return code_for_placement(p, &pos);
    }
    heaps(free.len(), &mut perm, p, &mut pos, free, base, &mut best);
    best.unwrap()
}

/// WL-style refinement hash for large patterns (approximate but stable).
fn refined_code(p: &Pattern, pos_pinned: &[usize], free: &[PNodeId]) -> Vec<u64> {
    let n = p.node_count();
    // Initial colors: pinned position (distinct) or condition word.
    let mut color: Vec<u64> = (0..n)
        .map(|i| {
            if pos_pinned[i] != usize::MAX {
                // Reserve small values for pinned nodes.
                pos_pinned[i] as u64
            } else {
                cond_word(p.cond(PNodeId(i as u32))).wrapping_add(1 << 32)
            }
        })
        .collect();
    for _round in 0..n {
        let mut next = Vec::with_capacity(n);
        for u in p.nodes() {
            let mut sig: Vec<u64> = Vec::with_capacity(p.degree(u) + 1);
            sig.push(color[u.index()]);
            let mut neigh: Vec<u64> = p
                .out(u)
                .iter()
                .map(|&(v, c)| hash3(1, econd_word(c), color[v.index()]))
                .chain(p.inn(u).iter().map(|&(v, c)| hash3(2, econd_word(c), color[v.index()])))
                .collect();
            neigh.sort_unstable();
            sig.extend(neigh);
            next.push(hash_slice(&sig));
        }
        if next == color {
            break;
        }
        color = next;
    }
    // Order free nodes by final color (stable tie-break keeps determinism
    // but may split automorphic classes — acceptable for the fallback).
    let mut pos = pos_pinned.to_vec();
    let base = n - free.len();
    let mut order: Vec<PNodeId> = free.to_vec();
    order.sort_by_key(|u| (color[u.index()], u.0));
    for (slot, u) in order.iter().enumerate() {
        pos[u.index()] = base + slot;
    }
    code_for_placement(p, &pos)
}

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    hash_slice(&[a, b, c])
}

fn hash_slice(words: &[u64]) -> u64 {
    // FNV-1a over 64-bit words; deterministic across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for &w in words {
        for shift in [0, 16, 32, 48] {
            h ^= (w >> shift) & 0xffff;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

impl Pattern {
    /// Computes the canonical code of this pattern with designated nodes
    /// pinned. See module docs for exactness guarantees.
    pub fn canonical_code(&self) -> CanonicalCode {
        let (pos, free) = pinned_prefix(self);
        if free.len() <= MAX_EXACT_FREE {
            CanonicalCode { words: exact_code(self, pos, &free), exact: true }
        } else {
            CanonicalCode { words: refined_code(self, &pos, &free), exact: false }
        }
    }
}

/// Groups patterns by canonical code, confirming with the exact
/// isomorphism test inside each bucket. Returns, for each input index, the
/// index of its class representative (the first member seen).
pub fn group_automorphic(patterns: &[&Pattern]) -> Vec<usize> {
    let mut buckets: FxHashMap<CanonicalCode, Vec<usize>> = FxHashMap::default();
    let mut repr = vec![usize::MAX; patterns.len()];
    for (i, p) in patterns.iter().enumerate() {
        let code = p.canonical_code();
        let bucket = buckets.entry(code).or_default();
        let mut found = None;
        for &j in bucket.iter() {
            if crate::are_isomorphic(patterns[j], p, true) {
                found = Some(repr[j]);
                break;
            }
        }
        match found {
            Some(r) => repr[i] = r,
            None => {
                repr[i] = i;
                bucket.push(i);
            }
        }
    }
    repr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;
    use gpar_graph::Vocab;

    fn triangle(vocab: &std::sync::Arc<Vocab>, order: [usize; 3]) -> Pattern {
        // Three labeled nodes a,b,c in a directed cycle; node insertion
        // order is permuted by `order` to exercise canonicalization.
        let la = vocab.intern("a");
        let lb = vocab.intern("b");
        let lc = vocab.intern("c");
        let e = vocab.intern("e");
        let labels = [la, lb, lc];
        let mut b = PatternBuilder::new(vocab.clone());
        let mut ids = [PNodeId(0); 3];
        for &i in &order {
            ids[i] = b.node(labels[i]);
        }
        b.edge(ids[0], ids[1], e);
        b.edge(ids[1], ids[2], e);
        b.edge(ids[2], ids[0], e);
        b.designate_x(ids[0]).build().unwrap()
    }

    #[test]
    fn canonical_code_is_invariant_under_node_order() {
        let vocab = Vocab::new();
        let p1 = triangle(&vocab, [0, 1, 2]);
        let p2 = triangle(&vocab, [2, 0, 1]);
        let p3 = triangle(&vocab, [1, 2, 0]);
        assert_eq!(p1.canonical_code(), p2.canonical_code());
        assert_eq!(p1.canonical_code(), p3.canonical_code());
        assert!(p1.canonical_code().is_exact());
    }

    #[test]
    fn different_patterns_get_different_codes() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, e);
        let p1 = b.designate_x(x).build().unwrap();
        let mut b = PatternBuilder::new(vocab);
        let x2 = b.node(cust);
        let a2 = b.node(cust);
        b.edge(a2, x2, e); // reversed direction
        let p2 = b.designate_x(x2).build().unwrap();
        assert_ne!(p1.canonical_code(), p2.canonical_code());
    }

    #[test]
    fn symmetric_copies_share_a_code() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let build = |swap: bool| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(cust);
            let r1 = b.node(rest);
            let r2 = b.node(rest);
            if swap {
                b.edge(x, r2, like);
                b.edge(x, r1, like);
            } else {
                b.edge(x, r1, like);
                b.edge(x, r2, like);
            }
            b.designate_x(x).build().unwrap()
        };
        assert_eq!(build(false).canonical_code(), build(true).canonical_code());
    }

    #[test]
    fn grouping_collapses_automorphic_patterns() {
        let vocab = Vocab::new();
        let p1 = triangle(&vocab, [0, 1, 2]);
        let p2 = triangle(&vocab, [1, 0, 2]);
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node_str("a");
        let p3 = b.designate_x(x).build().unwrap();
        let repr = group_automorphic(&[&p1, &p2, &p3]);
        assert_eq!(repr, vec![0, 0, 2]);
    }

    #[test]
    fn large_pattern_falls_back_to_refined_code() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let hub = b.node(n);
        let leaves: Vec<_> = (0..12).map(|_| b.node(n)).collect();
        for &l in &leaves {
            b.edge(hub, l, e);
        }
        let p = b.designate_x(hub).build().unwrap();
        let code = p.canonical_code();
        assert!(!code.is_exact());
        // Still deterministic.
        assert_eq!(code, p.canonical_code());
    }
}
