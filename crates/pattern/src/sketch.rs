//! Pattern-side k-hop sketches for guided search (§5.2, Example 10).
//!
//! The guided matcher compares, for a pattern node `u'` and a data node
//! `v'`, the pattern's label demand within `i` hops of `u'` against the
//! data's supply within `i` hops of `v'`. Both sides use the same
//! cumulative [`gpar_graph::Sketch`] representation; this module builds the
//! pattern side.

use crate::pattern::{NodeCond, PNodeId, Pattern};
use gpar_graph::Sketch;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// Builds the cumulative k-hop sketch of pattern node `u`.
///
/// Wildcard (`Any`) neighbors impose no label demand and are skipped; the
/// sketch therefore under-approximates the pattern's requirements, which
/// keeps sketch-based pruning sound.
pub fn pattern_sketch(p: &Pattern, u: PNodeId, k: u32) -> Sketch {
    let mut dist: Vec<Option<u32>> = vec![None; p.node_count()];
    dist[u.index()] = Some(0);
    let mut q = VecDeque::new();
    q.push_back(u);
    while let Some(v) = q.pop_front() {
        let dv = dist[v.index()].unwrap();
        if dv == k {
            continue;
        }
        for &(w, _) in p.out(v).iter().chain(p.inn(v)) {
            if dist[w.index()].is_none() {
                dist[w.index()] = Some(dv + 1);
                q.push_back(w);
            }
        }
    }
    let mut layers: Vec<FxHashMap<gpar_graph::Label, u32>> =
        (0..k).map(|_| FxHashMap::default()).collect();
    for v in p.nodes() {
        let Some(d) = dist[v.index()] else { continue };
        if d == 0 || d > k {
            continue;
        }
        if let NodeCond::Label(l) = p.cond(v) {
            for layer in layers.iter_mut().skip(d as usize - 1) {
                *layer.entry(l).or_insert(0) += 1;
            }
        }
    }
    Sketch::from_layer_maps(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PatternBuilder;
    use gpar_graph::{GraphBuilder, Vocab};

    #[test]
    fn example_10_shape_q1_sketch() {
        // Reproduce Example 10: in PR1, x sees {city:1, cust:1, FR:4}
        // within 1 hop and the same cumulative set within 2 hops.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let city = vocab.intern("city");
        let fr = vocab.intern("french_restaurant");
        let (live_in, friend, like, inn, visit) = (
            vocab.intern("live_in"),
            vocab.intern("friend"),
            vocab.intern("like"),
            vocab.intern("in"),
            vocab.intern("visit"),
        );
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let x2 = b.node(cust);
        let c = b.node(city);
        let rests = b.node_copies(fr, 3);
        let y = b.node(fr);
        b.edge(x, x2, friend);
        b.edge(x, c, live_in);
        b.edge(x2, c, live_in);
        b.edge_to_copies(x, &rests, like);
        b.edge_to_copies(x2, &rests, like);
        b.edge_from_copies(&rests, c, inn);
        b.edge(y, c, inn);
        b.edge(x2, y, visit);
        b.edge(x, y, visit); // the consequent edge, making this P_R1
        let pr1 = b.designate(x, y).build().unwrap();

        let s = pattern_sketch(&pr1, x, 2);
        assert_eq!(s.count(1, cust), 1);
        assert_eq!(s.count(1, city), 1);
        assert_eq!(s.count(1, fr), 4);
        assert_eq!(s.count(2, cust), 1);
        assert_eq!(s.count(2, city), 1);
        assert_eq!(s.count(2, fr), 4);
    }

    #[test]
    fn data_sketch_covers_matching_candidate_only() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let fr = vocab.intern("fr");
        let like = vocab.intern("like");
        // Pattern: x likes 2 fr.
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let rs = pb.node_copies(fr, 2);
        pb.edge_to_copies(x, &rs, like);
        let p = pb.designate_x(x).build().unwrap();
        let ps = pattern_sketch(&p, x, 2);
        // Data: a likes 2 fr; b likes 1 fr.
        let mut gb = GraphBuilder::new(vocab);
        let a = gb.add_node(cust);
        let bnode = gb.add_node(cust);
        for _ in 0..2 {
            let r = gb.add_node(fr);
            gb.add_edge(a, r, like);
        }
        let r = gb.add_node(fr);
        gb.add_edge(bnode, r, like);
        let g = gb.build();
        assert!(gpar_graph::Sketch::build(&g, a, 2).covers(&ps));
        assert!(!gpar_graph::Sketch::build(&g, bnode, 2).covers(&ps));
    }

    #[test]
    fn wildcards_impose_no_demand() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let e = vocab.intern("e");
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let w = pb.node_any();
        pb.edge(x, w, e);
        let p = pb.designate_x(x).build().unwrap();
        let s = pattern_sketch(&p, x, 1);
        assert_eq!(s.count(1, cust), 0);
    }
}
