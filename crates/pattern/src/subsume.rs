//! Pattern subsumption `Q' ⊑ Q` (§2.1).
//!
//! `Q'` is subsumed by `Q` when `(V'_p, E'_p)` embeds as a subgraph of
//! `(V_p, E_p)` with the search conditions preserved (restrictions of `f`
//! and `C`). Subsumption is what makes the paper's support measure
//! anti-monotonic: if `Q' ⊑ Q` then `supp(Q', G) ≥ supp(Q, G)` — a fact the
//! mining algorithm's pruning depends on and our property tests verify.

use crate::automorphism::find_embedding;
use crate::pattern::Pattern;

impl Pattern {
    /// Whether `self ⊑ other`: `self` embeds into `other` as a subgraph
    /// with identical node/edge conditions and designated nodes aligned
    /// (`x ↦ x`, and `y ↦ y` when both designate `y`).
    pub fn is_subsumed_by(&self, other: &Pattern) -> bool {
        find_embedding(self, other, false, true).is_some()
    }

    /// Subsumption without pinning the designated nodes (plain subgraph
    /// embedding between patterns).
    pub fn embeds_into(&self, other: &Pattern) -> bool {
        find_embedding(self, other, false, false).is_some()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PatternBuilder;
    use gpar_graph::Vocab;

    #[test]
    fn single_edge_is_subsumed_by_its_extensions() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let friend = vocab.intern("friend");

        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let y = b.node(rest);
        b.edge(x, y, like);
        let small = b.designate(x, y).build().unwrap();

        let mut b = PatternBuilder::new(vocab);
        let x2 = b.node(cust);
        let y2 = b.node(rest);
        let f = b.node(cust);
        b.edge(x2, y2, like);
        b.edge(x2, f, friend);
        b.edge(f, y2, like);
        let big = b.designate(x2, y2).build().unwrap();

        assert!(small.is_subsumed_by(&big));
        assert!(!big.is_subsumed_by(&small));
        assert!(small.is_subsumed_by(&small), "subsumption is reflexive");
    }

    #[test]
    fn designated_pinning_is_respected() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let follows = vocab.intern("follows");
        // small: x -> a
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, follows);
        let small = b.designate_x(x).build().unwrap();
        // big: b -> x2 (x2 designated, only *incoming* edge)
        let mut b2 = PatternBuilder::new(vocab);
        let x2 = b2.node(cust);
        let bb = b2.node(cust);
        b2.edge(bb, x2, follows);
        let big = b2.designate_x(x2).build().unwrap();
        // Without pinning there is an embedding; with pinning x must map to
        // x2 which has no outgoing edge.
        assert!(small.embeds_into(&big));
        assert!(!small.is_subsumed_by(&big));
    }

    #[test]
    fn conditions_must_be_identical_not_just_compatible() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let mut b = PatternBuilder::new(vocab.clone());
        let any = b.node_any();
        let small = b.designate_x(any).build().unwrap();
        let mut b = PatternBuilder::new(vocab);
        let lab = b.node(cust);
        let big = b.designate_x(lab).build().unwrap();
        // `Any` is not a restriction of `Label(cust)` — f' must be f's
        // restriction, i.e. conditions coincide on shared nodes.
        assert!(!small.is_subsumed_by(&big));
        assert!(!big.is_subsumed_by(&small));
    }
}
