//! A small line-oriented text DSL for patterns.
//!
//! ```text
//! # GPAR antecedent of Example 1 (rule R1), sans copies
//! node x cust
//! node x2 cust
//! node c city
//! node y french_restaurant
//! edge x x2 friend
//! edge x c live_in
//! edge x2 c live_in
//! edge x2 y visit
//! edge y c in
//! designate x y
//! ```
//!
//! `*` stands for a wildcard node or edge condition.

use crate::builder::PatternBuilder;
use crate::pattern::{PNodeId, Pattern, PatternError};
use gpar_graph::Vocab;
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// Errors raised while parsing the pattern DSL.
#[derive(Debug)]
pub enum PatternParseError {
    /// A malformed line, with its 1-based number and description.
    Malformed(usize, String),
    /// The finished pattern failed validation.
    Invalid(PatternError),
}

impl fmt::Display for PatternParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternParseError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
            PatternParseError::Invalid(e) => write!(f, "invalid pattern: {e}"),
        }
    }
}

impl std::error::Error for PatternParseError {}

/// Parses the DSL into a [`Pattern`], interning labels into `vocab`.
pub fn parse_pattern(text: &str, vocab: Arc<Vocab>) -> Result<Pattern, PatternParseError> {
    let mut b = PatternBuilder::new(vocab);
    let mut names: FxHashMap<String, PNodeId> = FxHashMap::default();
    let mut designated: Option<(PNodeId, Option<PNodeId>)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_ascii_whitespace().collect();
        let malformed = |msg: &str| PatternParseError::Malformed(lineno, msg.to_string());
        match toks.as_slice() {
            ["node", name, label] => {
                if names.contains_key(*name) {
                    return Err(malformed(&format!("duplicate node name `{name}`")));
                }
                let id = if *label == "*" { b.node_any() } else { b.node_str(label) };
                names.insert(name.to_string(), id);
            }
            ["edge", a, c, label] => {
                let &src =
                    names.get(*a).ok_or_else(|| malformed(&format!("unknown node `{a}`")))?;
                let &dst =
                    names.get(*c).ok_or_else(|| malformed(&format!("unknown node `{c}`")))?;
                if *label == "*" {
                    b.edge_any(src, dst);
                } else {
                    b.edge_str(src, dst, label);
                }
            }
            ["designate", x] => {
                let &px = names.get(*x).ok_or_else(|| malformed(&format!("unknown node `{x}`")))?;
                designated = Some((px, None));
            }
            ["designate", x, y] => {
                let &px = names.get(*x).ok_or_else(|| malformed(&format!("unknown node `{x}`")))?;
                let &py = names.get(*y).ok_or_else(|| malformed(&format!("unknown node `{y}`")))?;
                designated = Some((px, Some(py)));
            }
            _ => return Err(malformed("expected `node`, `edge` or `designate` record")),
        }
    }
    let b = match designated {
        Some((x, Some(y))) => b.designate(x, y),
        Some((x, None)) => b.designate_x(x),
        None => b,
    };
    b.build().map_err(PatternParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_1_antecedent() {
        let text = "\
node x cust
node x2 cust
node c city
node y french_restaurant
edge x x2 friend
edge x c live_in
edge x2 c live_in
edge x2 y visit
edge y c in
designate x y
";
        let vocab = Vocab::new();
        let p = parse_pattern(text, vocab.clone()).unwrap();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 5);
        assert_eq!(p.radius(), Some(2));
        let cust = vocab.get("cust").unwrap();
        assert_eq!(p.cond(p.x()).label(), Some(cust));
        assert!(p.y().is_some());
    }

    #[test]
    fn wildcards_parse() {
        let p = parse_pattern("node a *\nnode b thing\nedge a b *\n", Vocab::new()).unwrap();
        assert_eq!(p.cond(PNodeId(0)), crate::pattern::NodeCond::Any);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_pattern("node a x\nedge a zzz e\n", Vocab::new()).unwrap_err();
        assert!(matches!(err, PatternParseError::Malformed(2, _)), "{err}");
        let err = parse_pattern("bogus line\n", Vocab::new()).unwrap_err();
        assert!(matches!(err, PatternParseError::Malformed(1, _)));
        let err = parse_pattern("node a x\nnode a y\n", Vocab::new()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn empty_input_is_invalid() {
        let err = parse_pattern("# nothing\n", Vocab::new()).unwrap_err();
        assert!(matches!(err, PatternParseError::Invalid(PatternError::Empty)));
    }
}
