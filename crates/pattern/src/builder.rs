//! Ergonomic pattern construction, including the paper's `C(u) = k`
//! node-copy annotation.

use crate::pattern::{EdgeCond, NodeCond, PEdge, PNodeId, Pattern, PatternError};
use gpar_graph::{Label, Vocab};
use std::sync::Arc;

/// Builds a [`Pattern`].
///
/// The paper's succinct integer annotation (`C(u) = k` meaning "k copies of
/// `u` with the same label and links in the common neighborhood", e.g. the
/// *3 French restaurants* in `Q1`) is supported via [`PatternBuilder::node_copies`]:
/// the handle stands for all copies, and edges added to it are replicated.
///
/// ```
/// use gpar_pattern::PatternBuilder;
/// use gpar_graph::Vocab;
/// let vocab = Vocab::new();
/// let cust = vocab.intern("cust");
/// let fr = vocab.intern("french_restaurant");
/// let like = vocab.intern("like");
/// let mut b = PatternBuilder::new(vocab);
/// let x = b.node(cust);
/// let rests = b.node_copies(fr, 3);
/// b.edge_to_copies(x, &rests, like);
/// let q = b.designate_x(x).build().unwrap();
/// assert_eq!(q.node_count(), 4);
/// assert_eq!(q.edge_count(), 3);
/// ```
pub struct PatternBuilder {
    vocab: Arc<Vocab>,
    conds: Vec<NodeCond>,
    edges: Vec<PEdge>,
    x: Option<PNodeId>,
    y: Option<PNodeId>,
}

impl PatternBuilder {
    /// Creates a builder over a shared vocabulary.
    pub fn new(vocab: Arc<Vocab>) -> Self {
        Self { vocab, conds: Vec::new(), edges: Vec::new(), x: None, y: None }
    }

    /// The vocabulary this builder interns into.
    pub fn vocab(&self) -> &Arc<Vocab> {
        &self.vocab
    }

    /// Adds a node matching `label`.
    pub fn node(&mut self, label: Label) -> PNodeId {
        self.push(NodeCond::Label(label))
    }

    /// Adds a node from a label string (interning it).
    pub fn node_str(&mut self, label: &str) -> PNodeId {
        let l = self.vocab.intern(label);
        self.node(l)
    }

    /// Adds a wildcard node.
    pub fn node_any(&mut self) -> PNodeId {
        self.push(NodeCond::Any)
    }

    /// Adds `k` copies of a node with the same label (`C(u) = k`).
    pub fn node_copies(&mut self, label: Label, k: usize) -> Vec<PNodeId> {
        (0..k).map(|_| self.node(label)).collect()
    }

    fn push(&mut self, cond: NodeCond) -> PNodeId {
        let id = PNodeId(self.conds.len() as u32);
        self.conds.push(cond);
        id
    }

    /// Adds a directed edge with `label`.
    pub fn edge(&mut self, src: PNodeId, dst: PNodeId, label: Label) {
        self.edges.push(PEdge { src, dst, cond: EdgeCond::Label(label) });
    }

    /// Adds a directed edge from a label string.
    pub fn edge_str(&mut self, src: PNodeId, dst: PNodeId, label: &str) {
        let l = self.vocab.intern(label);
        self.edge(src, dst, l);
    }

    /// Adds a wildcard edge.
    pub fn edge_any(&mut self, src: PNodeId, dst: PNodeId) {
        self.edges.push(PEdge { src, dst, cond: EdgeCond::Any });
    }

    /// Adds an edge from `src` to *every* copy in `copies` (replicating the
    /// common-neighborhood links of the succinct representation).
    pub fn edge_to_copies(&mut self, src: PNodeId, copies: &[PNodeId], label: Label) {
        for &c in copies {
            self.edge(src, c, label);
        }
    }

    /// Adds an edge from *every* copy to `dst`.
    pub fn edge_from_copies(&mut self, copies: &[PNodeId], dst: PNodeId, label: Label) {
        for &c in copies {
            self.edge(c, dst, label);
        }
    }

    /// Designates both `x` and `y`.
    pub fn designate(mut self, x: PNodeId, y: PNodeId) -> Self {
        self.x = Some(x);
        self.y = Some(y);
        self
    }

    /// Designates only `x`.
    pub fn designate_x(mut self, x: PNodeId) -> Self {
        self.x = Some(x);
        self
    }

    /// Finalizes the pattern. Defaults `x` to the first node if never
    /// designated.
    pub fn build(self) -> Result<Pattern, PatternError> {
        let x = self.x.unwrap_or(PNodeId(0));
        Pattern::from_parts(self.conds, self.edges, x, self.y, self.vocab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_replicate_edges_both_directions() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let inn = vocab.intern("in");
        let city = vocab.intern("city");
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let c = b.node(city);
        let rs = b.node_copies(rest, 3);
        b.edge_to_copies(x, &rs, like);
        b.edge_from_copies(&rs, c, inn);
        let q = b.designate_x(x).build().unwrap();
        assert_eq!(q.node_count(), 5);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.out(x).len(), 3);
        assert_eq!(q.inn(c).len(), 3);
    }

    #[test]
    fn default_designation_is_first_node() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let mut b = PatternBuilder::new(vocab);
        let first = b.node(cust);
        b.node(cust);
        let q = b.build().unwrap();
        assert_eq!(q.x(), first);
        assert_eq!(q.y(), None);
    }

    #[test]
    fn designate_sets_both() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let shop = vocab.intern("shop");
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let y = b.node(shop);
        let q = b.designate(x, y).build().unwrap();
        assert_eq!(q.x(), x);
        assert_eq!(q.y(), Some(y));
    }

    #[test]
    fn wildcard_nodes_and_edges() {
        let vocab = Vocab::new();
        let mut b = PatternBuilder::new(vocab);
        let a = b.node_any();
        let c = b.node_str("thing");
        b.edge_any(a, c);
        let q = b.build().unwrap();
        assert_eq!(q.cond(a), NodeCond::Any);
        assert!(q.has_edge(a, c, EdgeCond::Any));
    }
}
