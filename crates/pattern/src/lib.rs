//! # gpar-pattern
//!
//! Graph pattern queries `Q = (V_p, E_p, f, C)` from §2.1 of *Fan et al.,
//! PVLDB 2015*: each pattern node / edge carries a search condition
//! (a label, possibly a value binding like `"44"`, or a wildcard), one node
//! `x` is *designated* (the "potential customer" position), and a second
//! designated node `y` marks the consequent's object. The integer
//! annotation `C(u) = k` denotes `k` copies of node `u` with the same label
//! and links (the paper's succinct representation, e.g. *3 French
//! restaurants*); the builder expands copies eagerly.
//!
//! Besides the data type this crate implements the structural machinery the
//! mining and matching algorithms need:
//!
//! * [`radius`] — `r(Q, x)` and connectivity (§2.1),
//! * [`subsume`] — pattern subsumption `Q' ⊑ Q` (anti-monotonicity),
//! * [`canonical`] — exact canonical codes for grouping automorphic
//!   patterns across workers,
//! * [`bisim`] — the bisimulation prefilter of Lemma 4,
//! * [`automorphism`] — exact pattern isomorphism with pinned designated
//!   nodes,
//! * [`sketch`] — pattern-side k-hop sketches for guided search (§5.2),
//! * [`parse`] — a small text DSL plus pretty-printing,
//! * [`codec`] — the compact binary pattern codec (shares primitives with
//!   `gpar_graph::io::bin`; used by `gpar-serve` catalogs).

pub mod automorphism;
pub mod bisim;
pub mod builder;
pub mod canonical;
pub mod codec;
pub mod parse;
pub mod pattern;
pub mod radius;
pub mod sketch;
pub mod subsume;

pub use automorphism::{are_isomorphic, count_automorphisms};
pub use bisim::bisimilar;
pub use builder::PatternBuilder;
pub use canonical::CanonicalCode;
pub use codec::{read_pattern_binary, write_pattern_binary, PATTERN_MAGIC};
pub use parse::{parse_pattern, PatternParseError};
pub use pattern::{EdgeCond, NodeCond, PEdge, PNodeId, Pattern, PatternError};
pub use sketch::pattern_sketch;
