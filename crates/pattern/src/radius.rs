//! Radius `r(Q, x)` and connectivity (§2.1 notations (1)–(2)).
//!
//! > For a pattern `Q` and a node `x` in `Q`, the radius of `Q` at `x` is
//! > the longest distance from `x` to all nodes in `Q` when `Q` is treated
//! > as an undirected graph.

use crate::pattern::{PNodeId, Pattern};
use std::collections::VecDeque;

impl Pattern {
    /// Undirected BFS distances from `from`; `None` for unreachable nodes.
    pub fn undirected_distances(&self, from: PNodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.node_count()];
        dist[from.index()] = Some(0);
        let mut q = VecDeque::new();
        q.push_back(from);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()].unwrap();
            for &(v, _) in self.out(u).iter().chain(self.inn(u)) {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    q.push_back(v);
                }
            }
        }
        dist
    }

    /// `r(Q, x)` — the eccentricity of `x` in the undirected view of the
    /// pattern. Returns `None` if some node is unreachable from `x`
    /// (disconnected patterns have unbounded radius).
    pub fn radius_at(&self, x: PNodeId) -> Option<u32> {
        let dist = self.undirected_distances(x);
        let mut r = 0;
        for d in dist {
            r = r.max(d?);
        }
        Some(r)
    }

    /// Radius at the designated node `x`.
    pub fn radius(&self) -> Option<u32> {
        self.radius_at(self.x())
    }

    /// Whether the pattern is connected (undirected path between every pair
    /// of nodes). A single node is connected.
    pub fn is_connected(&self) -> bool {
        self.radius_at(PNodeId(0)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PatternBuilder;
    use gpar_graph::Vocab;

    #[test]
    fn radius_of_a_path_is_its_length_from_one_end() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let a = b.node(n);
        let c = b.node(n);
        let d = b.node(n);
        b.edge(a, c, e);
        b.edge(d, c, e); // direction must not matter
        let q = b.designate_x(a).build().unwrap();
        assert_eq!(q.radius(), Some(2));
        assert_eq!(q.radius_at(c), Some(1));
        assert!(q.is_connected());
    }

    #[test]
    fn disconnected_pattern_has_no_radius() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let mut b = PatternBuilder::new(vocab);
        let a = b.node(n);
        b.node(n); // isolated
        let q = b.designate_x(a).build().unwrap();
        assert_eq!(q.radius(), None);
        assert!(!q.is_connected());
    }

    #[test]
    fn single_node_has_radius_zero() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let mut b = PatternBuilder::new(vocab);
        let a = b.node(n);
        let q = b.designate_x(a).build().unwrap();
        assert_eq!(q.radius(), Some(0));
        assert!(q.is_connected());
    }
}
