//! Bisimulation prefilter for automorphism grouping (Lemma 4).
//!
//! > **Lemma 4.** If graph pattern `P_R1` is not bisimilar to `P_R2`, then
//! > `R1` is not an automorphism of `R2`.
//!
//! DMine therefore checks bisimilarity first (cheap, partition refinement)
//! and runs the exact automorphism test only on bisimilar pairs. We refine
//! on both out- and in-signatures; automorphisms preserve both, so the
//! lemma's soundness (automorphic ⇒ bisimilar) is kept while the filter is
//! strictly stronger than the forward-only variant.

use crate::pattern::{EdgeCond, NodeCond, PNodeId, Pattern};
use rustc_hash::FxHashMap;

fn econd_key(c: EdgeCond) -> u64 {
    match c {
        EdgeCond::Any => u64::MAX,
        EdgeCond::Label(l) => l.0 as u64,
    }
}

fn cond_key(c: NodeCond) -> u64 {
    match c {
        NodeCond::Any => u64::MAX,
        NodeCond::Label(l) => l.0 as u64,
    }
}

/// Computes the coarsest bisimulation partition of the *disjoint union* of
/// `p1` and `p2`. Returns per-pattern block ids (block numbering shared
/// across both patterns).
fn joint_blocks(p1: &Pattern, p2: &Pattern) -> (Vec<u32>, Vec<u32>) {
    let n1 = p1.node_count();
    let n = n1 + p2.node_count();
    let cond_at = |i: usize| {
        if i < n1 {
            p1.cond(PNodeId(i as u32))
        } else {
            p2.cond(PNodeId((i - n1) as u32))
        }
    };
    // Initial partition: by node condition.
    let mut block = vec![0u32; n];
    {
        let mut ids: FxHashMap<u64, u32> = FxHashMap::default();
        for (i, b) in block.iter_mut().enumerate() {
            let k = cond_key(cond_at(i));
            let next = ids.len() as u32;
            *b = *ids.entry(k).or_insert(next);
        }
    }
    // Refinement: signature = (block, sorted out (label, block), sorted in
    // (label, block)); deduplicated — bisimulation compares *sets* of moves.
    loop {
        let mut sig_ids: FxHashMap<Vec<u64>, u32> = FxHashMap::default();
        let mut next = vec![0u32; n];
        let sig_of = |i: usize,
                      out: &[(PNodeId, EdgeCond)],
                      inn: &[(PNodeId, EdgeCond)],
                      off: usize,
                      block: &[u32]| {
            let mut sig = vec![block[i] as u64];
            let mut outs: Vec<u64> = out
                .iter()
                .map(|&(v, c)| (econd_key(c) << 32) | block[v.index() + off] as u64)
                .collect();
            outs.sort_unstable();
            outs.dedup();
            sig.push(u64::MAX - 1); // separator
            sig.extend(outs);
            let mut ins: Vec<u64> = inn
                .iter()
                .map(|&(v, c)| (econd_key(c) << 32) | block[v.index() + off] as u64)
                .collect();
            ins.sort_unstable();
            ins.dedup();
            sig.push(u64::MAX - 2);
            sig.extend(ins);
            sig
        };
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // i indexes two patterns' disjoint halves
        for i in 0..n {
            let sig = if i < n1 {
                let u = PNodeId(i as u32);
                sig_of(i, p1.out(u), p1.inn(u), 0, &block)
            } else {
                let u = PNodeId((i - n1) as u32);
                sig_of(i, p2.out(u), p2.inn(u), n1, &block)
            };
            let id = {
                let next_id = sig_ids.len() as u32;
                *sig_ids.entry(sig).or_insert(next_id)
            };
            next[i] = id;
        }
        for i in 0..n {
            if next[i] != block[i] {
                changed = true;
                break;
            }
        }
        block = next;
        if !changed {
            break;
        }
    }
    let b2 = block.split_off(n1);
    (block, b2)
}

/// Whether `p1` and `p2` are bisimilar in the sense of §4.2: every node of
/// each pattern is bisimilar to some node of the other, and the designated
/// nodes are pairwise bisimilar (`x₁ ~ x₂`, `y₁ ~ y₂`). The designated-node
/// requirement is sound for the Lemma-4 prefilter because automorphisms in
/// DMine pin `x` and `y`.
pub fn bisimilar(p1: &Pattern, p2: &Pattern) -> bool {
    let (b1, b2) = joint_blocks(p1, p2);
    // Designated nodes must share blocks.
    if b1[p1.x().index()] != b2[p2.x().index()] {
        return false;
    }
    match (p1.y(), p2.y()) {
        (Some(y1), Some(y2)) => {
            if b1[y1.index()] != b2[y2.index()] {
                return false;
            }
        }
        (None, None) => {}
        _ => return false,
    }
    // Mutual coverage of blocks.
    let s1: rustc_hash::FxHashSet<u32> = b1.iter().copied().collect();
    let s2: rustc_hash::FxHashSet<u32> = b2.iter().copied().collect();
    s1 == s2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::are_isomorphic;
    use crate::builder::PatternBuilder;
    use gpar_graph::Vocab;

    #[test]
    fn isomorphic_patterns_are_bisimilar() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let build = |swap: bool| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(cust);
            let (r1, r2) = (b.node(rest), b.node(rest));
            if swap {
                b.edge(x, r2, like);
                b.edge(x, r1, like);
            } else {
                b.edge(x, r1, like);
                b.edge(x, r2, like);
            }
            b.designate_x(x).build().unwrap()
        };
        let (p1, p2) = (build(false), build(true));
        assert!(are_isomorphic(&p1, &p2, true));
        assert!(bisimilar(&p1, &p2));
    }

    #[test]
    fn different_shapes_are_not_bisimilar() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let like = vocab.intern("like");
        // chain x -> a -> b   vs   star x -> a, x -> b
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        let c = b.node(cust);
        b.edge(x, a, like);
        b.edge(a, c, like);
        let chain = b.designate_x(x).build().unwrap();
        let mut b = PatternBuilder::new(vocab);
        let x2 = b.node(cust);
        let a2 = b.node(cust);
        let c2 = b.node(cust);
        b.edge(x2, a2, like);
        b.edge(x2, c2, like);
        let star = b.designate_x(x2).build().unwrap();
        assert!(!bisimilar(&chain, &star));
        assert!(!are_isomorphic(&chain, &star, true));
    }

    #[test]
    fn bisimilar_but_not_automorphic_exists() {
        // The classic case: k identical parallel branches are bisimilar to
        // one branch, but not isomorphic. Lemma 4 is one-directional.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let build = |k: usize| {
            let mut b = PatternBuilder::new(vocab.clone());
            let x = b.node(cust);
            let copies = b.node_copies(rest, k);
            b.edge_to_copies(x, &copies, like);
            b.designate_x(x).build().unwrap()
        };
        let (one, three) = (build(1), build(3));
        assert!(bisimilar(&one, &three));
        assert!(!are_isomorphic(&one, &three, true));
    }

    #[test]
    fn designated_nodes_must_align() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let like = vocab.intern("like");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, like);
        let p1 = b.designate_x(x).build().unwrap();
        let mut b = PatternBuilder::new(vocab);
        let x2 = b.node(cust);
        let a2 = b.node(cust);
        b.edge(x2, a2, like);
        let p2 = b.designate_x(a2).build().unwrap(); // x designated at sink
        assert!(!bisimilar(&p1, &p2));
    }
}
