//! A closeable blocking MPMC queue for long-lived worker pools.

use gpar_obs::Gauge;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// The shared task injector: producers [`Injector::push`] from any thread,
/// pool workers block in [`Injector::pop`] until a task arrives or the
/// injector is closed and drained. This is the serving engine's job
/// queue — one injector replaces the old mutex-wrapped mpsc receiver, and
/// any worker, not just the lock holder, can grab the next task.
///
/// Uses `std::sync::{Mutex, Condvar}` directly (the `parking_lot` shim has
/// no condvar); a poisoned lock propagates the original panic, matching
/// the pool's panic semantics.
pub struct Injector<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    depth: Option<Gauge>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty, open injector.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State { queue: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
            depth: None,
        }
    }

    /// An injector that mirrors its queue depth into `gauge` (typically
    /// one registered on the engine's metrics registry), so snapshots
    /// show the instantaneous backlog.
    pub fn with_depth_gauge(gauge: Gauge) -> Self {
        let mut inj = Self::new();
        inj.depth = Some(gauge);
        inj
    }

    /// Enqueues `item`, waking one blocked worker. Returns the item back
    /// if the injector is closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("injector lock");
        if s.closed {
            return Err(item);
        }
        s.queue.push_back(item);
        if let Some(g) = &self.depth {
            g.add(1);
        }
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the injector is open and
    /// empty. `None` means closed **and** drained — the pool worker's exit
    /// signal (items pushed before `close` are always delivered).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("injector lock");
        loop {
            if let Some(item) = s.queue.pop_front() {
                if let Some(g) = &self.depth {
                    g.sub(1);
                }
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s).expect("injector wait");
        }
    }

    /// Non-blocking dequeue.
    pub fn try_pop(&self) -> Option<T> {
        let item = self.state.lock().expect("injector lock").queue.pop_front();
        if item.is_some() {
            if let Some(g) = &self.depth {
                g.sub(1);
            }
        }
        item
    }

    /// Closes the injector: pending items still drain, future pushes fail,
    /// and every blocked worker wakes (to drain or exit).
    pub fn close(&self) {
        self.state.lock().expect("injector lock").closed = true;
        self.cv.notify_all();
    }

    /// Queued (undelivered) items.
    pub fn len(&self) -> usize {
        self.state.lock().expect("injector lock").queue.len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_close_semantics() {
        let inj = Injector::new();
        inj.push(1).unwrap();
        inj.push(2).unwrap();
        assert_eq!(inj.len(), 2);
        inj.close();
        assert_eq!(inj.push(3), Err(3), "push after close is rejected");
        // Items pushed before the close still drain, in order.
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.try_pop(), Some(2));
        assert_eq!(inj.pop(), None, "closed and drained");
        assert!(inj.is_empty());
    }

    #[test]
    fn depth_gauge_tracks_backlog() {
        let g = Gauge::new();
        let inj = Injector::with_depth_gauge(g.clone());
        inj.push(1).unwrap();
        inj.push(2).unwrap();
        assert_eq!(g.get(), 2);
        assert_eq!(inj.try_pop(), Some(1));
        assert_eq!(g.get(), 1);
        assert_eq!(inj.pop(), Some(2));
        assert_eq!(g.get(), 0);
        assert_eq!(inj.try_pop(), None);
        assert_eq!(g.get(), 0, "empty try_pop does not underflow");
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let inj: Arc<Injector<u32>> = Arc::new(Injector::new());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Some(x) = inj.pop() {
                        got += x;
                    }
                    got
                })
            })
            .collect();
        for i in 0..50 {
            inj.push(i).unwrap();
        }
        inj.close();
        let total: u32 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert_eq!(total, (0..50).sum::<u32>(), "every task delivered exactly once");
    }
}
