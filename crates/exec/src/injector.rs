//! A closeable, optionally bounded, two-lane blocking MPMC queue for
//! long-lived worker pools.

use gpar_obs::Gauge;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;

/// Admission priority. The injector keeps one lane per priority; workers
/// always drain [`Priority::High`] first, and each lane is bounded by the
/// capacity *separately*, so a flood of normal-lane work can never
/// consume the high lane's admission slots (the serving engine routes
/// cold-predicate warm-ups high so a Zipf hot-key flood can't starve
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Popped before any normal-priority item; FIFO within the lane.
    High,
    /// The default lane.
    #[default]
    Normal,
}

/// Why a push was rejected. Both variants hand the item back so callers
/// can fail it explicitly instead of leaking it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The injector is closed.
    Closed(T),
    /// The item's lane was at capacity; `depth` is the total backlog
    /// (both lanes) observed at rejection time.
    Full {
        /// The rejected item.
        item: T,
        /// Total queued items at the moment of rejection.
        depth: usize,
    },
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_item(self) -> T {
        match self {
            PushError::Closed(item) | PushError::Full { item, .. } => item,
        }
    }
}

/// Outcome of a deadline-bounded dequeue ([`Injector::pop_until`]).
#[derive(Debug, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item arrived before the deadline.
    Item(T),
    /// The deadline passed with the injector open and empty.
    TimedOut,
    /// The injector is closed and drained.
    Closed,
}

struct State<T> {
    high: VecDeque<T>,
    normal: VecDeque<T>,
    closed: bool,
}

impl<T> State<T> {
    fn len(&self) -> usize {
        self.high.len() + self.normal.len()
    }
}

/// The shared task injector: producers [`Injector::push`] from any thread,
/// pool workers block in [`Injector::pop`] until a task arrives or the
/// injector is closed and drained. This is the serving engine's job
/// queue — one injector replaces the old mutex-wrapped mpsc receiver, and
/// any worker, not just the lock holder, can grab the next task.
///
/// With a non-zero capacity ([`Injector::with_capacity`]) the injector is
/// also the engine's admission controller: pushes into a full lane are
/// rejected with [`PushError::Full`] instead of growing the backlog
/// without bound.
///
/// Built on the `parking_lot` shim's non-poisoning `Mutex`/`Condvar`: a
/// worker that panicked while holding the lock cannot wedge every later
/// push/pop behind a `PoisonError` (and under the shim's `model` feature
/// the whole queue protocol runs on the deterministic model checker's
/// instrumented primitives — see `gpar-model-tests`).
pub struct Injector<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    depth: Option<Gauge>,
    /// Per-lane admission bound; 0 = unbounded.
    capacity: usize,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty, open, unbounded injector.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            depth: None,
            capacity: 0,
        }
    }

    /// An injector that mirrors its queue depth into `gauge` (typically
    /// one registered on the engine's metrics registry), so snapshots
    /// show the instantaneous backlog.
    pub fn with_depth_gauge(gauge: Gauge) -> Self {
        let mut inj = Self::new();
        inj.depth = Some(gauge);
        inj
    }

    /// Bounds each lane at `capacity` queued items (0 = unbounded).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Enqueues `item` on the normal lane, waking one blocked worker.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_with(item, Priority::Normal)
    }

    /// Enqueues `item` on `prio`'s lane, waking one blocked worker.
    /// Fails with [`PushError::Closed`] after [`Injector::close`], or
    /// [`PushError::Full`] when the lane is at capacity.
    pub fn push_with(&self, item: T, prio: Priority) -> Result<(), PushError<T>> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        let lane_len = match prio {
            Priority::High => s.high.len(),
            Priority::Normal => s.normal.len(),
        };
        if self.capacity != 0 && lane_len >= self.capacity {
            let depth = s.len();
            return Err(PushError::Full { item, depth });
        }
        match prio {
            Priority::High => s.high.push_back(item),
            Priority::Normal => s.normal.push_back(item),
        }
        if let Some(g) = &self.depth {
            g.add(1);
        }
        drop(s);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues the next item (high lane first), blocking while the
    /// injector is open and empty. `None` means closed **and** drained —
    /// the pool worker's exit signal (items pushed before `close` are
    /// always delivered).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        loop {
            if let Some(item) = s.high.pop_front().or_else(|| s.normal.pop_front()) {
                if let Some(g) = &self.depth {
                    g.sub(1);
                }
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.cv.wait(s);
        }
    }

    /// Dequeues the next item, blocking at most until `deadline`.
    /// Distinguishes "nothing arrived in time" from "closed and
    /// drained", which a writer pipeline's coalescing window needs: a
    /// timeout closes the batching window, a close drains the pipeline.
    pub fn pop_until(&self, deadline: std::time::Instant) -> PopTimeout<T> {
        let mut s = self.state.lock();
        loop {
            if let Some(item) = s.high.pop_front().or_else(|| s.normal.pop_front()) {
                if let Some(g) = &self.depth {
                    g.sub(1);
                }
                return PopTimeout::Item(item);
            }
            if s.closed {
                return PopTimeout::Closed;
            }
            let Some(wait) = deadline.checked_duration_since(gpar_obs::Ts::monotonic_now()) else {
                return PopTimeout::TimedOut;
            };
            let (guard, timeout) = self.cv.wait_for(s, wait);
            s = guard;
            if timeout.timed_out() && s.high.is_empty() && s.normal.is_empty() && !s.closed {
                return PopTimeout::TimedOut;
            }
        }
    }

    /// Non-blocking dequeue (high lane first).
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.state.lock();
        let item = s.high.pop_front().or_else(|| s.normal.pop_front());
        if item.is_some() {
            if let Some(g) = &self.depth {
                g.sub(1);
            }
        }
        item
    }

    /// Closes the injector: pending items still drain, future pushes fail,
    /// and every blocked worker wakes (to drain or exit).
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }

    /// Atomically closes the injector **and** removes every queued item,
    /// returning them (high lane first, FIFO within lanes) so the caller
    /// can fail each one explicitly. Blocked workers wake and exit;
    /// nothing queued at the moment of the call will ever reach a worker.
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut s = self.state.lock();
        let st = &mut *s;
        st.closed = true;
        let drained: Vec<T> = st.high.drain(..).chain(st.normal.drain(..)).collect();
        if let Some(g) = &self.depth {
            g.sub(drained.len() as i64);
        }
        drop(s);
        self.cv.notify_all();
        drained
    }

    /// Queued (undelivered) items across both lanes.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_and_close_semantics() {
        let inj = Injector::new();
        inj.push(1).unwrap();
        inj.push(2).unwrap();
        assert_eq!(inj.len(), 2);
        inj.close();
        assert_eq!(inj.push(3), Err(PushError::Closed(3)), "push after close is rejected");
        // Items pushed before the close still drain, in order.
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.try_pop(), Some(2));
        assert_eq!(inj.pop(), None, "closed and drained");
        assert!(inj.is_empty());
    }

    #[test]
    fn depth_gauge_tracks_backlog() {
        let g = Gauge::new();
        let inj = Injector::with_depth_gauge(g.clone());
        inj.push(1).unwrap();
        inj.push(2).unwrap();
        assert_eq!(g.get(), 2);
        assert_eq!(inj.try_pop(), Some(1));
        assert_eq!(g.get(), 1);
        assert_eq!(inj.pop(), Some(2));
        assert_eq!(g.get(), 0);
        assert_eq!(inj.try_pop(), None);
        assert_eq!(g.get(), 0, "empty try_pop does not underflow");
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let inj: Arc<Injector<u32>> = Arc::new(Injector::new());
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    let mut got = 0u32;
                    while let Some(x) = inj.pop() {
                        got += x;
                    }
                    got
                })
            })
            .collect();
        for i in 0..50 {
            inj.push(i).unwrap();
        }
        inj.close();
        let total: u32 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
        assert_eq!(total, (0..50).sum::<u32>(), "every task delivered exactly once");
    }

    #[test]
    fn high_lane_jumps_the_queue() {
        let inj = Injector::new();
        inj.push_with(10, Priority::Normal).unwrap();
        inj.push_with(11, Priority::Normal).unwrap();
        inj.push_with(99, Priority::High).unwrap();
        assert_eq!(inj.pop(), Some(99), "high lane drains first");
        assert_eq!(inj.pop(), Some(10));
        assert_eq!(inj.pop(), Some(11));
    }

    #[test]
    fn capacity_bounds_each_lane_separately() {
        let g = Gauge::new();
        let inj = Injector::with_depth_gauge(g.clone()).with_capacity(2);
        inj.push(1).unwrap();
        inj.push(2).unwrap();
        assert_eq!(
            inj.push(3),
            Err(PushError::Full { item: 3, depth: 2 }),
            "normal lane at capacity sheds with the observed depth"
        );
        // A full normal lane does not consume high-lane slots.
        inj.push_with(90, Priority::High).unwrap();
        inj.push_with(91, Priority::High).unwrap();
        assert_eq!(inj.push_with(92, Priority::High), Err(PushError::Full { item: 92, depth: 4 }));
        assert_eq!(g.get(), 4, "rejected pushes never touch the depth gauge");
        assert_eq!(PushError::Full { item: 92, depth: 4 }.into_item(), 92);
        // Draining frees slots again.
        assert_eq!(inj.pop(), Some(90));
        inj.push_with(92, Priority::High).unwrap();
    }

    #[test]
    fn pop_until_distinguishes_timeout_from_close() {
        use std::time::{Duration, Instant};
        let inj = Injector::new();
        inj.push(7).unwrap();
        let deadline = Instant::now() + Duration::from_millis(50);
        assert_eq!(inj.pop_until(deadline), PopTimeout::Item(7), "queued item pops immediately");
        let t0 = Instant::now();
        assert_eq!(inj.pop_until(t0 + Duration::from_millis(20)), PopTimeout::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(20), "timeout waits the window out");
        // An item arriving mid-wait is delivered.
        let inj: Arc<Injector<u32>> = Arc::new(Injector::new());
        let pusher = {
            let inj = inj.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                inj.push(8).unwrap();
            })
        };
        assert_eq!(
            inj.pop_until(Instant::now() + Duration::from_secs(10)),
            PopTimeout::Item(8),
            "arrival during the wait is delivered, not timed out"
        );
        pusher.join().unwrap();
        inj.close();
        assert_eq!(
            inj.pop_until(Instant::now() + Duration::from_millis(5)),
            PopTimeout::Closed,
            "closed and drained beats the deadline"
        );
    }

    #[test]
    fn high_lane_is_never_starved_by_a_full_normal_lane() {
        // Fairness under pressure: producers keep the bounded normal lane
        // pinned at capacity while a trickle of high-priority items flows
        // in. Every high item must still be delivered promptly — the
        // normal backlog can delay them only by whatever single pop is in
        // flight, never starve them.
        use std::time::{Duration, Instant};
        let inj: Arc<Injector<(Priority, u32)>> = Arc::new(Injector::new().with_capacity(4));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

        // Two producers hammer the normal lane; Full rejections are the
        // admission controller doing its job and are expected here.
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let inj = inj.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut n = 0;
                    while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                        let _ = inj.push_with((Priority::Normal, n), Priority::Normal);
                        n += 1;
                    }
                })
            })
            .collect();

        // One consumer drains whatever comes out and records high-lane
        // deliveries; it never idles, so the normal lane stays busy.
        let seen_high = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let consumer = {
            let inj = inj.clone();
            let seen_high = seen_high.clone();
            std::thread::spawn(move || {
                while let Some((prio, _)) = inj.pop() {
                    if prio == Priority::High {
                        seen_high.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    }
                }
            })
        };

        const HIGH_ITEMS: usize = 64;
        let deadline = Instant::now() + Duration::from_secs(30);
        for i in 0..HIGH_ITEMS {
            // Retry on Full: the high lane itself is bounded too, but the
            // consumer drains it first, so a slot frees up quickly.
            loop {
                match inj.push_with((Priority::High, i as u32), Priority::High) {
                    Ok(()) => break,
                    Err(PushError::Full { .. }) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("injector not closed yet"),
                }
            }
            // Each high item must clear the queue while normal pressure
            // continues — wait for the delivery count to catch up.
            while seen_high.load(std::sync::atomic::Ordering::SeqCst) <= i {
                assert!(
                    Instant::now() < deadline,
                    "high-lane item {i} starved behind the normal backlog"
                );
                std::thread::yield_now();
            }
        }

        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        for p in producers {
            p.join().expect("producer");
        }
        inj.close();
        consumer.join().expect("consumer");
        assert_eq!(
            seen_high.load(std::sync::atomic::Ordering::SeqCst),
            HIGH_ITEMS,
            "every high-priority item delivered exactly once"
        );
    }

    #[test]
    fn close_and_drain_returns_everything_queued() {
        let g = Gauge::new();
        let inj = Injector::with_depth_gauge(g.clone());
        inj.push_with(1, Priority::Normal).unwrap();
        inj.push_with(2, Priority::High).unwrap();
        inj.push_with(3, Priority::Normal).unwrap();
        let drained = inj.close_and_drain();
        assert_eq!(drained, vec![2, 1, 3], "high lane first, FIFO within lanes");
        assert_eq!(g.get(), 0, "drained items leave the depth gauge");
        assert_eq!(inj.pop(), None, "closed and empty after drain");
        assert_eq!(inj.push(4), Err(PushError::Closed(4)));
    }
}
