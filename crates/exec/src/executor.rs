//! Scoped fork-join over indexed tasks with per-worker deques + stealing.

use crate::thread_cpu_time;
use gpar_obs::{Counter, HistKind, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Execution report for one [`Executor::map_indexed`] call.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Per-worker thread-CPU busy time (real threads). On an idle
    /// multi-core host this converges to
    /// [`ExecStats::virtual_worker_times`]; on an oversubscribed or
    /// single-core host it mostly reflects which thread the OS happened to
    /// schedule (that thread drains the queue), so derived metrics — skew,
    /// critical paths — should use the virtual profile instead.
    pub worker_times: Vec<Duration>,
    /// Thread-CPU cost of every task, in task-index order. The
    /// scheduling-independent ground truth the virtual profiles are
    /// derived from.
    pub task_times: Vec<Duration>,
    /// Tasks each worker executed (own + stolen).
    pub tasks_run: Vec<usize>,
    /// Successful steal operations across the whole call.
    pub steals: u64,
    /// Whether the call ran inline on the caller thread (single-worker
    /// executor or ≤ 1 task) — its busy time is then part of the caller's
    /// own CPU time, and coordinator-time accounting must not count it
    /// twice.
    pub inline: bool,
}

impl ExecStats {
    /// `max/min` over a per-worker busy profile — 1.0 is perfectly even.
    /// `None` when any worker was fully idle (infinite skew) or the
    /// profile is empty.
    pub fn skew_ratio(times: &[Duration]) -> Option<f64> {
        let max = times.iter().max()?.as_secs_f64();
        let min = times.iter().min()?.as_secs_f64();
        (min > 0.0).then(|| max / min)
    }

    /// Greedy list-schedule of the measured per-task costs onto `n`
    /// virtual processors: tasks in index order, each to the
    /// least-loaded processor. This is the deterministic,
    /// hardware-independent per-worker busy profile — what the
    /// work-stealing pool achieves on an idle `n`-core host — and the
    /// input to simulated cluster times and skew reports. (Real
    /// `worker_times` measure the same work but attribute it by OS
    /// scheduling accident when cores are scarce.)
    pub fn virtual_worker_times(&self, n: usize) -> Vec<Duration> {
        let n = n.max(1);
        let mut vw = vec![Duration::ZERO; n];
        for &t in &self.task_times {
            let min =
                vw.iter().enumerate().min_by_key(|&(_, d)| *d).map(|(i, _)| i).expect("n >= 1");
            vw[min] += t;
        }
        vw
    }

    /// Sums another call's per-worker times into this one (elementwise,
    /// padding with zeros) and concatenates its task times, accumulating
    /// a whole round's phases into one report. Note the concatenated
    /// `task_times` model no barrier between the calls — callers that
    /// need barrier semantics (BSP phases) should compute
    /// [`ExecStats::virtual_worker_times`] per call and sum the profiles.
    pub fn absorb(&mut self, other: &ExecStats) {
        if self.worker_times.len() < other.worker_times.len() {
            self.worker_times.resize(other.worker_times.len(), Duration::ZERO);
            self.tasks_run.resize(other.tasks_run.len(), 0);
        }
        for (a, b) in self.worker_times.iter_mut().zip(&other.worker_times) {
            *a += *b;
        }
        for (a, b) in self.tasks_run.iter_mut().zip(&other.tasks_run) {
            *a += *b;
        }
        self.task_times.extend_from_slice(&other.task_times);
        self.steals += other.steals;
    }
}

/// The work-stealing fork-join executor. Cheap to construct (it holds the
/// worker count plus an optional metrics handle); threads are scoped to
/// each call, so task closures may borrow the caller's data freely.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    obs: Option<Arc<MetricsRegistry>>,
}

impl Executor {
    /// An executor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1), obs: None }
    }

    /// Attaches a metrics registry: every `map_indexed` call then records
    /// per-task run time into [`HistKind::ExecTask`] and bumps
    /// [`Counter::ExecTasks`] / [`Counter::ExecSteals`], sharded by the
    /// executing worker's index.
    pub fn with_obs(mut self, reg: Arc<MetricsRegistry>) -> Self {
        self.obs = Some(reg);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Reports one call's stats into the attached registry (no-op when
    /// detached). Task times land in the [`HistKind::ExecTask`]
    /// histogram on the recording worker's shard.
    fn observe(&self, stats: &ExecStats) {
        let Some(reg) = &self.obs else { return };
        reg.add(0, Counter::ExecTasks, stats.task_times.len() as u64);
        reg.add(0, Counter::ExecSteals, stats.steals);
        for &t in &stats.task_times {
            reg.record(0, HistKind::ExecTask, t);
        }
    }

    /// Runs `tasks` indexed tasks across the pool and returns their
    /// outputs **in task-index order** (the deterministic-reduction rule:
    /// callers folding the result observe a merge order independent of the
    /// steal interleaving and of the worker count).
    ///
    /// `init(w)` builds worker `w`'s context *on the worker thread* — it
    /// may hold `!Send` state (`SharedScratch`, `PatternSketchCache`) that
    /// every task the worker runs, stolen or not, then reuses. `run(ctx,
    /// i)` executes task `i`.
    ///
    /// Tasks are seeded to the per-worker deques in contiguous blocks (for
    /// locality); a worker that drains its own deque steals the back half
    /// of a victim's. A single-worker executor (or a 0/1-task call) runs
    /// inline on the caller thread with no spawns at all.
    pub fn map_indexed<T, C>(
        &self,
        tasks: usize,
        init: impl Fn(usize) -> C + Sync,
        run: impl Fn(&mut C, usize) -> T + Sync,
    ) -> (Vec<T>, ExecStats)
    where
        T: Send,
    {
        if self.workers == 1 || tasks <= 1 {
            let t0 = thread_cpu_time();
            let mut ctx = init(0);
            let mut task_times = Vec::with_capacity(tasks);
            let out: Vec<T> = (0..tasks)
                .map(|i| {
                    let c0 = thread_cpu_time();
                    // Delay-only failpoint: executor workers are joined
                    // with a panic-propagating expect, so tasks must
                    // never be made to unwind by fault injection.
                    gpar_chaos::delaypoint("exec::task");
                    let v = run(&mut ctx, i);
                    task_times.push(thread_cpu_time().saturating_sub(c0));
                    v
                })
                .collect();
            let stats = ExecStats {
                worker_times: vec![thread_cpu_time().saturating_sub(t0)],
                task_times,
                tasks_run: vec![tasks],
                steals: 0,
                inline: true,
            };
            self.observe(&stats);
            return (out, stats);
        }
        let n = self.workers.min(tasks);
        let queues = StealQueues::new(n, tasks);
        type WorkerOut<T> = (Vec<(u32, T, Duration)>, Duration, u64);
        let per_worker: Vec<WorkerOut<T>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|w| {
                    let queues = &queues;
                    let init = &init;
                    let run = &run;
                    scope.spawn(move |_| {
                        let t0 = thread_cpu_time();
                        let mut ctx = init(w);
                        let mut out: Vec<(u32, T, Duration)> = Vec::new();
                        let mut steals = 0u64;
                        while let Some(i) = queues.next(w, &mut steals) {
                            let c0 = thread_cpu_time();
                            gpar_chaos::delaypoint("exec::task");
                            let v = run(&mut ctx, i);
                            out.push((i as u32, v, thread_cpu_time().saturating_sub(c0)));
                        }
                        (out, thread_cpu_time().saturating_sub(t0), steals)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("executor worker panicked")).collect()
        })
        .expect("executor scope");

        let mut slots: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
        let mut stats = ExecStats {
            worker_times: Vec::with_capacity(n),
            task_times: vec![Duration::ZERO; tasks],
            tasks_run: Vec::with_capacity(n),
            steals: 0,
            inline: false,
        };
        for (items, busy, steals) in per_worker {
            stats.worker_times.push(busy);
            stats.tasks_run.push(items.len());
            stats.steals += steals;
            for (i, v, dt) in items {
                debug_assert!(slots[i as usize].is_none(), "task executed twice");
                slots[i as usize] = Some(v);
                stats.task_times[i as usize] = dt;
            }
        }
        let out = slots.into_iter().map(|s| s.expect("every task executes exactly once")).collect();
        self.observe(&stats);
        (out, stats)
    }
}

/// Per-worker task deques. Tasks never spawn tasks here (fork-join calls
/// nest by calling [`Executor::map_indexed`] again), but "every deque
/// empty" alone is NOT a stable exit condition: a thief holds its
/// stolen batch privately between `split_off` and the re-deposit, so a
/// scanner can see all deques empty while unclaimed work is in flight.
/// The `claimed` counter closes that window — a worker exits only once
/// every task has been claimed for execution.
struct StealQueues {
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Tasks handed out for execution so far; `claimed == total` means
    /// no unclaimed task exists anywhere (queued or in a thief's hands).
    claimed: AtomicUsize,
    total: usize,
}

impl StealQueues {
    /// Seeds `workers` deques with `0..tasks` in contiguous blocks.
    fn new(workers: usize, tasks: usize) -> Self {
        let base = tasks / workers;
        let extra = tasks % workers;
        let mut start = 0usize;
        let deques = (0..workers)
            .map(|w| {
                let len = base + usize::from(w < extra);
                let q: VecDeque<usize> = (start..start + len).collect();
                start += len;
                Mutex::new(q)
            })
            .collect();
        Self { deques, claimed: AtomicUsize::new(0), total: tasks }
    }

    /// The next task for worker `w`: its own deque's front, else the back
    /// half of the first non-empty victim (scanning ring-order from
    /// `w + 1`). `None` means global exhaustion (every task claimed) —
    /// a fruitless scan while unclaimed work is still in a thief's hands
    /// yields and retries instead of exiting early, so the tail of a call
    /// never silently serializes onto one worker.
    fn next(&self, w: usize, steals: &mut u64) -> Option<usize> {
        loop {
            if let Some(i) = self.deques[w].lock().pop_front() {
                self.claimed.fetch_add(1, Ordering::SeqCst);
                return Some(i);
            }
            let n = self.deques.len();
            for off in 1..n {
                let victim = (w + off) % n;
                let mut q = self.deques[victim].lock();
                let len = q.len();
                if len == 0 {
                    continue;
                }
                // Take the back half; the victim keeps draining its front.
                let mut grabbed = q.split_off(len - len.div_ceil(2));
                drop(q);
                *steals += 1;
                let first = grabbed.pop_front().expect("stole a non-empty run");
                self.claimed.fetch_add(1, Ordering::SeqCst);
                if !grabbed.is_empty() {
                    self.deques[w].lock().extend(grabbed);
                }
                return Some(first);
            }
            if self.claimed.load(Ordering::SeqCst) >= self.total {
                return None;
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1, 2, 3, 8] {
            for tasks in [0, 1, 2, 7, 64] {
                let ex = Executor::new(workers);
                let (out, stats) = ex.map_indexed(tasks, |_| (), |_, i| i * 10);
                assert_eq!(out, (0..tasks).map(|i| i * 10).collect::<Vec<_>>());
                assert_eq!(stats.tasks_run.iter().sum::<usize>(), tasks);
                assert!(stats.worker_times.len() <= workers.max(1));
            }
        }
    }

    #[test]
    fn contexts_are_per_worker_and_reused_across_tasks() {
        let created = AtomicUsize::new(0);
        let ex = Executor::new(4);
        // Each context counts the tasks it served; totals must add up and
        // no more contexts than workers may exist.
        let (out, _) = ex.map_indexed(
            100,
            |_w| {
                created.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |c, _i| {
                *c += 1;
                *c
            },
        );
        assert!(created.load(Ordering::SeqCst) <= 4);
        // The last task a context runs returns its total; every task ran.
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn skewed_tasks_are_stolen() {
        // One task is ~100x the others; static splits would serialize
        // behind it. We only assert completeness + bookkeeping here (steal
        // counts depend on scheduling), determinism is covered above.
        let ex = Executor::new(4);
        let (out, stats) = ex.map_indexed(
            32,
            |_| (),
            |_, i| {
                let spins = if i == 0 { 2_000_000u64 } else { 20_000 };
                let mut x = 0u64;
                for k in 0..spins {
                    x = x.wrapping_add(k ^ i as u64);
                }
                std::hint::black_box(x);
                i
            },
        );
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        assert_eq!(stats.tasks_run.iter().sum::<usize>(), 32);
    }

    #[test]
    fn attached_registry_counts_tasks_and_steals() {
        let reg = std::sync::Arc::new(MetricsRegistry::new(4));
        let ex = Executor::new(4).with_obs(reg.clone());
        let (_, stats) = ex.map_indexed(64, |_| (), |_, i| i);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::ExecTasks), 64);
        assert_eq!(snap.counter(Counter::ExecSteals), stats.steals);
        if !cfg!(feature = "obs-off") {
            assert_eq!(snap.hist(HistKind::ExecTask).count(), 64);
        }
        // The inline path reports too.
        let ex1 = Executor::new(1).with_obs(reg.clone());
        ex1.map_indexed(3, |_| (), |_, i| i);
        assert_eq!(reg.snapshot().counter(Counter::ExecTasks), 67);
    }

    #[test]
    fn absorb_accumulates_phases() {
        let mut a = ExecStats {
            worker_times: vec![Duration::from_millis(2)],
            tasks_run: vec![3],
            steals: 1,
            ..ExecStats::default()
        };
        let b = ExecStats {
            worker_times: vec![Duration::from_millis(1), Duration::from_millis(4)],
            tasks_run: vec![1, 2],
            steals: 2,
            ..ExecStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.worker_times, vec![Duration::from_millis(3), Duration::from_millis(4)]);
        assert_eq!(a.tasks_run, vec![4, 2]);
        assert_eq!(a.steals, 3);
    }

    #[test]
    fn skew_ratio_handles_idle_workers() {
        let ms = Duration::from_millis;
        assert_eq!(ExecStats::skew_ratio(&[ms(5), ms(5)]), Some(1.0));
        assert_eq!(ExecStats::skew_ratio(&[Duration::ZERO, ms(5)]), None);
        assert_eq!(ExecStats::skew_ratio(&[]), None);
    }

    #[test]
    fn virtual_schedule_balances_skewed_task_costs() {
        let ms = Duration::from_millis;
        // One 6ms task plus six 1ms tasks on 2 virtual processors: greedy
        // list scheduling puts the straggler alone (6ms) and the rest
        // together (6ms) — perfectly even. A static half/half index split
        // would have been 9ms vs 3ms.
        let stats = ExecStats {
            task_times: vec![ms(6), ms(1), ms(1), ms(1), ms(1), ms(1), ms(1)],
            ..ExecStats::default()
        };
        let vw = stats.virtual_worker_times(2);
        assert_eq!(vw, vec![ms(6), ms(6)]);
        assert_eq!(ExecStats::skew_ratio(&vw), Some(1.0));
        // n = 1 degenerates to the serial total.
        assert_eq!(stats.virtual_worker_times(1), vec![ms(12)]);
    }
}
