//! The shared work-stealing execution runtime (mining, EIP and serving).
//!
//! The paper's parallel-scalability argument (§4.1) assumes work divides
//! evenly across processors; in practice per-site matching cost is wildly
//! skewed (hub centers cost orders of magnitude more than leaves), so any
//! *static* center-to-worker split leaves stragglers dominating the
//! critical path. This crate replaces the three hand-rolled threading
//! layers that used to live in `gpar-mine`, `gpar-eip` and `gpar-serve`
//! with one runtime:
//!
//! * [`Executor`] — scoped fork-join over an indexed task list, with
//!   per-worker deques and work stealing ([`Executor::map_indexed`]).
//!   Results come back in **task-index order**, so reductions are
//!   independent of the steal interleaving: any run, at any worker count,
//!   folds the same values in the same order.
//! * **Per-worker context slots** — each worker thread builds its own
//!   context (search arenas, pattern-sketch caches — deliberately `!Send`
//!   `Rc`-based state) via a factory called *on the worker thread*, and
//!   every task the worker executes, stolen or not, reuses it.
//! * [`Injector`] — a closeable multi-producer/multi-consumer queue for
//!   long-lived pools (the serving engine's workers all drain one shared
//!   injector instead of a mutex-wrapped mpsc receiver).
//!
//! All busy-time accounting uses the **thread-CPU clock**
//! ([`thread_cpu_time`]), never wall-clock, so per-worker skew reports and
//! the simulated cluster times built from them stay meaningful on
//! oversubscribed hosts.

mod executor;
mod injector;

pub use executor::{ExecStats, Executor};
pub use injector::{Injector, PopTimeout, Priority, PushError};

/// CPU time consumed by the calling thread (`CLOCK_THREAD_CPUTIME_ID`).
///
/// The same clock as `gpar_graph::thread_cpu_time`, duplicated here so the
/// runtime stays dependency-free below the graph layer.
pub fn thread_cpu_time() -> std::time::Duration {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime writes into the provided timespec.
    unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    std::time::Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
}

/// The worker-count override from the `GPAR_WORKERS` environment variable,
/// if set to a positive integer. The CI matrix uses this to run the whole
/// test suite at a different pool width without touching any test.
pub fn env_workers() -> Option<usize> {
    std::env::var("GPAR_WORKERS").ok()?.trim().parse().ok().filter(|&n| n > 0)
}

/// `fallback` unless [`env_workers`] overrides it — the default worker
/// count used by `DmineConfig`, `EipConfig` and `ServeConfig`.
pub fn default_workers(fallback: usize) -> usize {
    env_workers().unwrap_or(fallback)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_clock_is_monotonic() {
        let a = thread_cpu_time();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        assert!(thread_cpu_time() >= a);
    }

    #[test]
    fn default_workers_falls_back() {
        // The suite may legitimately run under GPAR_WORKERS (the CI matrix
        // leg); the fallback only applies when it is absent.
        match env_workers() {
            Some(n) => assert_eq!(default_workers(3), n),
            None => assert_eq!(default_workers(3), 3),
        }
    }
}
