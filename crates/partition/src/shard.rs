//! Node-space sharding for the serving layer (the fragment construction
//! of §4.2, promoted from mining rounds to long-lived serving shards).
//!
//! A [`ShardPlan`] splits the initial node id space into `n` contiguous
//! ranges balanced by adjacency load, and computes each shard's **d-ball
//! halo**: the nodes within undirected distance `d` of its owned range.
//! By the data locality of subgraph isomorphism, a rule of radius ≤ d at
//! center `v_x` only ever reads `G_d(v_x)`, so a shard that owns `v_x`
//! and can read its halo answers for `v_x` exactly — and a `GraphUpdate`
//! can only affect shard `i`'s answers if it touches `owned(i) ∪
//! halo(i)` ([`ShardPlan::routes_to`]).
//!
//! Nodes appended after the plan was built (live updates) are owned
//! round-robin by `id % n`, which keeps ownership a pure function of the
//! id so every shard and the scatter front agree without coordination.

use gpar_graph::{multi_source_distances, GraphView, NodeId};
use std::sync::Arc;

/// One shard's membership test: a pure function of the node id, shared
/// (via the plan's range bounds) by every shard and the routing front.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// This shard's index in `0..shards`.
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
    /// Start id of each shard's initial range (`bounds[0] == 0`,
    /// ascending); shard `i` owns `bounds[i]..bounds[i+1]` (the last
    /// shard up to `initial_n`).
    bounds: Arc<Vec<u32>>,
    /// Node id space size when the plan was built; ids at or above this
    /// are post-plan appends, owned by `id % shards`.
    initial_n: u32,
}

impl ShardSpec {
    /// The shard owning node `v`.
    pub fn owner_of(&self, v: NodeId) -> usize {
        if v.0 >= self.initial_n {
            (v.0 as usize) % self.shards
        } else {
            // partition_point > 0 because bounds[0] == 0 <= v.0.
            self.bounds.partition_point(|&b| b <= v.0) - 1
        }
    }

    /// Whether this shard owns node `v`.
    pub fn owns(&self, v: NodeId) -> bool {
        self.owner_of(v) == self.shard
    }
}

/// A full sharding of the node space: per-shard owned ranges, halos, and
/// load diagnostics. Built once against the initial graph; ownership of
/// later-appended ids is derived (`id % shards`), so the plan never needs
/// rebuilding while serving.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Shard count.
    pub shards: usize,
    /// Halo radius the plan was built for (the max catalog radius).
    pub d: u32,
    /// Node id space size at build time.
    pub initial_n: u32,
    bounds: Arc<Vec<u32>>,
    /// Per shard: nodes within distance `d` of the owned range but not
    /// owned (sorted by id). These are the nodes the shard must be able
    /// to read — but not answer for — to keep owned answers exact.
    halos: Vec<Vec<NodeId>>,
    /// Per shard: owned adjacency load (`Σ 1 + deg(v)` over owned live
    /// nodes), the balance target.
    loads: Vec<u64>,
}

impl ShardPlan {
    /// Plans `shards` contiguous ranges over `g`'s id space, balanced by
    /// undirected adjacency load, and extracts each range's radius-`d`
    /// halo with one multi-source BFS per shard.
    pub fn build<G: GraphView + ?Sized>(g: &G, d: u32, shards: usize) -> Self {
        let shards = shards.max(1);
        let n = g.node_count();
        // Load proxy per id slot: 1 + degree for live nodes, 1 for
        // removed slots (they still occupy id space).
        let mut slot_loads = vec![1u64; n];
        for v in g.nodes() {
            slot_loads[v.index()] = 1 + (g.out_view(v).len() + g.in_view(v).len()) as u64;
        }
        let ranges = crate::chunk_by_load(&slot_loads, shards);
        let mut bounds = vec![0u32; shards];
        let mut loads = vec![0u64; shards];
        // `chunk_by_load` may produce fewer ranges than requested on tiny
        // graphs; trailing shards then own empty ranges starting at `n`.
        for i in 0..shards {
            match ranges.get(i) {
                Some(r) => {
                    bounds[i] = r.start as u32;
                    loads[i] = slot_loads[r.clone()].iter().sum();
                }
                None => bounds[i] = n as u32,
            }
        }
        let halos = (0..shards)
            .map(|i| {
                let start = bounds[i];
                let end = if i + 1 < shards { bounds[i + 1] } else { n as u32 };
                let seeds: Vec<NodeId> = (start..end).map(NodeId).collect();
                let mut halo: Vec<NodeId> = multi_source_distances(g, &seeds, d)
                    .into_keys()
                    .filter(|v| v.0 < start || v.0 >= end)
                    .collect();
                halo.sort_unstable();
                halo
            })
            .collect();
        Self { shards, d, initial_n: n as u32, bounds: Arc::new(bounds), halos, loads }
    }

    /// The shard owning node `v`.
    pub fn owner_of(&self, v: NodeId) -> usize {
        self.spec(0).owner_of(v)
    }

    /// The membership test for shard `i` (cheaply cloneable; shares the
    /// plan's bounds).
    pub fn spec(&self, shard: usize) -> ShardSpec {
        debug_assert!(shard < self.shards);
        ShardSpec {
            shard,
            shards: self.shards,
            bounds: Arc::clone(&self.bounds),
            initial_n: self.initial_n,
        }
    }

    /// Shard `i`'s halo (sorted): in-range nodes within `d` of its owned
    /// range that it does not own.
    pub fn halo(&self, shard: usize) -> &[NodeId] {
        &self.halos[shard]
    }

    /// Shard `i`'s owned adjacency load at build time (balance
    /// diagnostic).
    pub fn load(&self, shard: usize) -> u64 {
        self.loads[shard]
    }

    /// Which shards an update touching `touched` can affect: shard `i`
    /// iff some touched node is owned by `i` or lies in `i`'s halo.
    /// Post-plan appends have no precomputed halo, so a batch touching
    /// one conservatively routes to every shard.
    pub fn routes_to(&self, touched: &[NodeId]) -> Vec<bool> {
        let mut out = vec![false; self.shards];
        for &t in touched {
            if t.0 >= self.initial_n {
                out.iter_mut().for_each(|b| *b = true);
                return out;
            }
            out[self.owner_of(t)] = true;
            for (i, halo) in self.halos.iter().enumerate() {
                if halo.binary_search(&t).is_ok() {
                    out[i] = true;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use std::sync::Arc;

    /// A path 0–1–2–…–9 (undirected reachability via alternating edge
    /// directions doesn't matter: halos use undirected BFS).
    fn path_graph(n: u32) -> Arc<gpar_graph::Graph> {
        let vocab = Vocab::new();
        let l = vocab.intern("v");
        let e = vocab.intern("e");
        let mut gb = GraphBuilder::new(vocab);
        for _ in 0..n {
            gb.add_node(l);
        }
        for i in 0..n - 1 {
            gb.add_edge(NodeId(i), NodeId(i + 1), e);
        }
        Arc::new(gb.build())
    }

    #[test]
    fn ownership_is_a_partition_of_the_id_space() {
        let g = path_graph(10);
        for shards in [1, 2, 3, 4, 8] {
            let plan = ShardPlan::build(&*g, 1, shards);
            for v in 0..10u32 {
                let owner = plan.owner_of(NodeId(v));
                assert!(owner < shards);
                let owning: Vec<usize> =
                    (0..shards).filter(|&i| plan.spec(i).owns(NodeId(v))).collect();
                assert_eq!(owning, vec![owner], "exactly one shard owns {v}");
            }
            // Appended ids are owned round-robin.
            for v in 10..30u32 {
                assert_eq!(plan.owner_of(NodeId(v)), v as usize % shards);
            }
        }
    }

    #[test]
    fn halo_holds_exactly_the_unowned_nodes_within_d() {
        let g = path_graph(10);
        for shards in [2, 3, 4] {
            for d in [1u32, 2, 3] {
                let plan = ShardPlan::build(&*g, d, shards);
                for i in 0..shards {
                    let spec = plan.spec(i);
                    let owned: Vec<NodeId> =
                        (0..10u32).map(NodeId).filter(|&v| spec.owns(v)).collect();
                    let dist = multi_source_distances(&*g, &owned, d);
                    let mut expect: Vec<NodeId> =
                        dist.into_keys().filter(|v| !spec.owns(*v)).collect();
                    expect.sort_unstable();
                    assert_eq!(plan.halo(i), &expect[..], "shard {i}/{shards} at d={d}");
                }
            }
        }
    }

    #[test]
    fn updates_route_to_owner_and_halo_shards() {
        let g = path_graph(10);
        let plan = ShardPlan::build(&*g, 2, 2);
        for v in 0..10u32 {
            let routed = plan.routes_to(&[NodeId(v)]);
            assert!(routed[plan.owner_of(NodeId(v))], "owner always routed");
            for (i, &hit) in routed.iter().enumerate() {
                let in_halo = plan.halo(i).binary_search(&NodeId(v)).is_ok();
                assert_eq!(hit, plan.spec(i).owns(NodeId(v)) || in_halo, "shard {i} for node {v}");
            }
        }
        // A post-plan append routes everywhere.
        assert_eq!(plan.routes_to(&[NodeId(10)]), vec![true, true]);
    }

    #[test]
    fn more_shards_than_nodes_leaves_trailing_shards_empty() {
        let g = path_graph(3);
        let plan = ShardPlan::build(&*g, 1, 8);
        let mut owners: Vec<usize> = (0..3u32).map(|v| plan.owner_of(NodeId(v))).collect();
        owners.dedup();
        assert!(owners.len() <= 3);
        for i in 0..8 {
            // Every owned set is disjoint and halos only name real nodes.
            for &h in plan.halo(i) {
                assert!(h.0 < 3);
            }
        }
    }
}
