//! Candidate-center-driven fragmentation.

use gpar_graph::{ball_with, extract_induced_with, Extracted, Graph, NeighborhoodScratch, NodeId};

/// How centers are assigned to fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Longest-processing-time bin packing on d-ball sizes: centers with
    /// the largest neighborhoods are placed first, each onto the currently
    /// lightest fragment. Approximates the paper's "roughly even size"
    /// requirement well on skewed social graphs.
    Balanced,
    /// Assign center `v` to fragment `v mod n`. Cheap but skew-prone on
    /// power-law graphs; kept as the ablation baseline.
    Hash,
}

/// One fragment `F_i`: a local induced subgraph that contains the d-ball
/// of every center assigned to it, plus the id mappings back to `G`.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Fragment index `i ∈ [0, n)`.
    pub id: usize,
    /// Local graph + global↔local node id maps.
    pub extracted: Extracted,
    /// Assigned candidate centers, as *local* node ids.
    pub centers: Vec<NodeId>,
    /// Total d-ball load used for balancing (diagnostics).
    pub load: u64,
}

impl Fragment {
    /// The fragment's local graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.extracted.graph
    }

    /// The assigned centers as global (parent-graph) ids.
    pub fn center_globals(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.centers.iter().map(|&c| self.extracted.global(c))
    }

    /// Size `|F_i| = |V_i| + |E_i|` of the local graph.
    pub fn size(&self) -> usize {
        self.graph().size()
    }
}

/// Partitions `g` into `n` fragments covering the given candidate centers,
/// such that each center's d-ball is fully contained (with its induced
/// edges) in its owning fragment. Centers may be replicated *as nodes*
/// into several fragments (boundary replication) but each is a *center* of
/// exactly one fragment, so support counts assembled across fragments
/// never double-count (§4.2: "nodes accounted for local support in `F_i`
/// are disjoint from those in `F_j`").
pub fn partition_by_centers(
    g: &Graph,
    centers: &[NodeId],
    d: u32,
    n: usize,
    strategy: PartitionStrategy,
) -> Vec<Fragment> {
    let n = n.max(1);
    // Compute each center's d-ball once; it both sizes the assignment and
    // builds the fragment. One traversal scratch serves every ball.
    let mut scratch = NeighborhoodScratch::new();
    let balls: Vec<Vec<NodeId>> =
        centers.iter().map(|&c| ball_with(g, c, d, &mut scratch).to_vec()).collect();

    // Assignment: fragment index per center.
    let mut assign = vec![0usize; centers.len()];
    let mut loads = vec![0u64; n];
    match strategy {
        PartitionStrategy::Hash => {
            for (i, &c) in centers.iter().enumerate() {
                let f = c.index() % n;
                assign[i] = f;
                loads[f] += balls[i].len() as u64;
            }
        }
        PartitionStrategy::Balanced => {
            let mut order: Vec<usize> = (0..centers.len()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(balls[i].len()));
            for i in order {
                let f = loads.iter().enumerate().min_by_key(|&(_, &l)| l).map(|(f, _)| f).unwrap();
                assign[i] = f;
                loads[f] += balls[i].len() as u64;
            }
        }
    }

    // Materialize fragments: union of assigned balls, induced extraction.
    let mut frag_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (i, b) in balls.iter().enumerate() {
        frag_nodes[assign[i]].extend_from_slice(b);
    }
    (0..n)
        .map(|f| {
            let mut nodes = std::mem::take(&mut frag_nodes[f]);
            nodes.sort_unstable();
            nodes.dedup();
            let extracted = extract_induced_with(g, &nodes, &mut scratch);
            let centers_local: Vec<NodeId> = centers
                .iter()
                .enumerate()
                .filter(|&(i, _)| assign[i] == f)
                .map(|(_, &c)| extracted.local(c).expect("assigned center is in its fragment"))
                .collect();
            Fragment { id: f, extracted, centers: centers_local, load: loads[f] }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{ball, GraphBuilder, Vocab};

    /// A ring of `n` hubs; each hub has `spokes` leaves.
    fn hub_ring(hubs: usize, spokes: usize) -> (Graph, Vec<NodeId>) {
        let vocab = Vocab::new();
        let hub = vocab.intern("hub");
        let leaf = vocab.intern("leaf");
        let e = vocab.intern("e");
        let mut b = GraphBuilder::new(vocab);
        let hs: Vec<NodeId> = (0..hubs).map(|_| b.add_node(hub)).collect();
        for i in 0..hubs {
            b.add_edge(hs[i], hs[(i + 1) % hubs], e);
            for _ in 0..spokes {
                let l = b.add_node(leaf);
                b.add_edge(hs[i], l, e);
            }
        }
        (b.build(), hs)
    }

    #[test]
    fn every_center_is_assigned_exactly_once() {
        let (g, hubs) = hub_ring(8, 3);
        for strategy in [PartitionStrategy::Balanced, PartitionStrategy::Hash] {
            let frags = partition_by_centers(&g, &hubs, 1, 3, strategy);
            assert_eq!(frags.len(), 3);
            let total: usize = frags.iter().map(|f| f.centers.len()).sum();
            assert_eq!(total, hubs.len());
            let mut seen: Vec<NodeId> = frags.iter().flat_map(|f| f.center_globals()).collect();
            seen.sort_unstable();
            let mut expect = hubs.clone();
            expect.sort_unstable();
            assert_eq!(seen, expect);
        }
    }

    #[test]
    fn d_ball_is_fully_contained_with_its_edges() {
        let (g, hubs) = hub_ring(6, 2);
        let d = 2;
        let frags = partition_by_centers(&g, &hubs, d, 4, PartitionStrategy::Balanced);
        for f in &frags {
            for c in f.center_globals() {
                for v in ball(&g, c, d) {
                    let local = f.extracted.local(v);
                    assert!(local.is_some(), "ball node {v} missing from fragment {}", f.id);
                }
                // Every edge among ball nodes survives the extraction.
                let bn = ball(&g, c, d);
                for &u in &bn {
                    for e in g.out_edges(u) {
                        if bn.binary_search(&e.node).is_ok() {
                            let lu = f.extracted.local(u).unwrap();
                            let lv = f.extracted.local(e.node).unwrap();
                            assert!(f.graph().has_edge(lu, lv, e.label));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn balanced_beats_hash_on_skewed_centers() {
        // Center ids clustered so `mod n` is pathological: all centers hash
        // to fragment 0 when ids are multiples of n.
        let vocab = Vocab::new();
        let hub = vocab.intern("hub");
        let leaf = vocab.intern("leaf");
        let e = vocab.intern("e");
        let mut b = GraphBuilder::new(vocab);
        let mut centers = Vec::new();
        for _ in 0..6 {
            let h = b.add_node(hub); // ids 0, 3, 6, ... (stride 3)
            let l1 = b.add_node(leaf);
            let l2 = b.add_node(leaf);
            b.add_edge(h, l1, e);
            b.add_edge(h, l2, e);
            centers.push(h);
        }
        let g = b.build();
        let hash = partition_by_centers(&g, &centers, 1, 3, PartitionStrategy::Hash);
        let bal = partition_by_centers(&g, &centers, 1, 3, PartitionStrategy::Balanced);
        let spread = |fr: &[Fragment]| {
            let loads: Vec<u64> = fr.iter().map(|f| f.load).collect();
            *loads.iter().max().unwrap() - *loads.iter().min().unwrap()
        };
        assert!(spread(&bal) < spread(&hash), "balanced should spread load");
        // All centers hashed onto fragment 0 (ids are multiples of 3).
        assert_eq!(hash[0].centers.len(), 6);
    }

    #[test]
    fn more_fragments_than_centers_yields_empty_fragments() {
        let (g, hubs) = hub_ring(2, 1);
        let frags = partition_by_centers(&g, &hubs[..1], 1, 4, PartitionStrategy::Balanced);
        assert_eq!(frags.len(), 4);
        let nonempty = frags.iter().filter(|f| !f.centers.is_empty()).count();
        assert_eq!(nonempty, 1);
        for f in frags.iter().filter(|f| f.centers.is_empty()) {
            assert_eq!(f.graph().node_count(), 0);
        }
    }
}
