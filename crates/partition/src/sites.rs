//! Per-center d-neighborhood *sites*.
//!
//! Both DMine's `localMine` and EIP's `Matchc`/`Match` decide membership
//! per candidate center inside `G_d(v_x)` ("checks whether `v_x` is in
//! `P_R(x, G_d(v_x))`", §5.1). A [`CenterSite`] materializes exactly that:
//! the induced d-ball subgraph of one center with id mappings back to `G`.
//!
//! Evaluating *inside the site* rather than inside a larger fragment keeps
//! the semantics a pure function of `(G, v_x, d)` — independent of how
//! centers were grouped onto workers — which is what makes parallel
//! support counts deterministic across any worker count `n`. (For
//! patterns of radius ≤ d whose components are connected to `x` this
//! coincides with global matching, per the locality property; components
//! that `x` cannot reach are matched within the ball, the paper's implicit
//! semantic boundary.)

use crate::fragment::PartitionStrategy;
use crate::stats::chunk_evenly;
use gpar_graph::{d_neighborhood_with, Extracted, Graph, GraphView, NeighborhoodScratch, NodeId};

/// One candidate center with its materialized d-neighborhood `G_d(v_x)`.
#[derive(Debug, Clone)]
pub struct CenterSite {
    /// The center's id in the parent graph.
    pub center_global: NodeId,
    /// The center's id inside [`CenterSite::site`].
    pub center: NodeId,
    /// The induced d-ball subgraph plus id mappings.
    pub site: Extracted,
    /// Nodes per BFS depth `0..=d` (used for extendability estimates).
    pub layer_sizes: Vec<u32>,
}

impl CenterSite {
    /// Builds the site of `center` with radius `d`.
    pub fn build<G: GraphView + ?Sized>(g: &G, center: NodeId, d: u32) -> Self {
        Self::build_with(g, center, d, &mut NeighborhoodScratch::new())
    }

    /// As [`CenterSite::build`] but reusing `scratch` for the BFS,
    /// visited marks and id translation — create one scratch per
    /// worker/thread and amortize it across every site built (EIP
    /// partitioning, mining rounds and the serve d-ball cache all build
    /// thousands of sites per pass).
    pub fn build_with<G: GraphView + ?Sized>(
        g: &G,
        center: NodeId,
        d: u32,
        scratch: &mut NeighborhoodScratch,
    ) -> Self {
        let (site, center_local) = d_neighborhood_with(g, center, d, scratch);
        let mut layer_sizes = vec![0u32; d as usize + 1];
        for &(_, depth) in scratch.last_layers() {
            layer_sizes[depth as usize] += 1;
        }
        Self { center_global: center, center: center_local, site, layer_sizes }
    }

    /// The site's graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.site.graph
    }

    /// Size `|V| + |E|` of the site (the load measure for balancing).
    pub fn load(&self) -> u64 {
        self.graph().size() as u64
    }
}

/// Builds the site of every center in input order, as one flat list.
///
/// This is the work-stealing execution model's site source: instead of
/// pre-assigning sites to workers ([`partition_sites`]), callers chunk the
/// flat list into task granules ([`chunk_by_load`]) and let the executor's
/// stealing even out per-site cost skew dynamically. One traversal scratch
/// is amortized across every build.
pub fn build_sites<G: GraphView + ?Sized>(g: &G, centers: &[NodeId], d: u32) -> Vec<CenterSite> {
    let mut scratch = NeighborhoodScratch::new();
    centers.iter().map(|&c| CenterSite::build_with(g, c, d, &mut scratch)).collect()
}

/// Splits `0..loads.len()` into at most `max_chunks` contiguous,
/// non-empty ranges of near-equal total load — the task granule for the
/// executor (a few chunks per worker keeps stealing effective without
/// per-site task overhead). Chunk `j` closes at the prefix-load boundary
/// `total·j/max_chunks`, so the result is a deterministic function of
/// `(loads, max_chunks)` alone; zero loads count as 1 so every site
/// contributes.
pub fn chunk_by_load(loads: &[u64], max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    let mc = max_chunks.max(1) as u64;
    let total: u64 = loads.iter().map(|&l| l.max(1)).sum();
    let mut out: Vec<std::ops::Range<usize>> = Vec::new();
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &l) in loads.iter().enumerate() {
        acc += l.max(1);
        let chunk_no = out.len() as u64 + 1;
        if chunk_no < mc && acc >= total * chunk_no / mc {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    if start < loads.len() {
        out.push(start..loads.len());
    }
    out
}

/// Builds sites for all centers and assigns them to `n` workers.
///
/// * [`PartitionStrategy::Balanced`] — LPT bin packing on site loads.
/// * [`PartitionStrategy::Hash`] — `center mod n` (skew baseline).
///
/// Returns one site list per worker; every center appears in exactly one
/// list, so summed per-center statistics never double count.
pub fn partition_sites<G: GraphView + ?Sized>(
    g: &G,
    centers: &[NodeId],
    d: u32,
    n: usize,
    strategy: PartitionStrategy,
) -> Vec<Vec<CenterSite>> {
    let n = n.max(1);
    let mut scratch = NeighborhoodScratch::new();
    let sites: Vec<CenterSite> =
        centers.iter().map(|&c| CenterSite::build_with(g, c, d, &mut scratch)).collect();
    let mut out: Vec<Vec<CenterSite>> = (0..n).map(|_| Vec::new()).collect();
    match strategy {
        PartitionStrategy::Hash => {
            for s in sites {
                let w = s.center_global.index() % n;
                out[w].push(s);
            }
        }
        PartitionStrategy::Balanced => {
            let mut order: Vec<usize> = (0..sites.len()).collect();
            let loads: Vec<u64> = sites.iter().map(|s| s.load()).collect();
            order.sort_by_key(|&i| std::cmp::Reverse(loads[i]));
            let mut bins = vec![0u64; n];
            let mut assign = vec![0usize; sites.len()];
            for i in order {
                let w = bins.iter().enumerate().min_by_key(|&(_, &l)| l).map(|(w, _)| w).unwrap();
                assign[i] = w;
                bins[w] += loads[i];
            }
            for (s, w) in sites.into_iter().zip(assign) {
                out[w].push(s);
            }
        }
    }
    out
}

/// Convenience: evenly chunk *already built* sites across workers in id
/// order (used when re-partitioning for a different `n` without the
/// balancing pass).
pub fn chunk_sites(sites: Vec<CenterSite>, n: usize) -> Vec<Vec<CenterSite>> {
    let refs: Vec<CenterSite> = sites;
    let chunks = chunk_evenly(&refs.iter().map(|s| s.center_global).collect::<Vec<_>>(), n);
    // Rebuild by matching center ids (cheap: move out of a map).
    let mut by_center: rustc_hash::FxHashMap<NodeId, CenterSite> =
        refs.into_iter().map(|s| (s.center_global, s)).collect();
    chunks
        .into_iter()
        .map(|chunk| chunk.into_iter().map(|c| by_center.remove(&c).unwrap()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};

    fn chain(n: usize) -> (Graph, Vec<NodeId>) {
        let vocab = Vocab::new();
        let l = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = GraphBuilder::new(vocab);
        let vs: Vec<NodeId> = (0..n).map(|_| b.add_node(l)).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], e);
        }
        (b.build(), vs)
    }

    #[test]
    fn site_contains_exactly_the_d_ball() {
        let (g, vs) = chain(7);
        let s = CenterSite::build(&g, vs[3], 2);
        assert_eq!(s.graph().node_count(), 5); // v1..v5
        assert_eq!(s.layer_sizes, vec![1, 2, 2]);
        assert_eq!(s.site.global(s.center), vs[3]);
    }

    #[test]
    fn every_center_is_assigned_once() {
        let (g, vs) = chain(20);
        for strategy in [PartitionStrategy::Balanced, PartitionStrategy::Hash] {
            let parts = partition_sites(&g, &vs, 1, 3, strategy);
            assert_eq!(parts.len(), 3);
            let mut all: Vec<NodeId> = parts.iter().flatten().map(|s| s.center_global).collect();
            all.sort_unstable();
            assert_eq!(all, vs);
        }
    }

    #[test]
    fn balanced_assignment_evens_loads() {
        let (g, vs) = chain(30);
        let parts = partition_sites(&g, &vs, 2, 3, PartitionStrategy::Balanced);
        let loads: Vec<u64> = parts.iter().map(|p| p.iter().map(|s| s.load()).sum()).collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 16, "loads should be near-even: {loads:?}");
    }

    #[test]
    fn chunk_by_load_covers_every_index_with_even_loads() {
        // Uniform loads: near-even chunk sizes, exactly max_chunks chunks.
        let chunks = chunk_by_load(&[1; 10], 4);
        assert_eq!(chunks.len(), 4);
        let flat: Vec<usize> = chunks.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        // One dominating load gets its own chunk; the tail still splits.
        let skewed = chunk_by_load(&[100, 1, 1, 1, 1, 1, 1, 1], 4);
        assert_eq!(skewed[0], 0..1);
        let flat: Vec<usize> = skewed.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(flat, (0..8).collect::<Vec<_>>());
        assert!(skewed.iter().all(|r| !r.is_empty()));
        // Degenerate shapes.
        assert!(chunk_by_load(&[], 4).is_empty());
        assert_eq!(chunk_by_load(&[5], 4), vec![0..1]);
        assert_eq!(chunk_by_load(&[0, 0, 7], 1), vec![0..3]);
    }

    #[test]
    fn build_sites_matches_individual_builds() {
        let (g, vs) = chain(9);
        let flat = build_sites(&g, &vs, 2);
        assert_eq!(flat.len(), vs.len());
        for (s, &c) in flat.iter().zip(&vs) {
            let solo = CenterSite::build(&g, c, 2);
            assert_eq!(s.center_global, c);
            assert_eq!(s.graph().node_count(), solo.graph().node_count());
            assert_eq!(s.layer_sizes, solo.layer_sizes);
        }
    }

    #[test]
    fn chunking_preserves_all_sites() {
        let (g, vs) = chain(10);
        let sites: Vec<CenterSite> = vs.iter().map(|&c| CenterSite::build(&g, c, 1)).collect();
        let chunks = chunk_sites(sites, 4);
        assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), 10);
        assert_eq!(chunks.len(), 4);
    }
}
