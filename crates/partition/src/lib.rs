//! # gpar-partition
//!
//! Graph fragmentation for parallel GPAR mining and matching (§4.2, §5.1).
//!
//! Both DMine and Matchc partition `G` into `n` fragments such that
//!
//! 1. for every *candidate center* `v_x` (a node that can match the
//!    designated `x` of the predicate), its d-neighborhood `G_d(v_x)` —
//!    the subgraph induced by `N_d(v_x)` — lies entirely inside the
//!    fragment that owns `v_x`; and
//! 2. fragments have roughly even size.
//!
//! Property (1) is what makes per-candidate matching embarrassingly
//! parallel: by the *data locality of subgraph isomorphism*,
//! `v_x ∈ P_R(x, G)` iff `v_x ∈ P_R(x, G_d(v_x))` for any rule of radius
//! ≤ d at `x`. Property (2) bounds the per-round straggler effect; the
//! paper reports ≤ 14.4% skew with its (Ja-be-Ja-based) partitioner, and
//! [`PartitionStats`] reports the same measurement for ours.
//!
//! We implement the candidate-center-driven construction directly: each
//! fragment is the subgraph induced by the union of the d-balls of its
//! assigned centers (replicating boundary nodes, as the paper's
//! construction implies), with two assignment strategies — balanced
//! ([`PartitionStrategy::Balanced`], LPT bin-packing on ball sizes) and
//! [`PartitionStrategy::Hash`] (the skew baseline ablated in the benches).

pub mod fragment;
pub mod shard;
pub mod sites;
pub mod stats;

pub use fragment::{partition_by_centers, Fragment, PartitionStrategy};
pub use shard::{ShardPlan, ShardSpec};
pub use sites::{build_sites, chunk_by_load, partition_sites, CenterSite};
pub use stats::{chunk_evenly, PartitionStats};
