//! Partition quality measurements and work-chunking helpers.

use crate::fragment::Fragment;

/// Skew statistics over per-fragment quantities (sizes, loads or measured
/// per-fragment processing times). The paper reports
/// `(max − min) / max ≤ 14.4%` for DMine's fragments; [`PartitionStats::skew`]
/// is that measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// Smallest per-fragment value.
    pub min: f64,
    /// Largest per-fragment value.
    pub max: f64,
    /// Mean per-fragment value.
    pub mean: f64,
}

impl PartitionStats {
    /// Computes stats over arbitrary per-fragment values.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Option<Self> {
        let vals: Vec<f64> = values.into_iter().collect();
        if vals.is_empty() {
            return None;
        }
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        Some(Self { min, max, mean })
    }

    /// Computes stats over fragment sizes `|F_i|`.
    pub fn from_fragments(frags: &[Fragment]) -> Option<Self> {
        Self::from_values(frags.iter().map(|f| f.size() as f64))
    }

    /// The gap between the largest and smallest value as a fraction of the
    /// largest — the paper's skew measure.
    pub fn skew(&self) -> f64 {
        if self.max == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.max
        }
    }
}

/// Splits `items` into `n` chunks of nearly equal length (the paper's
/// "partition L into n fragments" for the parallel assembling step).
pub fn chunk_evenly<T: Clone>(items: &[T], n: usize) -> Vec<Vec<T>> {
    let n = n.max(1);
    let mut out = vec![Vec::new(); n];
    let base = items.len() / n;
    let extra = items.len() % n;
    let mut idx = 0;
    for (i, chunk) in out.iter_mut().enumerate() {
        let len = base + usize::from(i < extra);
        chunk.extend_from_slice(&items[idx..idx + len]);
        idx += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_skew() {
        let s = PartitionStats::from_values([80.0, 100.0, 90.0]).unwrap();
        assert_eq!(s.min, 80.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 90.0);
        assert!((s.skew() - 0.2).abs() < 1e-12);
        assert!(PartitionStats::from_values([]).is_none());
        let zero = PartitionStats::from_values([0.0, 0.0]).unwrap();
        assert_eq!(zero.skew(), 0.0);
    }

    #[test]
    fn chunks_cover_everything_evenly() {
        let items: Vec<u32> = (0..10).collect();
        let chunks = chunk_evenly(&items, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 3);
        assert_eq!(chunks[2].len(), 3);
        let flat: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(flat, items);
        // More chunks than items.
        let chunks = chunk_evenly(&items[..2], 5);
        assert_eq!(chunks.iter().filter(|c| !c.is_empty()).count(), 2);
    }
}
