//! Rule evaluation and the revised-Bayes-Factor confidence (§3).

use crate::gpar::{Gpar, GparError};
use crate::support::{q_stats, QStats};
use gpar_graph::{FxHashSet, Graph, NodeId};
use gpar_iso::{Matcher, MatcherConfig};

/// The support counts entering the confidence formula.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfStats {
    /// `supp(R, G) = ‖P_R(x, G)‖`.
    pub supp_r: u64,
    /// `supp(Q, G) = ‖Q(x, G)‖` (the antecedent alone).
    pub supp_q_ante: u64,
    /// `supp(q, G)` — positives of the predicate.
    pub supp_q: u64,
    /// `supp(q̄, G)` — negatives under the LCWA.
    pub supp_qbar: u64,
    /// `supp(Qq̄, G)` — negatives that also match the antecedent.
    pub supp_q_qbar: u64,
}

/// The confidence of a GPAR, distinguishing the paper's two trivial cases
/// (§3 Remark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Confidence {
    /// The ordinary finite Bayes-Factor value.
    Value(f64),
    /// `supp(Qq̄, G) = 0`: the rule holds logically on all of `G`
    /// (`conf = ∞`).
    LogicalRule,
    /// `supp(q, G) = 0`: `q(x, y)` names no user in `G`; the rule should
    /// be discarded as uninteresting.
    Uninteresting,
}

impl Confidence {
    /// The numeric value, if the confidence is an ordinary finite number.
    pub fn numeric(self) -> Option<f64> {
        match self {
            Confidence::Value(v) => Some(v),
            _ => None,
        }
    }

    /// A total order-friendly value for ranking: trivial logical rules map
    /// to `+∞` and uninteresting ones to `0`, mirroring how DMine treats
    /// them before filtering.
    pub fn ranking_value(self) -> f64 {
        match self {
            Confidence::Value(v) => v,
            Confidence::LogicalRule => f64::INFINITY,
            Confidence::Uninteresting => 0.0,
        }
    }

    /// Whether the confidence clears a threshold `η`.
    pub fn at_least(self, eta: f64) -> bool {
        match self {
            Confidence::Value(v) => v >= eta,
            Confidence::LogicalRule => true,
            Confidence::Uninteresting => false,
        }
    }
}

impl ConfStats {
    /// The BF-based confidence
    /// `supp(R,G)·supp(q̄,G) / (supp(Qq̄,G)·supp(q,G))`.
    pub fn conf(&self) -> Confidence {
        if self.supp_q == 0 {
            return Confidence::Uninteresting;
        }
        if self.supp_q_qbar == 0 {
            return Confidence::LogicalRule;
        }
        Confidence::Value(
            (self.supp_r as f64 * self.supp_qbar as f64)
                / (self.supp_q_qbar as f64 * self.supp_q as f64),
        )
    }

    /// The conventional confidence `supp(R,G)/supp(Q,G)`, shown in
    /// Example 6 to conflate "unknown" with "negative".
    pub fn conventional(&self) -> f64 {
        if self.supp_q_ante == 0 {
            0.0
        } else {
            self.supp_r as f64 / self.supp_q_ante as f64
        }
    }

    /// The PCA confidence `supp(R,G)/supp(Qq̄,G)` (Galárraga et al. [17],
    /// compared in Exp-2). Returns `+∞` when `supp(Qq̄) = 0`.
    pub fn pca(&self) -> f64 {
        if self.supp_q_qbar == 0 {
            f64::INFINITY
        } else {
            self.supp_r as f64 / self.supp_q_qbar as f64
        }
    }

    /// The normalization constant `N = supp(q,G)·supp(q̄,G)` of the
    /// diversification objective (§4.1).
    pub fn normalization(&self) -> f64 {
        (self.supp_q as f64) * (self.supp_qbar as f64)
    }
}

/// Options controlling rule evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Which isomorphism engine to use.
    pub engine: MatcherConfig,
    /// Evaluate membership by full enumeration per candidate rather than
    /// stopping at the first witness (the `disVF2` cost model).
    pub full_enumeration: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self { engine: MatcherConfig::vf2(), full_enumeration: false }
    }
}

/// The complete evaluation of one GPAR on one graph.
#[derive(Debug, Clone)]
pub struct RuleEvaluation {
    /// `P_R(x, G)` — matches of the whole rule pattern.
    pub pr_matches: FxHashSet<NodeId>,
    /// `Q(x, G)` — matches of the antecedent (the potential customers).
    pub q_matches: FxHashSet<NodeId>,
    /// `supp(R, G)`.
    pub supp_r: u64,
    /// `supp(Q, G)`.
    pub supp_q_ante: u64,
    /// `supp(q, G)`.
    pub supp_q: u64,
    /// `supp(q̄, G)`.
    pub supp_qbar: u64,
    /// `supp(Qq̄, G)`.
    pub supp_q_qbar: u64,
    /// The BF-based confidence.
    pub confidence: Confidence,
}

impl RuleEvaluation {
    /// The raw counts as a [`ConfStats`].
    pub fn stats(&self) -> ConfStats {
        ConfStats {
            supp_r: self.supp_r,
            supp_q_ante: self.supp_q_ante,
            supp_q: self.supp_q,
            supp_qbar: self.supp_qbar,
            supp_q_qbar: self.supp_q_qbar,
        }
    }
}

/// Evaluates a GPAR on `g`: computes `Q(x,G)`, `P_R(x,G)`, the predicate
/// statistics and the confidence, exactly as Example 5/8 does by hand.
///
/// Exploits `Q ⊑ P_R` (with `x` pinned): any `P_R`-match of `x` is also a
/// `Q`-match, so each candidate needs at most two anchored searches.
pub fn evaluate(rule: &Gpar, g: &Graph, opts: &EvalOptions) -> Result<RuleEvaluation, GparError> {
    let qs = q_stats(g, rule.predicate());
    Ok(evaluate_with_qstats(rule, g, &qs, opts))
}

/// As [`evaluate`], reusing precomputed predicate statistics (fragments
/// compute them once per predicate across many rules).
pub fn evaluate_with_qstats(
    rule: &Gpar,
    g: &Graph,
    qs: &QStats,
    opts: &EvalOptions,
) -> RuleEvaluation {
    let m = Matcher::new(g, opts.engine);
    let pr = rule.pr();
    let q = rule.antecedent();
    let x = q.x();
    let mut pr_matches = FxHashSet::default();
    let mut q_matches = FxHashSet::default();
    for v in m.candidates(q, x) {
        let in_pr = if opts.full_enumeration {
            m.count_anchored(pr, x, v, None) > 0
        } else {
            m.exists_anchored(pr, x, v)
        };
        if in_pr {
            pr_matches.insert(v);
            q_matches.insert(v);
            continue;
        }
        let in_q = if opts.full_enumeration {
            m.count_anchored(q, x, v, None) > 0
        } else {
            m.exists_anchored(q, x, v)
        };
        if in_q {
            q_matches.insert(v);
        }
    }
    let supp_q_qbar = q_matches.intersection(&qs.negatives).count() as u64;
    let stats = ConfStats {
        supp_r: pr_matches.len() as u64,
        supp_q_ante: q_matches.len() as u64,
        supp_q: qs.supp_q(),
        supp_qbar: qs.supp_qbar(),
        supp_q_qbar,
    };
    RuleEvaluation {
        pr_matches,
        q_matches,
        supp_r: stats.supp_r,
        supp_q_ante: stats.supp_q_ante,
        supp_q: stats.supp_q,
        supp_qbar: stats.supp_qbar,
        supp_q_qbar: stats.supp_q_qbar,
        confidence: stats.conf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::{NodeCond, PatternBuilder};

    /// Example 6/7: BF confidence is 1 while conventional is 1/3.
    #[test]
    fn example_7_bf_confidence_ignores_unknowns() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let ecuador = vocab.intern("ecuador");
        let shakira = vocab.intern("shakira_album");
        let mj = vocab.intern("mj_album");
        let like = vocab.intern("like");
        let live_in = vocab.intern("live_in");
        let mut b = GraphBuilder::new(vocab.clone());
        let ec = b.add_node(ecuador);
        let v1 = b.add_node(cust);
        let v2 = b.add_node(cust);
        let v3 = b.add_node(cust);
        for v in [v1, v2, v3] {
            b.add_edge(v, ec, live_in);
        }
        let sa = b.add_node(shakira);
        let ma = b.add_node(mj);
        b.add_edge(v1, sa, like);
        b.add_edge(v2, ma, like);
        let g = b.build();

        // Antecedent: x lives in Ecuador; consequent: likes Shakira album.
        // (A simplification of Q2 keeping the Example 6 counting.)
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let e = pb.node(ecuador);
        let y = pb.node(shakira);
        pb.edge(x, e, live_in);
        let q = pb.designate(x, y).build().unwrap();
        let rule = Gpar::new(q, like).unwrap();

        let eval = evaluate(&rule, &g, &EvalOptions::default()).unwrap();
        assert_eq!(eval.supp_r, 1); // v1
        assert_eq!(eval.supp_q, 1); // positives: v1
        assert_eq!(eval.supp_qbar, 1); // v2
        assert_eq!(eval.supp_q_qbar, 1); // v2 matches the antecedent
        assert_eq!(eval.confidence, Confidence::Value(1.0));
        assert!((eval.stats().conventional() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_cases_are_flagged() {
        let s = ConfStats { supp_r: 2, supp_q_ante: 2, supp_q: 0, supp_qbar: 0, supp_q_qbar: 0 };
        assert_eq!(s.conf(), Confidence::Uninteresting);
        let s = ConfStats { supp_r: 2, supp_q_ante: 2, supp_q: 3, supp_qbar: 1, supp_q_qbar: 0 };
        assert_eq!(s.conf(), Confidence::LogicalRule);
        assert!(Confidence::LogicalRule.at_least(100.0));
        assert!(!Confidence::Uninteresting.at_least(0.1));
        assert_eq!(Confidence::Value(2.0).numeric(), Some(2.0));
        assert_eq!(Confidence::LogicalRule.numeric(), None);
        assert_eq!(Confidence::LogicalRule.ranking_value(), f64::INFINITY);
    }

    #[test]
    fn pca_and_conventional_metrics() {
        let s = ConfStats { supp_r: 3, supp_q_ante: 4, supp_q: 5, supp_qbar: 1, supp_q_qbar: 1 };
        assert!((s.conf().numeric().unwrap() - 0.6).abs() < 1e-12);
        assert!((s.pca() - 3.0).abs() < 1e-12);
        assert!((s.conventional() - 0.75).abs() < 1e-12);
        assert!((s.normalization() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pr_matches_are_a_subset_of_q_matches_and_positives() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let friend = vocab.intern("friend");
        let visit = vocab.intern("visit");
        let mut b = GraphBuilder::new(vocab.clone());
        let c1 = b.add_node(cust);
        let c2 = b.add_node(cust);
        let r = b.add_node(rest);
        b.add_edge(c1, c2, friend);
        b.add_edge(c2, c1, friend);
        b.add_edge(c2, r, visit);
        b.add_edge(c1, r, visit);
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let x2 = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, x2, friend);
        pb.edge(x2, y, visit);
        let q = pb.designate(x, y).build().unwrap();
        let rule = Gpar::new(q, visit).unwrap();
        let eval = evaluate(&rule, &g, &EvalOptions::default()).unwrap();
        assert!(eval.pr_matches.is_subset(&eval.q_matches));
        let qs = q_stats(&g, rule.predicate());
        assert!(eval.pr_matches.is_subset(&qs.positives));
        assert_eq!(eval.supp_r, 2);
    }

    #[test]
    fn full_enumeration_option_gives_identical_results() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let visit = vocab.intern("visit");
        let mut b = GraphBuilder::new(vocab.clone());
        for _ in 0..3 {
            let c = b.add_node(cust);
            let r1 = b.add_node(rest);
            let r2 = b.add_node(rest);
            b.add_edge(c, r1, like);
            b.add_edge(c, r2, like);
            b.add_edge(c, r1, visit);
        }
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        let r2 = pb.node(rest);
        pb.edge(x, y, like);
        pb.edge(x, r2, like);
        let q = pb.designate(x, y).build().unwrap();
        let rule = Gpar::new(q, visit).unwrap();
        let fast = evaluate(&rule, &g, &EvalOptions::default()).unwrap();
        let slow =
            evaluate(&rule, &g, &EvalOptions { full_enumeration: true, ..Default::default() })
                .unwrap();
        assert_eq!(fast.pr_matches, slow.pr_matches);
        assert_eq!(fast.q_matches, slow.q_matches);
        assert_eq!(fast.confidence, slow.confidence);
    }

    #[test]
    fn predicate_with_value_binding_y() {
        // R4-style rule: y = fake is a value binding; x is an account.
        let vocab = Vocab::new();
        let acct = vocab.intern("acct");
        let fake = vocab.intern("fake");
        let blog = vocab.intern("blog");
        let is_a = vocab.intern("is_a");
        let likes = vocab.intern("like");
        let mut b = GraphBuilder::new(vocab.clone());
        let fake_node = b.add_node(fake);
        let a1 = b.add_node(acct);
        let a2 = b.add_node(acct);
        let p1 = b.add_node(blog);
        b.add_edge(a1, p1, likes);
        b.add_edge(a2, p1, likes);
        b.add_edge(a1, fake_node, is_a);
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(acct);
        let y = pb.node(fake);
        let pblog = pb.node(blog);
        pb.edge(x, pblog, likes);
        let q = pb.designate(x, y).build().unwrap();
        let rule = Gpar::new(q, is_a).unwrap();
        let eval = evaluate(&rule, &g, &EvalOptions::default()).unwrap();
        assert_eq!(eval.supp_r, 1); // a1 is confirmed fake
        assert_eq!(eval.supp_q_ante, 2); // both accounts like the blog
        assert_eq!(rule.predicate().y_cond, NodeCond::Label(fake));
    }
}
