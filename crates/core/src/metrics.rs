//! Alternative support/confidence metrics compared in Exp-2 (§3, §6).
//!
//! The paper evaluates its BF-based `conf` against two alternatives from
//! the literature:
//!
//! * **PCA confidence** (Galárraga et al. [17]): `supp(R,G)/supp(Qq̄,G)`
//!   under the LCWA — pure "coverage", no discriminant term;
//! * **image-based confidence** `Iconf`, built on the minimum-image-based
//!   support of Bringmann & Nijssen [7]: the pattern supports in the BF
//!   formula are replaced by `MNI(P) = min_u ‖P(u, G)‖`, the minimum over
//!   pattern nodes of the number of distinct images. (The paper sketches
//!   the non-overlapping variant; MNI is the standard computable
//!   relaxation from [7] and preserves the comparison's point — it
//!   under-counts customers whenever matches share any node.)

use crate::confidence::{EvalOptions, RuleEvaluation};
use crate::gpar::Gpar;
use crate::support::q_stats;
use gpar_graph::Graph;
use gpar_iso::Matcher;
use gpar_pattern::Pattern;

/// Minimum-image-based support `MNI(p) = min_u ‖p(u, G)‖` over all pattern
/// nodes `u` ([7]); anti-monotonic like the paper's measure.
pub fn mni_support(p: &Pattern, g: &Graph, opts: &EvalOptions) -> u64 {
    let m = Matcher::new(g, opts.engine);
    p.nodes().map(|u| m.images(p, u).len() as u64).min().unwrap_or(0)
}

/// PCA confidence of an evaluated rule: `supp(R,G)/supp(Qq̄,G)`.
pub fn pca_conf(eval: &RuleEvaluation) -> f64 {
    eval.stats().pca()
}

/// Image-based confidence: the BF formula with `supp(R,G)` and `supp(q,G)`
/// replaced by minimum-image supports of `P_R` and `P_q`.
///
/// Returns `None` for the trivial/undefined cases (`supp(q) = 0` or
/// `supp(Qq̄) = 0`), mirroring [`crate::Confidence`]'s trivial variants.
pub fn iconf(rule: &Gpar, g: &Graph, eval: &RuleEvaluation, opts: &EvalOptions) -> Option<f64> {
    let mni_r = mni_support(rule.pr(), g, opts);
    let pq = rule.predicate().pattern(rule.antecedent().vocab().clone());
    let mni_q = mni_support(&pq, g, opts);
    if mni_q == 0 || eval.supp_q_qbar == 0 {
        return None;
    }
    Some((mni_r as f64 * eval.supp_qbar as f64) / (eval.supp_q_qbar as f64 * mni_q as f64))
}

/// Prediction precision used in Exp-2: mine on a training fragment, then
/// measure `prec(R) = supp(R, F2) / supp(Q, F2)` on a validation fragment —
/// the fraction of predicted potential customers that actually performed
/// `q`.
pub fn precision(rule: &Gpar, validation: &Graph, opts: &EvalOptions) -> f64 {
    let qs = q_stats(validation, rule.predicate());
    let eval = crate::confidence::evaluate_with_qstats(rule, validation, &qs, opts);
    if eval.supp_q_ante == 0 {
        0.0
    } else {
        eval.supp_r as f64 / eval.supp_q_ante as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::evaluate;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    /// 3 customers like a shared restaurant; 2 of them visit it, one
    /// visits only a bar (a genuine LCWA negative); 2 unrelated customers
    /// visit separate restaurants (spreading the `P_q` images so that
    /// minimum-image supports diverge from x-based supports).
    fn shared_restaurant() -> (Graph, Gpar) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let bar = vocab.intern("bar");
        let like = vocab.intern("like");
        let visit = vocab.intern("visit");
        let mut b = GraphBuilder::new(vocab.clone());
        let r = b.add_node(rest);
        let the_bar = b.add_node(bar);
        for i in 0..3 {
            let c = b.add_node(cust);
            b.add_edge(c, r, like);
            if i < 2 {
                b.add_edge(c, r, visit);
            } else {
                b.add_edge(c, the_bar, visit); // negative example
            }
        }
        for _ in 0..2 {
            let c = b.add_node(cust);
            let own = b.add_node(rest);
            b.add_edge(c, own, visit);
        }
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let q = pb.designate(x, y).build().unwrap();
        let rule = Gpar::new(q, visit).unwrap();
        (g, rule)
    }

    #[test]
    fn mni_is_the_minimum_over_pattern_nodes() {
        let (g, rule) = shared_restaurant();
        let opts = EvalOptions::default();
        // Antecedent x -like-> y: x has 3 images, y has 1 (all likes point
        // at the same restaurant) → MNI = 1.
        assert_eq!(mni_support(rule.antecedent(), &g, &opts), 1);
        // The paper's x-based support would be 3 — MNI under-counts shared
        // matches, which is exactly the critique in §3.
        let eval = evaluate(&rule, &g, &opts).unwrap();
        assert_eq!(eval.supp_q_ante, 3);
    }

    #[test]
    fn iconf_differs_from_bf_conf_on_shared_matches() {
        let (g, rule) = shared_restaurant();
        let opts = EvalOptions::default();
        let eval = evaluate(&rule, &g, &opts).unwrap();
        let bf = eval.confidence.numeric().unwrap();
        let ic = iconf(&rule, &g, &eval, &opts).unwrap();
        assert!(ic < bf, "Iconf {ic} should under-estimate vs BF {bf}");
    }

    #[test]
    fn pca_ignores_discriminant() {
        let (g, rule) = shared_restaurant();
        let eval = evaluate(&rule, &g, &EvalOptions::default()).unwrap();
        // supp(R)=2, supp(Qq̄)=1 (the non-visitor has a visit edge to the
        // dummy restaurant, hence negative) → PCA = 2.
        assert!((pca_conf(&eval) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn precision_on_a_validation_graph() {
        let (g, rule) = shared_restaurant();
        // Validation = same graph: 3 antecedent matches, 2 visit → 2/3.
        let p = precision(&rule, &g, &EvalOptions::default());
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }
}
