//! Topological support and the LCWA trichotomy (§3).

use crate::gpar::Predicate;
use gpar_graph::{FxHashSet, Graph, GraphView, NodeId};
use gpar_iso::{Matcher, MatcherConfig};
use gpar_pattern::{PNodeId, Pattern};

/// The local closed-world classification of a candidate node `u` (one that
/// satisfies the search condition of `x`) with respect to a predicate
/// `q(x, y)` (§3):
///
/// * **Positive** — `u ∈ P_q(x, G)`: `u` has a `q`-edge to a node matching
///   `y`'s condition.
/// * **Negative** — `u` has at least one `q`-labeled out-edge, but none to
///   a `y`-matching node: the graph *knows* about `q` at `u`, so the
///   absence is a genuine counterexample.
/// * **Unknown** — `u` has no `q`-labeled out-edge at all: the graph knows
///   nothing about `q` at `u`, so `u` must not be counted against any rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcwaClass {
    /// `u ∈ P_q(x, G)`.
    Positive,
    /// Counted in `supp(q̄, G)`.
    Negative,
    /// Locally incomplete: no `q`-edge at `u`.
    Unknown,
}

/// Classifies `u` under the LCWA; `None` if `u` does not satisfy `x`'s
/// search condition.
pub fn classify<G: GraphView + ?Sized>(g: &G, pred: &Predicate, u: NodeId) -> Option<LcwaClass> {
    if !pred.x_cond.matches(g.node_label(u)) {
        return None;
    }
    let edges = g.out_view(u).labeled(pred.label);
    if edges.is_empty() {
        return Some(LcwaClass::Unknown);
    }
    if edges.iter().any(|e| pred.y_cond.matches(g.node_label(e.node))) {
        Some(LcwaClass::Positive)
    } else {
        Some(LcwaClass::Negative)
    }
}

/// Aggregated predicate statistics over a graph (or fragment). The paper
/// computes these once per predicate ("supp(q, F_i) and supp(q̄, F_i) never
/// change and hence are derived once for all").
#[derive(Debug, Clone, Default)]
pub struct QStats {
    /// `P_q(x, G)` — the positives.
    pub positives: FxHashSet<NodeId>,
    /// The nodes counted by `supp(q̄, G)` — the negatives.
    pub negatives: FxHashSet<NodeId>,
    /// Number of "unknown" candidates (kept as a count only).
    pub unknown: u64,
}

impl QStats {
    /// `supp(q, G)`.
    pub fn supp_q(&self) -> u64 {
        self.positives.len() as u64
    }

    /// `supp(q̄, G)`.
    pub fn supp_qbar(&self) -> u64 {
        self.negatives.len() as u64
    }

    /// Total candidates satisfying `x`'s condition.
    pub fn candidates(&self) -> u64 {
        self.supp_q() + self.supp_qbar() + self.unknown
    }
}

/// Computes [`QStats`] for `pred` over `g` by one scan of the candidate
/// nodes.
pub fn q_stats<G: GraphView + ?Sized>(g: &G, pred: &Predicate) -> QStats {
    let mut stats = QStats::default();
    for u in g.nodes() {
        match classify(g, pred, u) {
            Some(LcwaClass::Positive) => {
                stats.positives.insert(u);
            }
            Some(LcwaClass::Negative) => {
                stats.negatives.insert(u);
            }
            Some(LcwaClass::Unknown) => stats.unknown += 1,
            None => {}
        }
    }
    stats
}

/// `supp(Q, G) = ‖Q(x, G)‖` — the paper's anti-monotonic support measure:
/// the number of distinct matches of the designated node (not of whole
/// subgraphs).
pub fn pattern_support(p: &Pattern, g: &Graph, cfg: MatcherConfig) -> u64 {
    pattern_images(p, g, cfg).len() as u64
}

/// `Q(x, G)` as a set.
pub fn pattern_images(p: &Pattern, g: &Graph, cfg: MatcherConfig) -> FxHashSet<NodeId> {
    Matcher::new(g, cfg).images(p, p.x())
}

/// `Q(u, G)` for an arbitrary pattern node.
pub fn pattern_images_of(
    p: &Pattern,
    g: &Graph,
    u: PNodeId,
    cfg: MatcherConfig,
) -> FxHashSet<NodeId> {
    Matcher::new(g, cfg).images(p, u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::{NodeCond, PatternBuilder};

    /// Example 6/7's setting: three Ecuadorians; v1 likes the Shakira
    /// album, v2 likes only MJ's album, v3 has no `like` edge at all.
    fn ecuador() -> (Graph, Predicate, Vec<NodeId>) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let shakira = vocab.intern("shakira_album");
        let mj = vocab.intern("mj_album");
        let like = vocab.intern("like");
        let mut b = GraphBuilder::new(vocab);
        let v1 = b.add_node(cust);
        let v2 = b.add_node(cust);
        let v3 = b.add_node(cust);
        let sa = b.add_node(shakira);
        let ma = b.add_node(mj);
        b.add_edge(v1, sa, like);
        b.add_edge(v2, ma, like);
        let g = b.build();
        let pred = Predicate::new(NodeCond::Label(cust), like, NodeCond::Label(shakira));
        (g, pred, vec![v1, v2, v3])
    }

    #[test]
    fn example_7_lcwa_trichotomy() {
        let (g, pred, vs) = ecuador();
        assert_eq!(classify(&g, &pred, vs[0]), Some(LcwaClass::Positive));
        assert_eq!(classify(&g, &pred, vs[1]), Some(LcwaClass::Negative));
        assert_eq!(classify(&g, &pred, vs[2]), Some(LcwaClass::Unknown));
        let stats = q_stats(&g, &pred);
        assert_eq!(stats.supp_q(), 1);
        assert_eq!(stats.supp_qbar(), 1);
        assert_eq!(stats.unknown, 1);
        assert_eq!(stats.candidates(), 3);
    }

    #[test]
    fn non_candidates_are_not_classified() {
        let (g, pred, _) = ecuador();
        // The album nodes do not satisfy x's condition.
        let album = g.nodes().find(|&v| classify(&g, &pred, v).is_none());
        assert!(album.is_some());
    }

    #[test]
    fn support_counts_distinct_x_images_not_matches() {
        // One cust liking 3 restaurants: ‖Q(G)‖ = 3 matches of the edge
        // pattern, but supp = 1 distinct image of x.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut b = GraphBuilder::new(vocab.clone());
        let c = b.add_node(cust);
        for _ in 0..3 {
            let r = b.add_node(rest);
            b.add_edge(c, r, like);
        }
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(rest);
        pb.edge(x, y, like);
        let p = pb.designate(x, y).build().unwrap();
        assert_eq!(pattern_support(&p, &g, MatcherConfig::vf2()), 1);
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert_eq!(m.count_matches(&p, None), 3);
    }

    #[test]
    fn support_is_anti_monotonic_on_paper_example() {
        // §3's counterexample to match-count support: Q' = single cust
        // node, Q = cust -like-> rest. Match-count grows, x-image support
        // does not.
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut b = GraphBuilder::new(vocab.clone());
        for _ in 0..2 {
            let c = b.add_node(cust);
            for _ in 0..3 {
                let r = b.add_node(rest);
                b.add_edge(c, r, like);
            }
        }
        let g = b.build();
        let mut pb = PatternBuilder::new(vocab.clone());
        let x = pb.node(cust);
        let small = pb.designate_x(x).build().unwrap();
        let mut pb = PatternBuilder::new(vocab);
        let x2 = pb.node(cust);
        let y2 = pb.node(rest);
        pb.edge(x2, y2, like);
        let big = pb.designate_x(x2).build().unwrap();
        assert!(small.is_subsumed_by(&big));
        let s_small = pattern_support(&small, &g, MatcherConfig::vf2());
        let s_big = pattern_support(&big, &g, MatcherConfig::vf2());
        assert!(s_small >= s_big);
        // While raw match counts violate anti-monotonicity:
        let m = Matcher::new(&g, MatcherConfig::vf2());
        assert!(m.count_matches(&big, None) > m.count_matches(&small, None));
    }
}
