//! # gpar-core
//!
//! Graph-pattern association rules (GPARs) with the support and confidence
//! semantics of §2.2–§3 of *Fan et al., PVLDB 2015*.
//!
//! A GPAR `R(x, y): Q(x, y) ⇒ q(x, y)` pairs an antecedent graph pattern
//! `Q` (with designated nodes `x`, `y`) with a consequent edge predicate
//! `q(x, y)`. Its support is *topological*: the number of distinct matches
//! of the designated node `x` (which is anti-monotonic under pattern
//! subsumption, unlike raw match counts). Its confidence revises the Bayes
//! Factor of association rules under the **local closed-world assumption**,
//! so that nodes with *no* `q`-edge at all count as "unknown" rather than
//! as counterexamples:
//!
//! ```text
//! conf(R, G) = supp(R, G) · supp(q̄, G) / (supp(Qq̄, G) · supp(q, G))
//! ```
//!
//! The crate also implements the diversification machinery of §4.1
//! (`diff`, the max-sum objective `F`, the incremental pair score `F'`) and
//! the alternative metrics compared in Exp-2 (PCA confidence, minimum-image
//! based support / `Iconf`).

pub mod confidence;
pub mod diversity;
pub mod gpar;
pub mod metrics;
pub mod support;

pub use confidence::{evaluate, ConfStats, Confidence, EvalOptions, RuleEvaluation};
pub use diversity::{diff, objective_f, pair_score, DiversifyParams};
pub use gpar::{Gpar, GparError, Predicate};
pub use metrics::{iconf, mni_support, pca_conf, precision};
pub use support::{classify, pattern_support, q_stats, LcwaClass, QStats};
