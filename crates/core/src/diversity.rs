//! Diversification: `diff`, the objective `F`, and the pair score `F'`
//! (§4.1).

use gpar_graph::{FxHashSet, NodeId};

/// The difference between two GPARs, measured as the Jaccard *distance* of
/// their `P_R(x, G)` match sets (social groups):
///
/// ```text
/// diff(R1, R2) = 1 − |S1 ∩ S2| / |S1 ∪ S2|
/// ```
///
/// Two rules covering identical groups have `diff = 0`; disjoint groups
/// give `diff = 1`. Two empty sets are identical, so their distance is 0.
pub fn diff(s1: &FxHashSet<NodeId>, s2: &FxHashSet<NodeId>) -> f64 {
    let inter = s1.intersection(s2).count();
    let union = s1.len() + s2.len() - inter;
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f64 / union as f64
    }
}

/// Parameters of the max-sum diversification objective.
#[derive(Debug, Clone, Copy)]
pub struct DiversifyParams {
    /// User-controlled balance `λ ∈ [0, 1]` between interestingness
    /// (`λ = 0`) and diversity (`λ = 1`).
    pub lambda: f64,
    /// The number of rules `k` to select.
    pub k: usize,
    /// The confidence normalization `N = supp(q,G) · supp(q̄,G)` — a
    /// constant for a fixed predicate.
    pub n: f64,
}

impl DiversifyParams {
    /// Creates parameters; `n` is clamped away from 0 so degenerate
    /// predicates don't poison the objective with divisions by zero.
    pub fn new(lambda: f64, k: usize, n: f64) -> Self {
        Self { lambda, k: k.max(2), n: if n > 0.0 { n } else { 1.0 } }
    }
}

/// The objective
/// `F(L_k) = (1−λ)/N · Σ conf(R_i) + 2λ/(k−1) · Σ_{i<j} diff(R_i, R_j)`
/// over a candidate result set given as `(confidence, match set)` pairs.
pub fn objective_f(params: &DiversifyParams, items: &[(f64, &FxHashSet<NodeId>)]) -> f64 {
    let k = params.k.max(2) as f64;
    let mut conf_sum = 0.0;
    for (c, _) in items {
        conf_sum += c;
    }
    let mut diff_sum = 0.0;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            diff_sum += diff(items[i].1, items[j].1);
        }
    }
    (1.0 - params.lambda) * conf_sum / params.n + 2.0 * params.lambda / (k - 1.0) * diff_sum
}

/// The incremental pair score used by `incDiv` (§4.2):
///
/// ```text
/// F'(R, R') = (1−λ)/(N(k−1)) · (conf(R) + conf(R'))
///           + 2λ/(k−1) · diff(R, R')
/// ```
///
/// Summing `F'` over the `⌈k/2⌉` disjoint pairs of the priority queue
/// approximates `F` (the reduction to max-sum dispersion of Theorem 2).
pub fn pair_score(
    params: &DiversifyParams,
    conf1: f64,
    conf2: f64,
    set1: &FxHashSet<NodeId>,
    set2: &FxHashSet<NodeId>,
) -> f64 {
    let k = params.k.max(2) as f64;
    (1.0 - params.lambda) / (params.n * (k - 1.0)) * (conf1 + conf2)
        + 2.0 * params.lambda / (k - 1.0) * diff(set1, set2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> FxHashSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn diff_bounds_and_identity() {
        let a = set(&[1, 2, 3]);
        let b = set(&[4, 5]);
        let c = set(&[2, 3, 4]);
        assert_eq!(diff(&a, &a), 0.0);
        assert_eq!(diff(&a, &b), 1.0);
        let d = diff(&a, &c);
        assert!(d > 0.0 && d < 1.0);
        assert_eq!(diff(&set(&[]), &set(&[])), 0.0);
        // Symmetry.
        assert_eq!(diff(&a, &c), diff(&c, &a));
    }

    /// Example 8: top-2 over {R1, R7, R8} with λ = 0.5.
    #[test]
    fn example_8_objective_values() {
        // R1 and R7 share {cust1,cust2,cust3}; R8 = {cust6};
        // conf(R1)=conf(R7)=0.6, conf(R8)=0.2; supp(q)=5, supp(q̄)=1 → N=5.
        let r1 = set(&[1, 2, 3]);
        let r7 = set(&[1, 2, 3]);
        let r8 = set(&[6]);
        assert_eq!(diff(&r1, &r7), 0.0);
        assert_eq!(diff(&r1, &r8), 1.0);
        assert_eq!(diff(&r7, &r8), 1.0);
        let params = DiversifyParams::new(0.5, 2, 5.0);
        let f_78 = objective_f(&params, &[(0.6, &r7), (0.2, &r8)]);
        assert!((f_78 - 1.08).abs() < 1e-9, "paper computes F(R7,R8) = 1.08, got {f_78}");
        let f_17 = objective_f(&params, &[(0.6, &r1), (0.6, &r7)]);
        assert!(f_78 > f_17, "diversified pair must win over redundant pair");
    }

    /// Example 9 computes F'(R5,R6) = 0.92 and F'(R7,R8) = 1.08.
    #[test]
    fn example_9_pair_scores() {
        let params = DiversifyParams::new(0.5, 2, 5.0);
        // R5(x,G1) = cust1..4, R6(x,G1) = {cust4, cust6}: diff = 0.8.
        let r5 = set(&[1, 2, 3, 4]);
        let r6 = set(&[4, 6]);
        let f56 = pair_score(&params, 0.8, 0.4, &r5, &r6);
        assert!((f56 - 0.92).abs() < 1e-9, "got {f56}");
        let r7 = set(&[1, 2, 3]);
        let r8 = set(&[6]);
        let f78 = pair_score(&params, 0.6, 0.2, &r7, &r8);
        assert!((f78 - 1.08).abs() < 1e-9, "got {f78}");
        assert!(f78 > f56);
    }

    #[test]
    fn lambda_extremes() {
        let a = set(&[1]);
        let b = set(&[2]);
        let conf_only = DiversifyParams::new(0.0, 2, 1.0);
        let div_only = DiversifyParams::new(1.0, 2, 1.0);
        // λ=0: objective is pure (normalized) confidence sum.
        assert_eq!(objective_f(&conf_only, &[(0.5, &a), (0.25, &b)]), 0.75);
        // λ=1: objective is pure diversity.
        assert_eq!(objective_f(&div_only, &[(0.5, &a), (0.25, &b)]), 2.0);
    }

    #[test]
    fn degenerate_params_are_guarded() {
        let p = DiversifyParams::new(0.5, 0, 0.0);
        assert_eq!(p.k, 2);
        assert_eq!(p.n, 1.0);
    }
}
