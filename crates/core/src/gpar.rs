//! The GPAR data type (§2.2).

use gpar_graph::{Label, Vocab};
use gpar_pattern::{EdgeCond, NodeCond, PEdge, PNodeId, Pattern};
use std::fmt;
use std::sync::Arc;

/// The consequent predicate `q(x, y)`: an edge labeled `q` from a node
/// satisfying `x_cond` to a node satisfying `y_cond`. The same search
/// conditions as in `Q` are imposed on `x` and `y` (§2.2), including value
/// bindings such as `y = fake` in rule `R4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Condition on the subject `x` (the potential customer).
    pub x_cond: NodeCond,
    /// The consequent edge label `q`.
    pub label: Label,
    /// Condition on the object `y`.
    pub y_cond: NodeCond,
}

impl Predicate {
    /// Creates a predicate `q(x, y)`.
    pub fn new(x_cond: NodeCond, label: Label, y_cond: NodeCond) -> Self {
        Self { x_cond, label, y_cond }
    }

    /// The two-node pattern `P_q`: `x -q-> y`.
    pub fn pattern(&self, vocab: Arc<Vocab>) -> Pattern {
        Pattern::from_parts(
            vec![self.x_cond, self.y_cond],
            vec![PEdge { src: PNodeId(0), dst: PNodeId(1), cond: EdgeCond::Label(self.label) }],
            PNodeId(0),
            Some(PNodeId(1)),
            vocab,
        )
        .expect("two-node predicate pattern is always valid")
    }
}

/// Errors raised constructing a GPAR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GparError {
    /// The antecedent must designate the consequent's object node `y`.
    NoDesignatedY,
    /// `q(x, y)` must not already appear in the antecedent (§2.2 (3)).
    ConsequentInAntecedent,
    /// The full pattern `P_R` must be connected (§2.2 (1)).
    NotConnected,
    /// The antecedent must have at least one edge (§2.2 (2)).
    EmptyAntecedent,
    /// Underlying pattern construction failed.
    Pattern(gpar_pattern::PatternError),
}

impl fmt::Display for GparError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GparError::NoDesignatedY => write!(f, "antecedent does not designate node y"),
            GparError::ConsequentInAntecedent => {
                write!(f, "consequent edge q(x, y) already appears in the antecedent")
            }
            GparError::NotConnected => write!(f, "pattern P_R is not connected"),
            GparError::EmptyAntecedent => write!(f, "antecedent Q has no edges"),
            GparError::Pattern(e) => write!(f, "invalid pattern: {e}"),
        }
    }
}

impl std::error::Error for GparError {}

impl From<gpar_pattern::PatternError> for GparError {
    fn from(e: gpar_pattern::PatternError) -> Self {
        GparError::Pattern(e)
    }
}

/// A graph-pattern association rule `R(x, y): Q(x, y) ⇒ q(x, y)`.
///
/// The rule is represented, as in the paper, by the pattern `P_R` that
/// extends `Q` with the (dotted) consequent edge; both `Q` and `P_R` are
/// stored so matching never rebuilds them.
#[derive(Debug, Clone)]
pub struct Gpar {
    antecedent: Pattern,
    pr: Pattern,
    predicate: Predicate,
}

impl Gpar {
    /// Builds a *nontrivial* GPAR from an antecedent `Q` (which must
    /// designate both `x` and `y`) and a consequent edge label `q`,
    /// enforcing the paper's §2.2 conditions: `P_R` connected, `Q`
    /// nonempty, and `q(x, y)` absent from `Q`.
    pub fn new(antecedent: Pattern, q: Label) -> Result<Self, GparError> {
        if antecedent.edge_count() == 0 {
            return Err(GparError::EmptyAntecedent);
        }
        Self::new_relaxed(antecedent, q)
    }

    /// As [`Gpar::new`] but allowing an empty antecedent. Used by the miner
    /// for the round-0 seed `q(x, y)`; such seeds report
    /// [`Gpar::is_nontrivial`] `== false` and are never emitted as results.
    #[doc(hidden)]
    pub fn new_relaxed(antecedent: Pattern, q: Label) -> Result<Self, GparError> {
        let x = antecedent.x();
        let y = antecedent.y().ok_or(GparError::NoDesignatedY)?;
        if antecedent.has_edge(x, y, EdgeCond::Label(q)) {
            return Err(GparError::ConsequentInAntecedent);
        }
        let pr = antecedent.with_edge(x, y, EdgeCond::Label(q))?;
        if !pr.is_connected() {
            return Err(GparError::NotConnected);
        }
        let predicate =
            Predicate { x_cond: antecedent.cond(x), label: q, y_cond: antecedent.cond(y) };
        Ok(Self { antecedent, pr, predicate })
    }

    /// The round-0 mining seed: an antecedent with just the two designated
    /// nodes and no edges, i.e. the bare predicate `q(x, y)`.
    pub fn seed(pred: &Predicate, vocab: Arc<Vocab>) -> Self {
        let antecedent = Pattern::from_parts(
            vec![pred.x_cond, pred.y_cond],
            vec![],
            PNodeId(0),
            Some(PNodeId(1)),
            vocab,
        )
        .expect("seed pattern is always valid");
        Self::new_relaxed(antecedent, pred.label).expect("seed GPAR is always valid")
    }

    /// The antecedent `Q(x, y)`.
    #[inline]
    pub fn antecedent(&self) -> &Pattern {
        &self.antecedent
    }

    /// The full rule pattern `P_R = Q + q(x, y)`.
    #[inline]
    pub fn pr(&self) -> &Pattern {
        &self.pr
    }

    /// The consequent predicate.
    #[inline]
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }

    /// Whether the rule meets all of §2.2's nontriviality conditions.
    pub fn is_nontrivial(&self) -> bool {
        self.antecedent.edge_count() > 0
    }

    /// `r(P_R, x)` — the radius of the rule pattern at the designated node.
    pub fn radius(&self) -> Option<u32> {
        self.pr.radius()
    }

    /// `|R| = (|V_p|, |E_p|)` of the rule pattern, the paper's size measure
    /// for GPARs (§6).
    pub fn size(&self) -> (usize, usize) {
        (self.pr.node_count(), self.pr.edge_count())
    }

    /// Whether two GPARs pertain to the same event `q(x, y)`.
    pub fn same_predicate(&self, other: &Gpar) -> bool {
        self.predicate == other.predicate
    }
}

impl fmt::Display for Gpar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vocab = self.antecedent.vocab();
        write!(
            f,
            "{} ⇒ {}({}, {})",
            self.antecedent,
            vocab.resolve(self.predicate.label),
            self.antecedent.x(),
            self.antecedent.y().expect("GPAR always designates y"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_pattern::PatternBuilder;

    fn friend_visit_rule() -> (Gpar, Arc<Vocab>) {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let friend = vocab.intern("friend");
        let visit = vocab.intern("visit");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let x2 = b.node(cust);
        let y = b.node(rest);
        b.edge(x, x2, friend);
        b.edge(x2, y, visit);
        let q = b.designate(x, y).build().unwrap();
        (Gpar::new(q, visit).unwrap(), vocab)
    }

    #[test]
    fn pr_extends_q_with_consequent_edge() {
        let (r, vocab) = friend_visit_rule();
        let visit = vocab.get("visit").unwrap();
        assert_eq!(r.antecedent().edge_count() + 1, r.pr().edge_count());
        let x = r.pr().x();
        let y = r.pr().y().unwrap();
        assert!(r.pr().has_edge(x, y, EdgeCond::Label(visit)));
        assert!(!r.antecedent().has_edge(x, y, EdgeCond::Label(visit)));
        assert!(r.is_nontrivial());
        // In P_R the consequent edge links x and y directly, so the radius
        // at x is 1 even though Q alone reaches y in 2 hops.
        assert_eq!(r.radius(), Some(1));
        assert_eq!(r.antecedent().radius(), Some(2));
        assert_eq!(r.size(), (3, 3));
    }

    #[test]
    fn consequent_must_not_be_in_antecedent() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let visit = vocab.intern("visit");
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let y = b.node(rest);
        b.edge(x, y, visit);
        let q = b.designate(x, y).build().unwrap();
        assert_eq!(Gpar::new(q, visit).unwrap_err(), GparError::ConsequentInAntecedent);
    }

    #[test]
    fn empty_antecedent_rejected_by_strict_constructor() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let visit = vocab.intern("visit");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let y = b.node(rest);
        let q = b.designate(x, y).build().unwrap();
        assert_eq!(Gpar::new(q, visit).unwrap_err(), GparError::EmptyAntecedent);
        // But the seed constructor builds it for mining.
        let pred = Predicate::new(NodeCond::Label(cust), visit, NodeCond::Label(rest));
        let seed = Gpar::seed(&pred, vocab);
        assert!(!seed.is_nontrivial());
        assert_eq!(seed.pr().edge_count(), 1);
    }

    #[test]
    fn pr_must_be_connected() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let rest = vocab.intern("rest");
        let visit = vocab.intern("visit");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let y = b.node(rest);
        let a = b.node(cust);
        let c = b.node(cust);
        b.edge(a, c, e); // component disconnected from {x, y}
        let q = b.designate(x, y).build().unwrap();
        assert_eq!(Gpar::new(q, visit).unwrap_err(), GparError::NotConnected);
    }

    #[test]
    fn missing_y_is_an_error() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let x = b.node(cust);
        let a = b.node(cust);
        b.edge(x, a, e);
        let q = b.designate_x(x).build().unwrap();
        assert_eq!(Gpar::new(q, e).unwrap_err(), GparError::NoDesignatedY);
    }

    #[test]
    fn predicate_pattern_has_two_nodes_and_one_edge() {
        let (r, vocab) = friend_visit_rule();
        let pq = r.predicate().pattern(vocab);
        assert_eq!(pq.node_count(), 2);
        assert_eq!(pq.edge_count(), 1);
        assert_eq!(pq.cond(pq.x()), r.predicate().x_cond);
    }

    #[test]
    fn same_predicate_compares_conditions_and_label() {
        let (r1, vocab) = friend_visit_rule();
        let cust = vocab.get("cust").unwrap();
        let rest = vocab.get("rest").unwrap();
        let visit = vocab.get("visit").unwrap();
        let like = vocab.intern("like");
        let mut b = PatternBuilder::new(vocab.clone());
        let x = b.node(cust);
        let y = b.node(rest);
        b.edge(x, y, like);
        let q = b.designate(x, y).build().unwrap();
        let r2 = Gpar::new(q, visit).unwrap();
        assert!(r1.same_predicate(&r2));
    }

    #[test]
    fn display_resolves_labels() {
        let (r, _) = friend_visit_rule();
        let s = r.to_string();
        assert!(s.contains("visit"), "{s}");
        assert!(s.contains('⇒'), "{s}");
    }
}
