//! Pattern-node visit orders for the backtracking search.

use gpar_pattern::{PNodeId, Pattern};

/// Computes a visit order over the pattern nodes starting from `anchor`.
///
/// The order is *connectivity-first*: after the anchor, every next node is
/// chosen among those adjacent to already-ordered nodes (so candidate sets
/// can be generated from mapped neighbors rather than by scanning `G`),
/// breaking ties by the given preference. Disconnected components are
/// appended afterwards (each begins with a full scan at match time).
///
/// `prefer_degree`: tie-break by descending pattern degree (the static
/// heuristic of degree-ordered engines); otherwise break ties by most
/// already-ordered neighbors (most-constrained-first, VF2-style).
pub fn visit_order(p: &Pattern, anchor: PNodeId, prefer_degree: bool) -> Vec<PNodeId> {
    let mut order = Vec::new();
    visit_order_into(p, anchor, prefer_degree, &mut order, &mut Vec::new(), &mut Vec::new());
    order
}

/// As [`visit_order`] but writing into reusable buffers (`order` receives
/// the result; `placed`/`conn` are working storage): the matcher calls
/// this once per anchored search, so the hot path computes orders without
/// allocating.
pub fn visit_order_into(
    p: &Pattern,
    anchor: PNodeId,
    prefer_degree: bool,
    order: &mut Vec<PNodeId>,
    placed: &mut Vec<bool>,
    conn: &mut Vec<u32>,
) {
    let n = p.node_count();
    placed.clear();
    placed.resize(n, false);
    order.clear();
    order.reserve(n);
    placed[anchor.index()] = true;
    order.push(anchor);

    // Count of already-placed neighbors per node.
    conn.clear();
    conn.resize(n, 0);
    let bump = |conn: &mut Vec<u32>, p: &Pattern, u: PNodeId| {
        for &(v, _) in p.out(u).iter().chain(p.inn(u)) {
            conn[v.index()] += 1;
        }
    };
    bump(conn, p, anchor);

    while order.len() < n {
        let mut best: Option<PNodeId> = None;
        for u in p.nodes() {
            if placed[u.index()] {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    let key = |w: PNodeId| {
                        if prefer_degree {
                            (conn[w.index()].min(1) as usize, p.degree(w), usize::MAX - w.index())
                        } else {
                            (conn[w.index()] as usize, p.degree(w), usize::MAX - w.index())
                        }
                    };
                    key(u) > key(b)
                }
            };
            if better {
                best = Some(u);
            }
        }
        let u = best.unwrap();
        placed[u.index()] = true;
        order.push(u);
        bump(conn, p, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpar_graph::Vocab;
    use gpar_pattern::PatternBuilder;

    #[test]
    fn order_starts_at_anchor_and_covers_all_nodes() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let a = b.node(n);
        let c = b.node(n);
        let d = b.node(n);
        b.edge(a, c, e);
        b.edge(c, d, e);
        let p = b.designate_x(a).build().unwrap();
        let o = visit_order(&p, c, false);
        assert_eq!(o[0], c);
        assert_eq!(o.len(), 3);
        let mut sorted = o.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn connected_nodes_are_visited_before_disconnected_ones() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let a = b.node(n);
        let c = b.node(n);
        let iso = b.node(n); // disconnected
        b.edge(a, c, e);
        let p = b.designate_x(a).build().unwrap();
        let o = visit_order(&p, a, false);
        assert_eq!(o.last(), Some(&iso));
    }

    #[test]
    fn degree_preference_picks_hubs_earlier() {
        let vocab = Vocab::new();
        let n = vocab.intern("n");
        let e = vocab.intern("e");
        let mut b = PatternBuilder::new(vocab);
        let a = b.node(n);
        let low = b.node(n);
        let hub = b.node(n);
        let l1 = b.node(n);
        let l2 = b.node(n);
        b.edge(a, low, e);
        b.edge(a, hub, e);
        b.edge(hub, l1, e);
        b.edge(hub, l2, e);
        let p = b.designate_x(a).build().unwrap();
        let o = visit_order(&p, a, true);
        let pos = |x| o.iter().position(|&u| u == x).unwrap();
        assert!(pos(hub) < pos(low));
    }
}
