//! A brute-force matcher used as a test oracle.
//!
//! Enumerates *every* injective assignment of pattern nodes to graph nodes
//! and filters by the match conditions — exponential, safe only on tiny
//! inputs, and deliberately free of the pruning logic the real engines use,
//! so that property tests can compare against an independent
//! implementation.

use gpar_graph::{FxHashSet, Graph, NodeId};
use gpar_pattern::{EdgeCond, PNodeId, Pattern};

fn is_match(p: &Pattern, g: &Graph, map: &[NodeId]) -> bool {
    for u in p.nodes() {
        if !p.cond(u).matches(g.node_label(map[u.index()])) {
            return false;
        }
    }
    for e in p.edges() {
        let s = map[e.src.index()];
        let d = map[e.dst.index()];
        let ok = match e.cond {
            EdgeCond::Label(l) => g.has_edge(s, d, l),
            EdgeCond::Any => g.out_edges(s).iter().any(|ge| ge.node == d),
        };
        if !ok {
            return false;
        }
    }
    true
}

/// All images of pattern node `u` over all matches of `p` in `g`, computed
/// by exhaustive enumeration of injective assignments.
pub fn brute_force_images(p: &Pattern, g: &Graph, u: PNodeId) -> FxHashSet<NodeId> {
    let n = p.node_count();
    let mut out = FxHashSet::default();
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut map: Vec<NodeId> = vec![NodeId(0); n];
    let mut used = vec![false; nodes.len()];

    #[allow(clippy::too_many_arguments)] // explicit DFS state, kept flat on purpose
    fn rec(
        p: &Pattern,
        g: &Graph,
        nodes: &[NodeId],
        pos: usize,
        map: &mut [NodeId],
        used: &mut [bool],
        u: PNodeId,
        out: &mut FxHashSet<NodeId>,
    ) {
        if pos == map.len() {
            if is_match(p, g, map) {
                out.insert(map[u.index()]);
            }
            return;
        }
        for (i, &v) in nodes.iter().enumerate() {
            if used[i] {
                continue;
            }
            used[i] = true;
            map[pos] = v;
            rec(p, g, nodes, pos + 1, map, used, u, out);
            used[i] = false;
        }
    }
    if nodes.len() >= n {
        rec(p, g, &nodes, 0, &mut map, &mut used, u, &mut out);
    }
    out
}

/// Counts all matches of `p` in `g` by exhaustive enumeration.
pub fn brute_force_count(p: &Pattern, g: &Graph) -> u64 {
    let n = p.node_count();
    let nodes: Vec<NodeId> = g.nodes().collect();
    if nodes.len() < n {
        return 0;
    }
    let mut map: Vec<NodeId> = vec![NodeId(0); n];
    let mut used = vec![false; nodes.len()];
    let mut count = 0u64;

    fn rec(
        p: &Pattern,
        g: &Graph,
        nodes: &[NodeId],
        pos: usize,
        map: &mut [NodeId],
        used: &mut [bool],
        count: &mut u64,
    ) {
        if pos == map.len() {
            if is_match(p, g, map) {
                *count += 1;
            }
            return;
        }
        for (i, &v) in nodes.iter().enumerate() {
            if used[i] {
                continue;
            }
            used[i] = true;
            map[pos] = v;
            rec(p, g, nodes, pos + 1, map, used, count);
            used[i] = false;
        }
    }
    rec(p, g, &nodes, 0, &mut map, &mut used, &mut count);
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Matcher, MatcherConfig};
    use gpar_graph::{GraphBuilder, Vocab};
    use gpar_pattern::PatternBuilder;

    #[test]
    fn oracle_agrees_on_a_small_case() {
        let vocab = Vocab::new();
        let cust = vocab.intern("cust");
        let r = vocab.intern("rest");
        let like = vocab.intern("like");
        let mut gb = GraphBuilder::new(vocab.clone());
        let c1 = gb.add_node(cust);
        let c2 = gb.add_node(cust);
        let r1 = gb.add_node(r);
        gb.add_edge(c1, r1, like);
        gb.add_edge(c2, r1, like);
        let g = gb.build();
        let mut pb = PatternBuilder::new(vocab);
        let x = pb.node(cust);
        let y = pb.node(r);
        pb.edge(x, y, like);
        let p = pb.designate(x, y).build().unwrap();
        let oracle = brute_force_images(&p, &g, x);
        let engine = Matcher::new(&g, MatcherConfig::vf2()).images(&p, x);
        assert_eq!(oracle, engine);
        assert_eq!(brute_force_count(&p, &g), 2);
    }
}
