//! Reusable search-state arena for the backtracking matcher.
//!
//! A single [`Matcher::exists_anchored`](crate::Matcher::exists_anchored)
//! call used to allocate a partial-map vector, a hash-set of used data
//! nodes, and one `Vec` per search step for candidates — and EIP/DMine/
//! serve each make *thousands* of matcher calls per candidate round. The
//! arena replaces all of that with buffers that live across calls:
//!
//! * the partial assignment is a sentinel-stuffed `Vec<NodeId>`;
//! * injectivity marks are an epoch-stamped [`VisitedBuffer`] over data
//!   node ids (`O(1)` reset per call, no hashing);
//! * per-step candidate lists are *segments* of one shared stack —
//!   `go` records the segment start, children push above it, and the
//!   segment is truncated on backtrack;
//! * sorted-run intersection ping-pongs between two reusable buffers;
//! * guided search's on-demand sketch builds reuse one
//!   [`NeighborhoodScratch`].
//!
//! Share one arena per thread/worker via [`SharedScratch`] (it is `Rc`-
//! based and deliberately `!Send`, like the pattern-sketch cache): every
//! matcher built with
//! [`Matcher::with_scratch`](crate::Matcher::with_scratch) then runs
//! allocation-free on the steady-state path, no matter how many site
//! graphs it is rebuilt over.

use gpar_graph::{NeighborhoodScratch, NodeId, VisitedBuffer};
use gpar_pattern::PNodeId;
use std::cell::RefCell;
use std::rc::Rc;

/// Sentinel for "pattern node not yet assigned".
pub(crate) const NO_NODE: NodeId = NodeId(u32::MAX);

/// Reusable matcher search state. See the module docs.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Partial assignment, indexed by pattern node ([`NO_NODE`] = free).
    pub(crate) map: Vec<NodeId>,
    /// Injectivity marks over data node ids.
    pub(crate) used: VisitedBuffer,
    /// Segmented candidate stack: one contiguous segment per active
    /// search depth.
    pub(crate) cand: Vec<NodeId>,
    /// Intersection working buffers (ping-pong).
    pub(crate) tmp: Vec<NodeId>,
    pub(crate) tmp2: Vec<NodeId>,
    /// Guided-search scoring buffer (`(surplus, node)` pairs).
    pub(crate) scored: Vec<(i64, NodeId)>,
    /// Assembled full match handed to enumeration callbacks.
    pub(crate) out: Vec<NodeId>,
    /// Pattern-node visit order for the current search.
    pub(crate) order: Vec<PNodeId>,
    /// Working storage for order computation.
    pub(crate) placed: Vec<bool>,
    pub(crate) conn: Vec<u32>,
    /// Reusable pattern-fingerprint key buffer (also the pattern-sketch
    /// cache key).
    pub(crate) key: Vec<u64>,
    /// Fingerprint + anchor + order-flavor the *active* `order`/`deg_req`/
    /// `node_flags` were computed for: consecutive searches of the same
    /// anchored pattern (the steady state — one pattern probed at every
    /// candidate/site) skip recomputing them entirely.
    pub(crate) meta_key: Vec<u64>,
    pub(crate) meta_anchor: u32,
    pub(crate) meta_prefer: bool,
    /// Small keyed cache of *parked* pattern metadata. Workloads that
    /// alternate a few anchored patterns per site — EIP evaluating `Q`
    /// then `P_R` for every rule of Σ — switch the active entry on every
    /// pattern change; parking the displaced metadata here (instead of
    /// discarding it) makes those switches hits too. Entries are whole
    /// buffer sets, so a switch is a handful of pointer swaps.
    pub(crate) meta_cache: Vec<PatternMeta>,
    /// Monotonic park counter (the cache's LRU clock).
    pub(crate) meta_tick: u64,
    /// Number of full metadata recomputations (cache misses) — the
    /// observability hook the cache tests pin down.
    pub(crate) meta_recomputes: u64,
    /// Candidate data nodes generated across all searches (plain `u64`s,
    /// not atomics: the arena is per-thread; the serving engine drains
    /// them into its sharded registry per job).
    pub(crate) cand_generated: u64,
    /// Candidates rejected by degree/label/flag verification or the
    /// re-filter on unverified segments.
    pub(crate) cand_pruned: u64,
    /// Per pattern node: minimum (out, in) data degree a candidate needs
    /// (see `Matcher::compute_pattern_meta`).
    pub(crate) deg_req: Vec<(u32, u32)>,
    /// Flattened per-node labeled-degree requirements:
    /// `(label, min_count, is_out)` triples, node `u`'s slice at
    /// `lab_req_offsets[u] .. lab_req_offsets[u + 1]`.
    pub(crate) lab_req: Vec<(gpar_graph::Label, u32, bool)>,
    pub(crate) lab_req_offsets: Vec<u32>,
    /// Per pattern node: structure flags ([`SELF_LOOP`] etc.), computed
    /// once per search so the per-candidate verifier can skip edge scans
    /// that cannot apply.
    pub(crate) node_flags: Vec<u8>,
    /// Traversal scratch for on-demand data-sketch construction.
    pub(crate) nbr: NeighborhoodScratch,
}

/// One parked pattern-metadata entry: everything an anchored search
/// derives from `(pattern fingerprint, anchor, order flavor)` alone.
#[derive(Debug, Default)]
pub(crate) struct PatternMeta {
    key: Vec<u64>,
    anchor: u32,
    prefer: bool,
    /// Park time on the arena's LRU clock.
    tick: u64,
    order: Vec<PNodeId>,
    deg_req: Vec<(u32, u32)>,
    lab_req: Vec<(gpar_graph::Label, u32, bool)>,
    lab_req_offsets: Vec<u32>,
    node_flags: Vec<u8>,
}

/// Parked metadata entries kept per arena. EIP's steady state cycles
/// through `2·|Σ|` anchored patterns per candidate (`Q` then `P_R` for
/// every rule), so the cap must exceed that to get hits at all — LRU on a
/// cyclic scan one entry too long yields zero. 64 covers a 32-rule Σ;
/// entries are a few tiny vectors each, and the linear key probe
/// (first-word mismatch exits early) is noise next to one `visit_order`
/// recomputation.
const META_CACHE_CAP: usize = 64;

/// `node_flags` bit: the pattern node has a self-loop edge.
pub(crate) const SELF_LOOP: u8 = 1;
/// `node_flags` bit: the pattern node has a wildcard out-edge.
pub(crate) const WILD_OUT: u8 = 2;
/// `node_flags` bit: the pattern node has a wildcard in-edge.
pub(crate) const WILD_IN: u8 = 4;

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the arena for one anchored search over a pattern with
    /// `pattern_nodes` nodes in a graph with `graph_nodes` nodes.
    pub(crate) fn begin(&mut self, pattern_nodes: usize, graph_nodes: usize) {
        self.map.clear();
        self.map.resize(pattern_nodes, NO_NODE);
        self.used.reset(graph_nodes);
        self.cand.clear();
    }

    /// The data node assigned to pattern node index `i`, if any.
    #[inline]
    pub(crate) fn mapped(&self, i: usize) -> Option<NodeId> {
        let v = self.map[i];
        (v != NO_NODE).then_some(v)
    }

    #[inline]
    pub(crate) fn assign(&mut self, i: usize, v: NodeId) {
        self.map[i] = v;
        self.used.insert(v);
    }

    #[inline]
    pub(crate) fn unassign(&mut self, i: usize, v: NodeId) {
        self.map[i] = NO_NODE;
        self.used.remove(v);
    }

    /// The neighborhood-traversal scratch, for callers that interleave
    /// ball/sketch construction with matching on the same thread.
    pub fn neighborhood(&mut self) -> &mut NeighborhoodScratch {
        &mut self.nbr
    }

    /// Full pattern-metadata recomputations performed so far (cache
    /// misses across both the active slot and the keyed cache).
    pub fn meta_recomputes(&self) -> u64 {
        self.meta_recomputes
    }

    /// Candidate data nodes generated across all searches so far.
    pub fn cand_generated(&self) -> u64 {
        self.cand_generated
    }

    /// Candidates rejected by verification filters so far.
    pub fn cand_pruned(&self) -> u64 {
        self.cand_pruned
    }

    /// Switches the active pattern metadata to `(self.key, anchor,
    /// prefer)`: parks the currently active entry into the keyed cache,
    /// then loads the requested one out of it if present. Returns `true`
    /// on a hit (the active buffers now hold the entry); on a miss the
    /// caller must recompute into the (now empty) active buffers and set
    /// `meta_key`/`meta_anchor`/`meta_prefer` as usual.
    ///
    /// Invariant: the cache holds only *parked* entries — a loaded entry
    /// is moved out, and the active one is moved in — so no key is ever
    /// present twice.
    pub(crate) fn switch_meta(&mut self, anchor: u32, prefer: bool) -> bool {
        if !self.meta_key.is_empty() {
            self.meta_tick += 1;
            let parked = PatternMeta {
                key: std::mem::take(&mut self.meta_key),
                anchor: self.meta_anchor,
                prefer: self.meta_prefer,
                tick: self.meta_tick,
                order: std::mem::take(&mut self.order),
                deg_req: std::mem::take(&mut self.deg_req),
                lab_req: std::mem::take(&mut self.lab_req),
                lab_req_offsets: std::mem::take(&mut self.lab_req_offsets),
                node_flags: std::mem::take(&mut self.node_flags),
            };
            if self.meta_cache.len() == META_CACHE_CAP {
                let lru = self
                    .meta_cache
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, m)| m.tick)
                    .map(|(i, _)| i)
                    .expect("cache at capacity is non-empty");
                self.meta_cache[lru] = parked;
            } else {
                self.meta_cache.push(parked);
            }
        }
        let hit = self
            .meta_cache
            .iter()
            .position(|m| m.anchor == anchor && m.prefer == prefer && m.key == self.key);
        match hit {
            Some(i) => {
                let m = self.meta_cache.swap_remove(i);
                self.meta_key = m.key;
                self.meta_anchor = m.anchor;
                self.meta_prefer = m.prefer;
                self.order = m.order;
                self.deg_req = m.deg_req;
                self.lab_req = m.lab_req;
                self.lab_req_offsets = m.lab_req_offsets;
                self.node_flags = m.node_flags;
                true
            }
            None => false,
        }
    }
}

/// A per-thread shareable arena handle. Clone it into every matcher the
/// thread builds; the underlying buffers are reused across all of them.
///
/// The arena is parked boxed behind `Option` so checking it in and out of
/// the cell moves 8 bytes, not the whole buffer struct; a matcher whose
/// search is re-entered from an enumeration callback finds the cell empty
/// and falls back to a fresh arena instead of aliasing the active one.
/// `Rc`-based and deliberately `!Send` — one per thread, like
/// [`crate::PatternSketchCache`].
#[derive(Debug, Clone, Default)]
pub struct SharedScratch(Rc<RefCell<Option<Box<ScratchArena>>>>);

impl SharedScratch {
    /// Creates an empty handle (the arena itself is built on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks the arena out (fresh if the cell is empty or re-entered).
    pub(crate) fn take(&self) -> Box<ScratchArena> {
        self.0.borrow_mut().take().unwrap_or_default()
    }

    /// Parks the arena back into the cell.
    pub(crate) fn put(&self, arena: Box<ScratchArena>) {
        *self.0.borrow_mut() = Some(arena);
    }

    /// Runs `f` over the parked arena, if present (diagnostics/tests).
    pub fn inspect<R>(&self, f: impl FnOnce(&ScratchArena) -> R) -> Option<R> {
        self.0.borrow().as_deref().map(f)
    }

    /// Takes and zeroes the arena's match counters: `(candidates
    /// generated, candidates pruned, metadata recomputes)`. The serving
    /// engine calls this once per job to drain per-thread counts into
    /// its sharded metrics registry. Returns zeros when the arena is
    /// checked out or not yet built.
    pub fn drain_counters(&self) -> (u64, u64, u64) {
        match self.0.borrow_mut().as_deref_mut() {
            Some(a) => {
                let out = (a.cand_generated, a.cand_pruned, a.meta_recomputes);
                a.cand_generated = 0;
                a.cand_pruned = 0;
                a.meta_recomputes = 0;
                out
            }
            None => (0, 0, 0),
        }
    }

    /// Runs `f` with the arena's neighborhood-traversal scratch, for
    /// callers that interleave ball/sketch construction with matching on
    /// the same thread (the EIP evaluator's center-sketch prefilter).
    pub fn with_neighborhood<R>(&self, f: impl FnOnce(&mut NeighborhoodScratch) -> R) -> R {
        let mut slot = self.0.borrow_mut();
        let arena = slot.get_or_insert_with(Default::default);
        f(arena.neighborhood())
    }
}
